#include "sim/world.hpp"

#include <cstring>
#include <string_view>

#include "dns/wire.hpp"
#include "net/arpa.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace rdns::sim {

using util::SimTime;

World::World(WorldConfig config) : config_(config), rng_(config.seed) {}

World::~World() = default;

Organization& World::add_org(OrgSpec spec) {
  if (started_) throw std::logic_error("World::add_org: world already started");
  orgs_.push_back(std::make_unique<Organization>(std::move(spec)));
  const std::size_t index = orgs_.size() - 1;
  suffix_to_org_[orgs_.back()->spec().suffix.to_canonical_string()] = index;
  for (const auto& prefix : orgs_.back()->spec().announced) {
    matcher_.add(prefix);
    prefix_to_org_[prefix.network().value()] = index;
    // Claim every covered /16 for fast routing; overlap means two orgs
    // share a /16, which the builder must not produce.
    const std::uint32_t first16 = prefix.network().value() & 0xFFFF0000u;
    const std::uint32_t count = prefix.length() >= 16 ? 1u : (1u << (16 - prefix.length()));
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint32_t key = first16 + (i << 16);
      const auto [it, inserted] = slash16_to_org_.emplace(key, index);
      if (!inserted && it->second != index) {
        throw std::invalid_argument("World::add_org: /16 " +
                                    net::Ipv4Addr{key}.to_string() + " shared by two orgs");
      }
    }
  }
  return *orgs_.back();
}

void World::start(const util::CivilDate& first_day, const util::CivilDate& last_day) {
  if (started_) throw std::logic_error("World::start called twice");
  started_ = true;
  last_day_ = last_day;
  const SimTime t0 = util::to_sim_time(first_day);
  queue_.warp_to(t0);

  // DHCP expiry sweeps: one repeating event serving all segments.
  queue_.schedule_repeating(t0 + config_.dhcp_tick_seconds, config_.dhcp_tick_seconds, [this] {
    const SimTime now = queue_.now();
    for (const auto& org : orgs_) {
      for (auto& segment : org->segments()) segment.dhcp->tick(now);
    }
    return util::to_civil_date(now) <= last_day_ || !online_.empty();
  });

  // Daily planning event at each midnight.
  queue_.schedule_repeating(t0, util::kDay, [this] {
    const util::CivilDate today = util::to_civil_date(queue_.now());
    if (last_day_ < today) return false;
    plan_calendar_day(today);
    return true;
  });
}

void World::run_until(SimTime t) { queue_.run_until(t); }

void World::plan_calendar_day(const util::CivilDate& date) {
  ++stats_.days_planned;
  const SimTime midnight = util::to_sim_time(date);
  for (const auto& org_ptr : orgs_) {
    Organization& org = *org_ptr;
    for (User& user : org.users()) {
      for (const auto& device_ptr : user.devices) {
        plan_device_day(org, user, *device_ptr, date, midnight);
      }
    }
  }
}

void World::plan_device_day(Organization& org, User& user, Device& device,
                            const util::CivilDate& date, SimTime midnight) {
  if (!device.exists_on(date)) return;

  const auto& segment_spec = org.segments()[user.segment].spec;
  PlanContext ctx;
  ctx.covid_factor = org.spec().covid.factor(segment_spec.venue, date);
  ctx.holiday_factor = HolidayCalendar::presence_factor(user.schedule, segment_spec.venue, date);

  // Roaming students pick a (building) segment per interval among the
  // org's Campus segments; everyone else stays on their home segment.
  std::vector<std::size_t> campus_segments;
  if (org.spec().students_roam && user.schedule == ScheduleKind::Student) {
    for (std::size_t i = 0; i < org.segments().size(); ++i) {
      if (org.segments()[i].spec.venue == PresenceVenue::Campus &&
          org.segments()[i].spec.schedule == ScheduleKind::Student) {
        campus_segments.push_back(i);
      }
    }
  }

  const DayPlan plan = sim::plan_day(user.schedule, date, ctx, user.rng);
  for (const Interval& interval : plan.intervals) {
    if (!device.decide_participation(user.rng)) continue;
    // Small per-device offsets: the phone wakes when its owner arrives, the
    // laptop a few minutes later.
    const SimTime jitter = user.rng.uniform_int(0, 8 * util::kMinute);
    const SimTime join_at = midnight + interval.start + jitter;
    const SimTime leave_at = midnight + interval.end + user.rng.uniform_int(0, 4 * util::kMinute);
    if (leave_at <= join_at) continue;

    const std::size_t segment =
        campus_segments.empty() ? user.segment
                                : campus_segments[user.rng.index(campus_segments.size())];
    Organization* org_p = &org;
    User* user_p = &user;
    Device* device_p = &device;
    queue_.schedule(join_at, [this, org_p, user_p, device_p, segment] {
      handle_join(*org_p, *user_p, *device_p, segment);
    });
    queue_.schedule(leave_at, [this, org_p, user_p, device_p] {
      handle_leave(*org_p, *user_p, *device_p);
    });
  }
}

void World::handle_join(Organization& org, User& user, Device& device, std::size_t segment_index) {
  if (device.online) return;  // already on the network (overlapping plans)
  auto& segment = org.segments()[segment_index];
  const auto address = device.client().join(*segment.dhcp, queue_.now());
  if (!address) {
    ++stats_.join_failures;
    return;
  }
  device.online = true;
  device.online_since = queue_.now();
  device.active_segment = segment_index;
  online_[*address] = &device;
  ++stats_.joins;
  schedule_renewal(org, user, device);
}

void World::schedule_renewal(Organization& org, User& user, Device& device) {
  const SimTime due = device.client().renewal_due();
  if (due <= queue_.now()) return;
  Organization* org_p = &org;
  User* user_p = &user;
  Device* device_p = &device;
  queue_.schedule(due, [this, org_p, user_p, device_p] {
    if (!device_p->online) return;
    auto& segment = org_p->segments()[device_p->active_segment];
    const bool still_bound = device_p->client().maybe_renew(*segment.dhcp, queue_.now());
    if (still_bound) {
      ++stats_.renewals;
      schedule_renewal(*org_p, *user_p, *device_p);
    } else {
      // Lost the binding (server restart, NAK); drop offline quietly.
      if (const auto addr = device_p->client().address()) online_.erase(*addr);
      device_p->online = false;
    }
  });
}

void World::handle_leave(Organization& org, User& user, Device& device) {
  if (!device.online) return;
  const auto address = device.client().address();
  auto& segment = org.segments()[device.active_segment];
  const bool clean = device.decide_clean_release(user.rng);
  device.client().leave(*segment.dhcp, queue_.now(), clean);
  device.online = false;
  if (address) {
    const auto it = online_.find(*address);
    if (it != online_.end() && it->second == &device) online_.erase(it);
  }
  ++stats_.leaves;
}

bool World::ping(net::Ipv4Addr a, util::SimTime t) const noexcept {
  const Organization* org = org_of(a);
  if (org == nullptr || !org->icmp_reaches(a)) return false;
  if (org->static_host_pingable(a)) {
    // Static infrastructure answers almost every probe.
    return probe_hash_chance(a, t, 0.995);
  }
  const auto it = online_.find(a);
  if (it == online_.end()) return false;
  const Device& device = *it->second;
  if (!device.online || !device.responds_to_ping()) return false;
  return probe_hash_chance(a, t, device.probe_reliability());
}

bool World::probe_hash_chance(net::Ipv4Addr a, util::SimTime t, double p) noexcept {
  const std::uint64_t h =
      util::mix64((std::uint64_t{a.value()} << 32) ^ static_cast<std::uint64_t>(t) ^
                  0x1C4B5A9E2F7D3081ULL);
  return static_cast<double>(h >> 11) * 0x1.0p-53 < p;
}

std::optional<std::vector<std::uint8_t>> World::exchange(
    std::span<const std::uint8_t> query_wire, SimTime now) {
  // The mutable transport is the read-only path plus an immediate fold of
  // the statistics into the owning servers, so serial scans and parallel
  // shards observe identical answers and identical final counters.
  exchange_scratch_.assign(orgs_.size(), dns::ServerStats{});
  auto response = exchange_readonly(query_wire, now, exchange_scratch_);
  merge_server_stats(exchange_scratch_);
  return response;
}

std::optional<std::vector<std::uint8_t>> World::exchange_readonly(
    std::span<const std::uint8_t> query_wire, SimTime now,
    std::vector<dns::ServerStats>& per_org_stats) const {
  (void)now;
  // Route by QNAME. A real scanner resolves the delegation; our routing
  // table plays the role of the in-addr.arpa delegation tree.
  dns::Message query;
  try {
    query = dns::decode(query_wire);
  } catch (const dns::WireError&) {
    return std::nullopt;
  }
  if (query.questions.size() != 1) return std::nullopt;
  const dns::DnsName& qname = query.questions.front().qname;
  std::size_t index = npos;
  const auto address = net::from_arpa(qname.to_string());
  if (!address) {
    // Forward query: route by the registered-domain suffix of the qname.
    const auto it = suffix_to_org_.find(qname.registered_domain().to_canonical_string());
    if (it == suffix_to_org_.end()) {
      return dns::encode(dns::make_response(query, dns::Rcode::Refused, false));
    }
    index = it->second;
  } else {
    index = org_index_of(*address);
    if (index == npos) {
      // Unannounced space: no authoritative server to ask -> timeout.
      return std::nullopt;
    }
  }
  const auto response =
      orgs_[index]->dns().handle_readonly(query, per_org_stats[index]);
  if (!response) return std::nullopt;
  return dns::encode(*response);
}

void World::merge_server_stats(const std::vector<dns::ServerStats>& per_org_stats) {
  for (std::size_t i = 0; i < orgs_.size() && i < per_org_stats.size(); ++i) {
    orgs_[i]->dns().merge_stats(per_org_stats[i]);
  }
}

void World::snapshot_ptrs(
    const std::function<void(net::Ipv4Addr, const dns::DnsName&)>& fn) const {
  for (const auto& org : orgs_) org->for_each_ptr(fn);
}

std::vector<net::Prefix> World::announced_prefixes() const {
  std::vector<net::Prefix> out;
  for (const auto& org : orgs_) {
    out.insert(out.end(), org->spec().announced.begin(), org->spec().announced.end());
  }
  return out;
}

std::size_t World::org_index_of(net::Ipv4Addr a) const noexcept {
  // Fast path: one hash lookup by /16 plus a short membership check.
  const auto it = slash16_to_org_.find(a.value() & 0xFFFF0000u);
  if (it == slash16_to_org_.end()) return npos;
  const Organization& org = *orgs_[it->second];
  for (const auto& prefix : org.spec().announced) {
    if (prefix.contains(a)) return it->second;
  }
  return npos;
}

Organization* World::org_of(net::Ipv4Addr a) noexcept {
  const std::size_t index = org_index_of(a);
  return index == npos ? nullptr : orgs_[index].get();
}

const Organization* World::org_of(net::Ipv4Addr a) const noexcept {
  return const_cast<World*>(this)->org_of(a);
}

Organization* World::org_by_name(const std::string& name) noexcept {
  for (const auto& org : orgs_) {
    if (org->name() == name) return org.get();
  }
  return nullptr;
}

const Device* World::device_at(net::Ipv4Addr a) const noexcept {
  const auto it = online_.find(a);
  return it == online_.end() ? nullptr : it->second;
}

namespace {

/// Small order-sensitive fold helpers for config_digest. Doubles hash by
/// bit pattern, so the digest is exact (no epsilon games).
struct DigestFold {
  std::uint64_t h = 0x5EED0D16E57ULL;

  void word(std::uint64_t v) noexcept { h = util::mix64(h ^ v); }
  void real(double d) noexcept {
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof d);
    std::memcpy(&bits, &d, sizeof bits);
    word(bits);
  }
  void text(std::string_view s) noexcept {
    // FNV-1a over the bytes, then folded: string content and length both
    // perturb the digest.
    std::uint64_t fnv = 0xCBF29CE484222325ULL;
    for (const char c : s) {
      fnv ^= static_cast<unsigned char>(c);
      fnv *= 0x100000001B3ULL;
    }
    word(fnv ^ s.size());
  }
  void prefix(const net::Prefix& p) noexcept {
    word((static_cast<std::uint64_t>(p.first().value()) << 8U) |
         static_cast<std::uint64_t>(p.length()));
  }
};

}  // namespace

std::uint64_t World::config_digest() const noexcept {
  DigestFold d;
  d.word(config_.seed);
  d.word(static_cast<std::uint64_t>(config_.dhcp_tick_seconds));
  d.word(orgs_.size());
  for (const auto& org : orgs_) {
    const OrgSpec& spec = org->spec();
    d.text(spec.name);
    d.word(static_cast<std::uint64_t>(spec.type));
    d.text(spec.suffix.to_canonical_string());
    for (const auto& p : spec.announced) d.prefix(p);
    for (const auto& p : spec.measurement_targets) d.prefix(p);
    d.word(spec.segments.size());
    for (const auto& seg : spec.segments) {
      d.text(seg.label);
      d.word(static_cast<std::uint64_t>(seg.venue));
      d.prefix(seg.prefix);
      d.word(static_cast<std::uint64_t>(seg.schedule));
      d.word(static_cast<std::uint64_t>(seg.user_count));
      d.word(static_cast<std::uint64_t>(seg.always_on_count));
      d.word(static_cast<std::uint64_t>(seg.ddns_policy));
      d.word(static_cast<std::uint64_t>(seg.removal));
      d.word(seg.lease_seconds);
      d.real(seg.named_device_frac);
      d.real(seg.ping_response_scale);
      d.real(seg.clean_release_override);
    }
    d.word(spec.static_ranges.size());
    for (const auto& range : spec.static_ranges) {
      d.prefix(range.prefix);
      d.word(static_cast<std::uint64_t>(range.style));
      d.real(range.fill);
      d.real(range.pingable);
    }
    d.word(spec.scripted_users.size());
    for (const auto& scripted : spec.scripted_users) {
      d.text(scripted.given_name);
      d.word(static_cast<std::uint64_t>(scripted.schedule));
      d.word(scripted.segment);
      d.word(scripted.devices.size());
      for (const auto& dev : scripted.devices) {
        d.word(static_cast<std::uint64_t>(dev.kind));
        d.text(dev.host_name);
        d.real(dev.participation);
      }
    }
    d.word(static_cast<std::uint64_t>(spec.blocks_icmp));
    for (const auto& a : spec.icmp_allowlist) d.word(a.value());
    d.word(static_cast<std::uint64_t>(spec.forward_updates));
    d.word(static_cast<std::uint64_t>(spec.students_roam));
    d.real(spec.dns_faults.servfail_probability);
    d.real(spec.dns_faults.timeout_probability);
    d.word(spec.seed);
  }
  return d.h;
}

}  // namespace rdns::sim
