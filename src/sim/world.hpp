#pragma once
/// \file world.hpp
/// The simulated Internet: a set of organizations, a shared event queue,
/// and the measurement surface (ICMP pings and DNS queries) scanners probe.
///
/// The World schedules, per device and day, the join/leave/renew events
/// that drive the DHCP servers, whose DDNS bridges in turn mutate the
/// reverse zones. Scanners advance simulated time via run_until() and then
/// observe the world at that instant, which is exactly what real scanning
/// does: sample externally visible state at probe times.

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dns/server.hpp"
#include "net/prefix_set.hpp"
#include "sim/event_queue.hpp"
#include "sim/org.hpp"
#include "sim/schedule.hpp"

namespace rdns::sim {

struct WorldConfig {
  /// Interval between DHCP lease-expiry sweeps. 60 s gives minute-accurate
  /// PTR removal; 300 s is cheaper for multi-year longitudinal runs (and
  /// still finer than the 5-minute probe truncation).
  util::SimTime dhcp_tick_seconds = 60;
  std::uint64_t seed = 0xB0B5EEDULL;
};

struct WorldStats {
  std::uint64_t joins = 0;
  std::uint64_t join_failures = 0;
  std::uint64_t leaves = 0;
  std::uint64_t renewals = 0;
  std::uint64_t days_planned = 0;
};

/// Routes DNS queries to the owning organization's authoritative server.
/// This is the "global DNS" from an outside measurement point of view.
class World final : public dns::Transport {
 public:
  explicit World(WorldConfig config = {});
  ~World() override;

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Add an organization (before start()).
  Organization& add_org(OrgSpec spec);

  /// Begin simulation: schedules daily planning and DHCP ticks for the
  /// period [first_day, last_day] (inclusive).
  void start(const util::CivilDate& first_day, const util::CivilDate& last_day);

  /// Advance simulated time, running all due events.
  void run_until(util::SimTime t);

  [[nodiscard]] util::SimTime now() const noexcept { return queue_.now(); }
  [[nodiscard]] EventQueue& queue() noexcept { return queue_; }

  // -- measurement surface ---------------------------------------------------

  /// An ICMP echo probe at simulated time `t`: true if something answers.
  /// Applies organization ingress policy, device online state, host-level
  /// responsiveness and per-probe flakiness. Deterministic in (a, t): the
  /// response is derived from a hash, not from shared RNG state, so probe
  /// ordering cannot perturb the simulation.
  [[nodiscard]] bool ping(net::Ipv4Addr a, util::SimTime t) const noexcept;

  /// DNS over the simulated Internet: routes the query (by its arpa QNAME)
  /// to the owning org's authoritative server, wire-format both ways.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> exchange(
      std::span<const std::uint8_t> query_wire, util::SimTime now) override;

  /// Const DNS read path for concurrent scanners. Identical routing and
  /// answers to exchange(), but server statistics land in `per_org_stats`
  /// (one slot per org, same order as orgs()) instead of the servers
  /// themselves; fold them back with merge_server_stats(). Safe to call
  /// from many threads while the sim clock is frozen (no run_until, no
  /// zone mutation in flight). UPDATE messages are refused on this path.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> exchange_readonly(
      std::span<const std::uint8_t> query_wire, util::SimTime now,
      std::vector<dns::ServerStats>& per_org_stats) const;

  /// Fold per-worker server-statistics accumulators (as filled by
  /// exchange_readonly) into the orgs' authoritative servers. The merge is
  /// a sum per org, so applying worker accumulators in any order yields
  /// the same totals as the serial run.
  void merge_server_stats(const std::vector<dns::ServerStats>& per_org_stats);

  /// Bulk PTR snapshot across all orgs (the full-address-space sweep fast
  /// path; equivalent to querying every address — see tests).
  void snapshot_ptrs(const std::function<void(net::Ipv4Addr, const dns::DnsName&)>& fn) const;

  /// Union of all announced prefixes (scanner target lists).
  [[nodiscard]] std::vector<net::Prefix> announced_prefixes() const;

  [[nodiscard]] Organization* org_of(net::Ipv4Addr a) noexcept;
  [[nodiscard]] const Organization* org_of(net::Ipv4Addr a) const noexcept;
  /// Index into orgs() of the org announcing `a`, or npos.
  [[nodiscard]] std::size_t org_index_of(net::Ipv4Addr a) const noexcept;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  [[nodiscard]] std::vector<std::unique_ptr<Organization>>& orgs() noexcept { return orgs_; }
  [[nodiscard]] const std::vector<std::unique_ptr<Organization>>& orgs() const noexcept {
    return orgs_;
  }
  [[nodiscard]] Organization* org_by_name(const std::string& name) noexcept;

  [[nodiscard]] const WorldStats& stats() const noexcept { return stats_; }

  /// Order-sensitive hash over the world config and every org spec (names,
  /// prefixes, segments, policies, seeds). Two worlds with equal digests
  /// were built from the same blueprint, so their event streams are
  /// comparable — this is the `world_digest` of util::journal::RunManifest.
  [[nodiscard]] std::uint64_t config_digest() const noexcept;

  /// Device currently bound to an address (nullptr if none) — ground truth
  /// for validating the heuristics, which the paper did not have.
  [[nodiscard]] const Device* device_at(net::Ipv4Addr a) const noexcept;

 private:
  [[nodiscard]] static bool probe_hash_chance(net::Ipv4Addr a, util::SimTime t,
                                              double p) noexcept;
  void plan_calendar_day(const util::CivilDate& date);
  void plan_device_day(Organization& org, User& user, Device& device,
                       const util::CivilDate& date, util::SimTime midnight);
  void handle_join(Organization& org, User& user, Device& device, std::size_t segment);
  void handle_leave(Organization& org, User& user, Device& device);
  void schedule_renewal(Organization& org, User& user, Device& device);

  WorldConfig config_;
  EventQueue queue_;
  util::Rng rng_;
  std::vector<std::unique_ptr<Organization>> orgs_;
  net::MostSpecificMatcher matcher_;            // announced prefix -> org index
  std::unordered_map<std::uint32_t, std::size_t> prefix_to_org_;
  // Fast routing: /16 of address -> org index (orgs own whole /16s by
  // construction; add_org rejects overlaps).
  std::unordered_map<std::uint32_t, std::size_t> slash16_to_org_;
  // Forward-DNS routing: canonical org suffix -> org index.
  std::unordered_map<std::string, std::size_t> suffix_to_org_;
  std::unordered_map<net::Ipv4Addr, Device*> online_;
  util::CivilDate last_day_{2100, 1, 1};
  bool started_ = false;
  WorldStats stats_;
  // Scratch per-org stats for the non-const exchange() wrapper.
  std::vector<dns::ServerStats> exchange_scratch_;
};

/// Per-worker read-only DNS transport over a frozen-clock World. Each
/// sweep shard owns one view (plus its own StubResolver); queries route
/// through World::exchange_readonly and statistics accumulate privately in
/// the view. After the parallel region, fold them back with
/// `world.merge_server_stats(view.per_org_stats())`.
class FrozenDnsView final : public dns::Transport {
 public:
  explicit FrozenDnsView(const World& world)
      : world_(&world), per_org_stats_(world.orgs().size()) {}

  [[nodiscard]] std::optional<std::vector<std::uint8_t>> exchange(
      std::span<const std::uint8_t> query_wire, util::SimTime now) override {
    return world_->exchange_readonly(query_wire, now, per_org_stats_);
  }

  [[nodiscard]] const std::vector<dns::ServerStats>& per_org_stats() const noexcept {
    return per_org_stats_;
  }

  /// Accumulate this view's stats into another per-org vector (for
  /// chunk-level views folding into a sweep-level accumulator).
  void merge_into(std::vector<dns::ServerStats>& acc) const {
    for (std::size_t i = 0; i < per_org_stats_.size() && i < acc.size(); ++i) {
      acc[i] += per_org_stats_[i];
    }
  }

 private:
  const World* world_;
  std::vector<dns::ServerStats> per_org_stats_;
};

}  // namespace rdns::sim
