#include "util/ascii_chart.hpp"

#include <algorithm>
#include <cmath>

#include "util/strings.hpp"

namespace rdns::util {

namespace {

constexpr const char* kGlyphs = "*o+x#@%&";

double transform(double v, bool log_scale) {
  if (!log_scale) return v;
  return v <= 0 ? 0.0 : std::log10(1.0 + v);
}

struct Range {
  double lo = 0.0;
  double hi = 1.0;
};

Range value_range(const std::vector<Series>& series, bool log_scale) {
  Range r{0.0, 0.0};
  bool any = false;
  for (const auto& s : series) {
    for (double v : s.values) {
      const double t = transform(v, log_scale);
      if (!any) {
        r.lo = r.hi = t;
        any = true;
      } else {
        r.lo = std::min(r.lo, t);
        r.hi = std::max(r.hi, t);
      }
    }
  }
  if (!any) return Range{0.0, 1.0};
  if (r.hi == r.lo) r.hi = r.lo + 1.0;
  // Anchor linear charts at zero for honest proportions.
  if (!log_scale && r.lo > 0.0) r.lo = 0.0;
  return r;
}

}  // namespace

std::string render_line_chart(const std::vector<Series>& series, const ChartOptions& opts) {
  std::string out;
  if (!opts.title.empty()) out += opts.title + "\n";
  if (series.empty()) return out + "(no data)\n";

  std::size_t n = 0;
  for (const auto& s : series) n = std::max(n, s.values.size());
  if (n == 0) return out + "(no data)\n";

  const int h = std::max(4, opts.height);
  const int w = std::max(16, opts.width);
  const Range r = value_range(series, opts.log_scale);

  std::vector<std::string> grid(static_cast<std::size_t>(h), std::string(static_cast<std::size_t>(w), ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    const auto& vals = series[si].values;
    const char glyph = kGlyphs[si % 8];
    for (std::size_t i = 0; i < vals.size(); ++i) {
      const int x = vals.size() <= 1
                        ? 0
                        : static_cast<int>(std::llround(static_cast<double>(i) * (w - 1) /
                                                        static_cast<double>(vals.size() - 1)));
      const double t = transform(vals[i], opts.log_scale);
      const double frac = (t - r.lo) / (r.hi - r.lo);
      const int y = static_cast<int>(std::llround(frac * (h - 1)));
      const int row = h - 1 - std::clamp(y, 0, h - 1);
      grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(std::clamp(x, 0, w - 1))] = glyph;
    }
  }

  const double display_hi = opts.log_scale ? std::pow(10.0, r.hi) - 1.0 : r.hi;
  const double display_lo = opts.log_scale ? std::pow(10.0, r.lo) - 1.0 : r.lo;
  out += format("%12.6g +", display_hi);
  out += std::string(static_cast<std::size_t>(w), '-') + "\n";
  for (const auto& row : grid) out += "             |" + row + "\n";
  out += format("%12.6g +", display_lo);
  out += std::string(static_cast<std::size_t>(w), '-') + "\n";

  out += "  legend:";
  for (std::size_t si = 0; si < series.size(); ++si) {
    out += format(" [%c] %s", kGlyphs[si % 8], series[si].label.c_str());
  }
  out += "\n";
  if (!opts.y_label.empty()) out += "  y: " + opts.y_label + (opts.log_scale ? " (log)" : "") + "\n";
  return out;
}

std::string render_bar_chart(const std::vector<std::pair<std::string, double>>& bars,
                             const ChartOptions& opts) {
  std::string out;
  if (!opts.title.empty()) out += opts.title + "\n";
  if (bars.empty()) return out + "(no data)\n";

  std::size_t label_w = 0;
  double hi = 0.0;
  for (const auto& [label, v] : bars) {
    label_w = std::max(label_w, label.size());
    hi = std::max(hi, transform(v, opts.log_scale));
  }
  if (hi <= 0.0) hi = 1.0;
  const int w = std::max(16, opts.width);

  for (const auto& [label, v] : bars) {
    const double t = transform(v, opts.log_scale);
    const int len = static_cast<int>(std::llround(t / hi * w));
    out += format("  %-*s |%s %.6g\n", static_cast<int>(label_w), label.c_str(),
                  std::string(static_cast<std::size_t>(std::max(0, len)), '#').c_str(), v);
  }
  return out;
}

std::string render_paired_bars(const std::vector<std::string>& labels,
                               const std::vector<double>& first, const std::vector<double>& second,
                               const std::string& first_label, const std::string& second_label,
                               const ChartOptions& opts) {
  std::string out;
  if (!opts.title.empty()) out += opts.title + "\n";
  const std::size_t n = std::min({labels.size(), first.size(), second.size()});
  if (n == 0) return out + "(no data)\n";

  std::size_t label_w = 0;
  double hi = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    label_w = std::max(label_w, labels[i].size());
    hi = std::max({hi, transform(first[i], opts.log_scale), transform(second[i], opts.log_scale)});
  }
  if (hi <= 0.0) hi = 1.0;
  const int w = std::max(16, opts.width);

  for (std::size_t i = 0; i < n; ++i) {
    const int len1 =
        static_cast<int>(std::llround(transform(first[i], opts.log_scale) / hi * w));
    const int len2 =
        static_cast<int>(std::llround(transform(second[i], opts.log_scale) / hi * w));
    out += format("  %-*s A|%s %.6g\n", static_cast<int>(label_w), labels[i].c_str(),
                  std::string(static_cast<std::size_t>(std::max(0, len1)), '#').c_str(), first[i]);
    out += format("  %-*s B|%s %.6g\n", static_cast<int>(label_w), "",
                  std::string(static_cast<std::size_t>(std::max(0, len2)), '=').c_str(), second[i]);
  }
  out += "  A(#): " + first_label + "   B(=): " + second_label +
         (opts.log_scale ? "   [bar length: log scale]" : "") + "\n";
  return out;
}

std::string render_presence_grid(const std::vector<std::string>& row_labels,
                                 const std::vector<std::vector<int>>& cells,
                                 const std::string& title) {
  static constexpr const char* kStates = " .:#@+o*";
  std::string out;
  if (!title.empty()) out += title + "\n";
  std::size_t label_w = 0;
  for (const auto& l : row_labels) label_w = std::max(label_w, l.size());
  for (std::size_t r = 0; r < cells.size(); ++r) {
    const std::string label = r < row_labels.size() ? row_labels[r] : "";
    out += format("  %-*s |", static_cast<int>(label_w), label.c_str());
    for (int state : cells[r]) {
      out.push_back(kStates[std::clamp(state, 0, 7)]);
    }
    out += "|\n";
  }
  return out;
}

std::string render_histogram(const std::vector<std::int64_t>& bins, double bin_lo,
                             double bin_width, const ChartOptions& opts) {
  std::string out;
  if (!opts.title.empty()) out += opts.title + "\n";
  if (bins.empty()) return out + "(no data)\n";
  std::int64_t hi = 1;
  for (auto b : bins) hi = std::max(hi, b);
  const int w = std::max(16, opts.width);
  for (std::size_t i = 0; i < bins.size(); ++i) {
    const double t = transform(static_cast<double>(bins[i]), opts.log_scale);
    const double thi = transform(static_cast<double>(hi), opts.log_scale);
    const int len = thi > 0 ? static_cast<int>(std::llround(t / thi * w)) : 0;
    out += format("  [%8.6g,%8.6g) |%s %lld\n", bin_lo + bin_width * static_cast<double>(i),
                  bin_lo + bin_width * static_cast<double>(i + 1),
                  std::string(static_cast<std::size_t>(std::max(0, len)), '#').c_str(),
                  static_cast<long long>(bins[i]));
  }
  return out;
}

std::string render_sparkline(const std::vector<double>& values, int width) {
  static constexpr char kRamp[] = " .:-=+*#@";
  constexpr int kLevels = static_cast<int>(sizeof(kRamp) - 2);  // index of '@'
  if (values.empty() || width <= 0) return {};
  const std::size_t take = std::min(values.size(), static_cast<std::size_t>(width));
  const std::size_t from = values.size() - take;
  double lo = values[from];
  double hi = values[from];
  for (std::size_t i = from; i < values.size(); ++i) {
    lo = std::min(lo, values[i]);
    hi = std::max(hi, values[i]);
  }
  std::string out;
  out.reserve(take);
  for (std::size_t i = from; i < values.size(); ++i) {
    int level = kLevels;  // flat series renders at full intensity
    if (hi > lo) {
      level = static_cast<int>(std::llround((values[i] - lo) / (hi - lo) * kLevels));
    }
    out.push_back(kRamp[std::clamp(level, 0, kLevels)]);
  }
  return out;
}

}  // namespace rdns::util
