#pragma once
/// \file ascii_chart.hpp
/// Terminal-friendly chart rendering for the bench harness. Each paper
/// figure is regenerated as data plus an ASCII rendering so `bench_*`
/// binaries are self-contained (no plotting dependencies).

#include <cstdint>
#include <string>
#include <vector>

namespace rdns::util {

/// A named series of y-values sharing an implicit x grid.
struct Series {
  std::string label;
  std::vector<double> values;
};

/// Options shared by chart renderers.
struct ChartOptions {
  int width = 72;        ///< plot area width in characters
  int height = 16;       ///< plot area height in rows (line charts)
  bool log_scale = false;///< log10 y-axis (zeros clamped to the axis floor)
  std::string y_label;
  std::string title;
};

/// Render one or more series as an overlaid line chart. Each series is
/// drawn with its own glyph; a legend is appended.
[[nodiscard]] std::string render_line_chart(const std::vector<Series>& series,
                                            const ChartOptions& opts);

/// Render a horizontal bar chart (one bar per labelled value).
[[nodiscard]] std::string render_bar_chart(const std::vector<std::pair<std::string, double>>& bars,
                                           const ChartOptions& opts);

/// Render paired bars (e.g. Fig. 2/3 "all matches" vs "filtered matches").
[[nodiscard]] std::string render_paired_bars(
    const std::vector<std::string>& labels, const std::vector<double>& first,
    const std::vector<double>& second, const std::string& first_label,
    const std::string& second_label, const ChartOptions& opts);

/// Render a presence grid (Fig. 8): rows = entities, columns = time slots,
/// cell glyph chosen by a small integer state (0 = absent).
[[nodiscard]] std::string render_presence_grid(const std::vector<std::string>& row_labels,
                                               const std::vector<std::vector<int>>& cells,
                                               const std::string& title);

/// Render a histogram (counts per bin) vertically scaled to `height`.
[[nodiscard]] std::string render_histogram(const std::vector<std::int64_t>& bins, double bin_lo,
                                           double bin_width, const ChartOptions& opts);

/// Render a one-line sparkline of `values` (newest last), at most `width`
/// characters wide (older values are dropped). Pure ASCII — intensity
/// ramp " .:-=+*#@" scaled to the visible min/max — so it embeds safely
/// in \r status lines and logs. Empty input renders an empty string.
[[nodiscard]] std::string render_sparkline(const std::vector<double>& values, int width = 32);

}  // namespace rdns::util
