#include "util/cli.hpp"

#include <charconv>
#include <cstdio>
#include <sstream>

namespace rdns::util {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

CliParser& CliParser::option(const std::string& name, const std::string& help,
                             std::optional<std::string> default_value) {
  options_[name] = OptionSpec{help, std::move(default_value), false};
  return *this;
}

CliParser& CliParser::flag(const std::string& name, const std::string& help) {
  options_[name] = OptionSpec{help, std::nullopt, true};
  return *this;
}

CliParser& CliParser::positional(const std::string& name, const std::string& help,
                                 std::optional<std::string> default_value) {
  positionals_.push_back(PositionalSpec{name, help, std::move(default_value)});
  return *this;
}

void CliParser::parse(const std::vector<std::string>& args) {
  values_.clear();
  flags_.clear();
  std::vector<std::string> positional_values;
  bool options_done = false;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (!options_done && arg == "--") {
      options_done = true;
      continue;
    }
    if (!options_done && arg.rfind("--", 0) == 0) {
      std::string name = arg.substr(2);
      std::optional<std::string> inline_value;
      const auto eq = name.find('=');
      if (eq != std::string::npos) {
        inline_value = name.substr(eq + 1);
        name = name.substr(0, eq);
      }
      const auto it = options_.find(name);
      if (it == options_.end()) throw CliError("unknown option --" + name);
      if (it->second.is_flag) {
        if (inline_value) throw CliError("flag --" + name + " takes no value");
        flags_[name] = true;
      } else if (inline_value) {
        values_[name] = *inline_value;
      } else {
        if (i + 1 >= args.size()) throw CliError("option --" + name + " needs a value");
        values_[name] = args[++i];
      }
      continue;
    }
    positional_values.push_back(arg);
  }

  if (positional_values.size() > positionals_.size()) {
    throw CliError("unexpected argument: " + positional_values[positionals_.size()]);
  }
  for (std::size_t i = 0; i < positionals_.size(); ++i) {
    if (i < positional_values.size()) {
      values_[positionals_[i].name] = positional_values[i];
    } else if (positionals_[i].default_value) {
      values_[positionals_[i].name] = *positionals_[i].default_value;
    } else {
      throw CliError("missing required argument <" + positionals_[i].name + ">");
    }
  }
  for (const auto& [name, spec] : options_) {
    if (!spec.is_flag && values_.find(name) == values_.end() && spec.default_value) {
      values_[name] = *spec.default_value;
    }
  }
}

bool CliParser::handle_help(const std::vector<std::string>& args) const {
  for (const auto& arg : args) {
    if (arg == "--") break;
    if (arg == "--help") {
      std::fputs(usage().c_str(), stdout);
      return true;
    }
  }
  return false;
}

std::string CliParser::get(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) throw CliError("no value for --" + name);
  return it->second;
}

std::optional<std::string> CliParser::get_optional(const std::string& name) const {
  const auto it = values_.find(name);
  return it == values_.end() ? std::nullopt : std::optional{it->second};
}

bool CliParser::get_flag(const std::string& name) const {
  const auto it = flags_.find(name);
  return it != flags_.end() && it->second;
}

int CliParser::get_int(const std::string& name) const {
  const std::string v = get(name);
  int out = 0;
  const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec != std::errc{} || ptr != v.data() + v.size()) {
    throw CliError("--" + name + " expects an integer, got '" + v + "'");
  }
  return out;
}

double CliParser::get_double(const std::string& name) const {
  const std::string v = get(name);
  try {
    std::size_t used = 0;
    const double out = std::stod(v, &used);
    if (used != v.size()) throw std::invalid_argument{""};
    return out;
  } catch (const std::exception&) {
    throw CliError("--" + name + " expects a number, got '" + v + "'");
  }
}

std::string CliParser::usage() const {
  std::ostringstream out;
  out << "usage: " << program_;
  for (const auto& [name, spec] : options_) {
    out << " [--" << name << (spec.is_flag ? "" : " <v>") << "]";
  }
  for (const auto& pos : positionals_) {
    out << (pos.default_value ? " [" : " <") << pos.name << (pos.default_value ? "]" : ">");
  }
  out << "\n";
  if (!description_.empty()) out << "  " << description_ << "\n";
  for (const auto& [name, spec] : options_) {
    out << "  --" << name << (spec.is_flag ? "" : " <v>") << "  " << spec.help;
    if (spec.default_value) out << " (default: " << *spec.default_value << ")";
    out << "\n";
  }
  for (const auto& pos : positionals_) {
    out << "  <" << pos.name << ">  " << pos.help;
    if (pos.default_value) out << " (default: " << *pos.default_value << ")";
    out << "\n";
  }
  return out.str();
}

}  // namespace rdns::util
