#pragma once
/// \file cli.hpp
/// A small command-line argument parser for the tools: long options with
/// values (--from 2021-01-01), boolean flags (--verbose), positional
/// arguments, and generated usage text. No external dependencies.

#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace rdns::util {

class CliError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Declarative option table + parse result.
class CliParser {
 public:
  explicit CliParser(std::string program, std::string description = "");

  /// Declare --name <value> with an optional default.
  CliParser& option(const std::string& name, const std::string& help,
                    std::optional<std::string> default_value = std::nullopt);

  /// Declare a boolean --name flag.
  CliParser& flag(const std::string& name, const std::string& help);

  /// Declare a positional argument (required unless a default is given).
  CliParser& positional(const std::string& name, const std::string& help,
                        std::optional<std::string> default_value = std::nullopt);

  /// Parse argv (excluding the program name). Throws CliError on unknown
  /// options, missing values or missing required positionals. "--" ends
  /// option processing.
  void parse(const std::vector<std::string>& args);

  /// If `args` asks for help (a "--help" before any "--" terminator),
  /// print usage() to stdout and return true; callers should then exit
  /// without parsing. Declared here once so every subcommand shares the
  /// same help convention instead of hand-rolled std::find scans.
  [[nodiscard]] bool handle_help(const std::vector<std::string>& args) const;

  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] std::optional<std::string> get_optional(const std::string& name) const;
  [[nodiscard]] bool get_flag(const std::string& name) const;
  [[nodiscard]] int get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;

  [[nodiscard]] std::string usage() const;

 private:
  struct OptionSpec {
    std::string help;
    std::optional<std::string> default_value;
    bool is_flag = false;
  };
  struct PositionalSpec {
    std::string name;
    std::string help;
    std::optional<std::string> default_value;
  };

  std::string program_;
  std::string description_;
  std::map<std::string, OptionSpec> options_;
  std::vector<PositionalSpec> positionals_;
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> flags_;
};

}  // namespace rdns::util
