#include "util/csv.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace rdns::util {

std::string csv_escape(std::string_view field) {
  const bool needs_quoting = field.find_first_of(",\"\r\n") != std::string_view::npos;
  if (!needs_quoting) return std::string{field};
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string csv_line(const CsvRow& row) {
  std::string out;
  std::size_t total = row.empty() ? 0 : row.size() - 1;  // commas
  for (const auto& field : row) total += field.size();
  out.reserve(total);
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out.push_back(',');
    out.append(csv_escape(row[i]));
  }
  return out;
}

CsvRow csv_parse_line(std::string_view line) {
  CsvRow row;
  std::string field;
  bool in_quotes = false;
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
    } else {
      if (c == '"' && field.empty()) {
        in_quotes = true;
      } else if (c == ',') {
        row.push_back(std::move(field));
        field.clear();
      } else if (c == '\r') {
        // Tolerate CRLF endings.
      } else {
        field.push_back(c);
      }
    }
    ++i;
  }
  if (in_quotes) throw std::invalid_argument("csv_parse_line: unterminated quoted field");
  row.push_back(std::move(field));
  return row;
}

void CsvWriter::write_row(const CsvRow& row) {
  // Reuse one line buffer across rows instead of a fresh csv_line string
  // per call; the bytes written are identical.
  line_.clear();
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i > 0) line_.push_back(',');
    if (row[i].find_first_of(",\"\r\n") == std::string::npos) {
      line_.append(row[i]);
    } else {
      line_.append(csv_escape(row[i]));
    }
  }
  line_.push_back('\n');
  out_.write(line_.data(), static_cast<std::streamsize>(line_.size()));
  ++rows_;
}

bool CsvReader::next(CsvRow& row) {
  std::string line;
  while (std::getline(in_, line)) {
    // A quoted field may span lines; accumulate until quotes balance.
    std::size_t quotes = 0;
    for (char c : line) quotes += (c == '"');
    while (quotes % 2 == 1) {
      std::string more;
      if (!std::getline(in_, more)) {
        throw std::invalid_argument("CsvReader: unterminated quoted field at end of input");
      }
      line.push_back('\n');
      line.append(more);
      for (char c : more) quotes += (c == '"');
    }
    if (trim_blank(line)) continue;
    row = csv_parse_line(line);
    return true;
  }
  return false;
}

bool CsvReader::trim_blank(const std::string& line) {
  for (char c : line) {
    if (c != ' ' && c != '\t' && c != '\r') return false;
  }
  return true;
}

std::vector<CsvRow> csv_parse(std::string_view text) {
  std::istringstream in{std::string{text}};
  CsvReader reader{in};
  std::vector<CsvRow> rows;
  CsvRow row;
  while (reader.next(row)) rows.push_back(row);
  return rows;
}

}  // namespace rdns::util
