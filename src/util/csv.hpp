#pragma once
/// \file csv.hpp
/// Minimal RFC 4180-style CSV reading and writing.
///
/// Both ZMap and the paper's custom rDNS tool "write the results as CSV
/// files to disk" (Section 6.1); our scanners do the same, and the analysis
/// pipeline can be fed from CSVs so it also works on real measurement data.

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace rdns::util {

/// One parsed CSV row.
using CsvRow = std::vector<std::string>;

/// Escape and quote a field if needed (embedded comma, quote or newline).
[[nodiscard]] std::string csv_escape(std::string_view field);

/// Serialize a row (no trailing newline).
[[nodiscard]] std::string csv_line(const CsvRow& row);

/// Parse a single CSV line (handles quoted fields and doubled quotes).
/// Throws std::invalid_argument on unterminated quotes.
[[nodiscard]] CsvRow csv_parse_line(std::string_view line);

/// Streaming writer over any std::ostream.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void write_row(const CsvRow& row);

  /// Convenience variadic form: writer.row("a", 1, 2.5);
  template <typename... Ts>
  void row(const Ts&... fields) {
    CsvRow r;
    r.reserve(sizeof...(fields));
    (r.push_back(to_field(fields)), ...);
    write_row(r);
  }

  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

 private:
  static std::string to_field(const std::string& s) { return s; }
  static std::string to_field(std::string_view s) { return std::string{s}; }
  static std::string to_field(const char* s) { return s; }
  template <typename T>
  static std::string to_field(const T& v) {
    return std::to_string(v);
  }

  std::ostream& out_;
  std::size_t rows_ = 0;
  std::string line_;  ///< reused per-row buffer (write_row)
};

/// Streaming reader over any std::istream.
class CsvReader {
 public:
  explicit CsvReader(std::istream& in) : in_(in) {}

  /// Read the next row; returns false at end of input. Skips blank lines.
  [[nodiscard]] bool next(CsvRow& row);

 private:
  /// True if the line is blank (only whitespace).
  [[nodiscard]] static bool trim_blank(const std::string& line);

  std::istream& in_;
};

/// Parse an entire CSV document held in memory.
[[nodiscard]] std::vector<CsvRow> csv_parse(std::string_view text);

}  // namespace rdns::util
