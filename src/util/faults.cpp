#include "util/faults.hpp"

#include "util/flight.hpp"
#include "util/journal.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace rdns::util::faults {

namespace {

namespace metrics = rdns::util::metrics;

/// Relaxed-atomic accounting for injected faults, keyed by site slug so
/// `check_metrics_schema.py --require-subsystems faults` can assert the
/// whole family is present.
struct FaultMetrics {
  metrics::Counter& injected = metrics::counter("faults.injected");
  std::array<metrics::Counter*, kSiteCount> per_site{};
  metrics::Histogram& site_index = metrics::histogram(
      "faults.site_index", metrics::Histogram::linear_bounds(0, 1, kSiteCount));

  FaultMetrics() {
    for (std::size_t i = 0; i < kSiteCount; ++i) {
      per_site[i] = &metrics::counter(std::string{"faults.injected."} +
                                      to_string(static_cast<Site>(i)));
    }
  }
};

FaultMetrics& fault_metrics() {
  static FaultMetrics m;
  return m;
}

constexpr std::size_t idx(Site s) noexcept { return static_cast<std::size_t>(s); }

/// Profile table. Probabilities are per-decision; budgets are per sweep
/// shard (one /24 = 256 queries plus retries). Numbers are tuned so the
/// chaos is visible but runs still complete: `degraded` in particular sets
/// a budget low enough that a small tail of shards exhausts it and lands
/// in the degraded-rows path.
constexpr std::array<Profile, 5> make_profiles() {
  std::array<Profile, 5> out{};

  out[0].name = "none";

  Profile& flaky = out[1];
  flaky.name = "flaky-dns";
  flaky.probability[idx(Site::DnsServfail)] = 0.02;
  flaky.probability[idx(Site::DnsTimeout)] = 0.02;
  flaky.probability[idx(Site::DnsTruncate)] = 0.005;
  flaky.shard_retry_budget = 64;

  Profile& lossy = out[2];
  lossy.name = "lossy-net";
  lossy.probability[idx(Site::IcmpProbeLoss)] = 0.05;
  lossy.probability[idx(Site::DhcpDropDiscover)] = 0.02;
  lossy.probability[idx(Site::DhcpDropRequest)] = 0.01;
  lossy.probability[idx(Site::DhcpDuplicateAck)] = 0.005;
  lossy.probability[idx(Site::DnsTimeout)] = 0.01;
  lossy.shard_retry_budget = 64;

  // Fig. 7: "approximately 1 in 10" removals fail to land within an hour.
  Profile& broken = out[3];
  broken.name = "broken-ddns";
  broken.probability[idx(Site::DdnsRemoveFail)] = 0.10;
  broken.probability[idx(Site::DdnsAddFail)] = 0.02;

  Profile& degraded = out[4];
  degraded.name = "degraded";
  degraded.probability[idx(Site::DnsServfail)] = 0.03;
  degraded.probability[idx(Site::DnsTimeout)] = 0.06;
  degraded.probability[idx(Site::DnsTruncate)] = 0.01;
  degraded.probability[idx(Site::IcmpProbeLoss)] = 0.03;
  degraded.probability[idx(Site::DhcpDropDiscover)] = 0.01;
  degraded.probability[idx(Site::DhcpDropRequest)] = 0.005;
  degraded.probability[idx(Site::DhcpDuplicateAck)] = 0.002;
  degraded.probability[idx(Site::DdnsAddFail)] = 0.01;
  degraded.probability[idx(Site::DdnsRemoveFail)] = 0.05;
  degraded.shard_retry_budget = 24;

  return out;
}

const std::array<Profile, 5>& profiles() {
  static const std::array<Profile, 5> table = make_profiles();
  return table;
}

}  // namespace

const char* to_string(Site site) noexcept {
  switch (site) {
    case Site::DnsServfail: return "dns.servfail";
    case Site::DnsTimeout: return "dns.timeout";
    case Site::DnsTruncate: return "dns.truncate";
    case Site::DhcpDropDiscover: return "dhcp.drop_discover";
    case Site::DhcpDropRequest: return "dhcp.drop_request";
    case Site::DhcpDuplicateAck: return "dhcp.dup_ack";
    case Site::DdnsAddFail: return "ddns.add";
    case Site::DdnsRemoveFail: return "ddns.remove";
    case Site::IcmpProbeLoss: return "icmp.loss";
  }
  return "?";
}

const Profile* find_profile(std::string_view name) noexcept {
  for (const Profile& p : profiles()) {
    if (name == p.name) return &p;
  }
  return nullptr;
}

std::string profile_names() {
  std::string out;
  for (const Profile& p : profiles()) {
    if (!out.empty()) out += ", ";
    out += p.name;
  }
  return out;
}

bool roll(std::uint64_t seed, Site site, std::uint64_t entity, std::uint64_t attempt,
          double probability) noexcept {
  if (probability <= 0.0) return false;
  // Same chained-mix + 53-bit-mantissa threshold idiom as the sweep's
  // server-side FaultPolicy hash: decisions behave like independent
  // Bernoulli draws but depend only on the arguments.
  std::uint64_t h = seed;
  h = mix64(h ^ (static_cast<std::uint64_t>(site) + 1));
  h = mix64(h ^ entity);
  h = mix64(h ^ (attempt + 0x9E3779B97F4A7C15ULL));
  return static_cast<double>(h >> 11) * 0x1.0p-53 < probability;
}

Injector& Injector::global() {
  static Injector inj;
  return inj;
}

void Injector::configure(const Profile& profile, std::uint64_t seed) {
  profile_ = profile;
  seed_ = seed;
  const bool arm = profile.any();
  if (arm) (void)fault_metrics();  // register the metric family up front
  enabled_.store(arm, std::memory_order_relaxed);
}

const Profile& Injector::profile() const noexcept {
  static const Profile none{};
  return enabled() ? profile_ : none;
}

bool Injector::should_fail(Site site, std::uint64_t entity, std::uint64_t attempt) const noexcept {
  if (!enabled()) return false;
  const double p = profile_.p(site);
  if (!roll(seed_, site, entity, attempt, p)) return false;
  FaultMetrics& m = fault_metrics();
  m.injected.inc();
  m.per_site[static_cast<std::size_t>(site)]->inc();
  m.site_index.observe(static_cast<double>(static_cast<std::size_t>(site)));
  flight::record(flight::Kind::FaultHit, entity,
                 static_cast<std::uint64_t>(site));
  return true;
}

void journal_fault(Site site, std::string_view key, std::string_view value, SimTime now) {
  if (auto* j = journal::active()) {
    journal::Event e{"fault.inject", now};
    e.str("site", to_string(site)).str(key, value);
    j->emit(e);
  }
}

}  // namespace rdns::util::faults
