#pragma once
/// \file faults.hpp
/// Seed-deterministic fault injection across every layer of the pipeline.
///
/// The paper's supplemental measurement ran against a lossy real Internet
/// ("name server failures, timeouts, and NXDOMAIN responses", §6.1) and
/// Fig. 7 shows ~1 in 10 PTR removals never landing. To reproduce those
/// operational conditions — and to prove the measurement stack survives
/// them — every layer exposes named injection Sites that consult one
/// process-wide Injector.
///
/// Determinism contract. A fault decision is a pure hash of
/// `(seed, site, entity, attempt)` — no RNG stream, no shared state — so
/// outcomes are independent of thread count, query order and interleaving,
/// exactly like the sweep's existing server-side fault hash
/// (dns::AuthoritativeServer::FaultPolicy). Two runs with the same profile
/// and seed inject the same faults at the same places.
///
/// Cost model. Disabled (the default), should_fail() is one relaxed atomic
/// load and a branch; enabled sites with probability 0 pay one extra load.
/// Callers on parallel paths must not journal per-decision (metrics only);
/// serial sites use journal_fault() to emit `fault.inject` events.

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/time.hpp"

namespace rdns::util::faults {

/// Every place the pipeline can inject a failure. The enumerator order is
/// frozen: it feeds the decision hash and the metrics/journal slugs.
enum class Site : std::uint8_t {
  DnsServfail = 0,    ///< authoritative server answers SERVFAIL
  DnsTimeout,         ///< query or response datagram lost
  DnsTruncate,        ///< response flagged TC, no answers (UDP truncation)
  DhcpDropDiscover,   ///< DISCOVER datagram lost before the server
  DhcpDropRequest,    ///< REQUEST datagram lost before the server
  DhcpDuplicateAck,   ///< ACK delivered twice (lease layer re-notified)
  DdnsAddFail,        ///< dynamic PTR add update lost
  DdnsRemoveFail,     ///< PTR removal lost — the Fig. 7 lingering tail
  IcmpProbeLoss,      ///< echo reply lost on the scanner side
};

inline constexpr std::size_t kSiteCount = 9;

/// Stable slug, e.g. "dns.servfail", "ddns.remove" — used for journal
/// `fault.inject` events and `faults.injected.<slug>` counters.
[[nodiscard]] const char* to_string(Site site) noexcept;

/// A chaos profile: per-site probabilities plus the resilience knob the
/// sweep derives its per-shard retry budget from.
struct Profile {
  const char* name = "none";
  std::array<double, kSiteCount> probability{};
  /// Total resolver retries a sweep shard may spend before it is declared
  /// exhausted (0 = unlimited).
  std::uint64_t shard_retry_budget = 0;

  [[nodiscard]] double p(Site site) const noexcept {
    return probability[static_cast<std::size_t>(site)];
  }
  [[nodiscard]] bool any() const noexcept {
    for (const double v : probability) {
      if (v > 0.0) return true;
    }
    return false;
  }
};

/// The named profiles selectable via `--faults` / RDNS_FAULTS. Returns
/// nullptr for unknown names.
[[nodiscard]] const Profile* find_profile(std::string_view name) noexcept;

/// "none, flaky-dns, ..." — for CLI error messages.
[[nodiscard]] std::string profile_names();

/// The pure decision function: true iff the fault fires. `entity`
/// identifies what the decision is about (a hashed qname, a MAC, an
/// address⊕time) and `attempt` decorrelates retries of the same entity.
[[nodiscard]] bool roll(std::uint64_t seed, Site site, std::uint64_t entity,
                        std::uint64_t attempt, double probability) noexcept;

/// Process-wide injector. configure() is called once at startup (before
/// worker threads exist); should_fail() is safe from any thread.
class Injector {
 public:
  static constexpr std::uint64_t kDefaultSeed = 0xC4A05'5EEDULL;

  [[nodiscard]] static Injector& global();

  /// Install a profile. Arms the injector iff any probability is non-zero.
  /// Not thread-safe against concurrent should_fail() — call before work
  /// starts (mirrors Journal::open / metrics enablement).
  void configure(const Profile& profile, std::uint64_t seed = kDefaultSeed);

  /// Disarm (back to the zero-cost disabled path).
  void disable() noexcept { enabled_.store(false, std::memory_order_relaxed); }

  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// The active profile ("none" when disarmed).
  [[nodiscard]] const Profile& profile() const noexcept;
  [[nodiscard]] const char* profile_name() const noexcept { return profile().name; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Hot path: false after one relaxed load when disabled. On a hit, bumps
  /// the `faults.*` metrics (relaxed atomics — safe on parallel paths).
  [[nodiscard]] bool should_fail(Site site, std::uint64_t entity,
                                 std::uint64_t attempt = 0) const noexcept;

 private:
  std::atomic<bool> enabled_{false};
  Profile profile_{};
  std::uint64_t seed_ = kDefaultSeed;
};

/// The armed global injector, or nullptr — the one-relaxed-load gate every
/// site goes through (mirrors journal::active()).
[[nodiscard]] inline Injector* active() noexcept {
  Injector& inj = Injector::global();
  return inj.enabled() ? &inj : nullptr;
}

/// Serial-site helper: emit a `fault.inject` journal event
/// {site, <key>: value} if the global journal is open. Parallel sites
/// (the sharded DNS query path) must NOT call this — their aggregates ride
/// in the sweep.shard events instead.
void journal_fault(Site site, std::string_view key, std::string_view value, SimTime now);

}  // namespace rdns::util::faults
