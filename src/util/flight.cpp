#include "util/flight.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <ostream>

#include "util/journal.hpp"
#include "util/metrics.hpp"

namespace rdns::util::flight {

namespace {

constexpr std::size_t kWordsPerSlot = 3;

std::size_t round_up_pow2(std::size_t n) {
  std::size_t c = 1;
  while (c < n) c <<= 1;
  return c;
}

/// Instance ids disambiguate the per-thread ring cache: comparing cached
/// owner *pointers* would misfire if a test recorder were destroyed and a
/// new one allocated at the same address.
std::atomic<std::uint64_t> g_instance_ids{1};

}  // namespace

const char* to_string(Kind kind) noexcept {
  switch (kind) {
    case Kind::QueryIssue: return "query.issue";
    case Kind::QueryDone: return "query.done";
    case Kind::Retry: return "query.retry";
    case Kind::Backoff: return "query.backoff";
    case Kind::Timeout: return "query.timeout";
    case Kind::FaultHit: return "fault.hit";
    case Kind::ShardStart: return "shard.start";
    case Kind::ShardFinish: return "shard.finish";
    case Kind::ShardDegrade: return "shard.degrade";
    case Kind::ProbeSent: return "probe.sent";
    case Kind::CampaignBackoff: return "campaign.backoff";
    case Kind::RrlDrop: return "rrl.drop";
    case Kind::RrlSlip: return "rrl.slip";
    case Kind::ShedLevel: return "shed.level";
    case Kind::kCount: break;
  }
  return "?";
}

/// One ring per recording thread. Exactly one writer (the owning thread);
/// `head` counts events ever recorded and is published with release so a
/// drain that acquires it sees fully written slots. Payload cells are
/// relaxed atomics: a wrap during a drain reuses cells the drain may be
/// copying, which is a value race the drain detects (and drops), never a
/// data race.
struct FlightRecorder::ThreadRing {
  ThreadRing(std::uint16_t index, std::size_t capacity)
      : index(index),
        capacity(capacity),
        words(new std::atomic<std::uint64_t>[capacity * kWordsPerSlot]()) {}

  const std::uint16_t index;
  const std::size_t capacity;  ///< power of two
  std::atomic<std::uint64_t> head{0};
  std::uint64_t drained = 0;  ///< consumed prefix; guarded by FlightRecorder::mu_
  std::unique_ptr<std::atomic<std::uint64_t>[]> words;
};

FlightRecorder::FlightRecorder()
    : instance_id_(g_instance_ids.fetch_add(1, std::memory_order_relaxed)) {}

FlightRecorder::~FlightRecorder() = default;

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::arm(std::size_t capacity_per_thread) {
  {
    std::lock_guard<std::mutex> lock{mu_};
    capacity_ = capacity_per_thread == 0 ? 1 : capacity_per_thread;
  }
  armed_.store(true, std::memory_order_relaxed);
}

void FlightRecorder::disarm() { armed_.store(false, std::memory_order_relaxed); }

void FlightRecorder::record(Kind kind, std::uint64_t a, std::uint64_t b) noexcept {
  if (!armed()) return;
  ThreadRing* ring = ring_for_this_thread();
  if (ring == nullptr) return;
  const std::uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
  std::atomic<std::uint64_t>* slot =
      &ring->words[(head & (ring->capacity - 1)) * kWordsPerSlot];
  slot[0].store(seq, std::memory_order_relaxed);
  slot[1].store(a, std::memory_order_relaxed);
  slot[2].store(((b & 0xFFFFFFFFULL) << 32) |
                    (static_cast<std::uint64_t>(kind) << 16) | ring->index,
                std::memory_order_relaxed);
  ring->head.store(head + 1, std::memory_order_release);
}

FlightRecorder::ThreadRing* FlightRecorder::ring_for_this_thread() {
  struct Cache {
    std::uint64_t owner = 0;
    ThreadRing* ring = nullptr;
  };
  thread_local Cache cache;
  if (cache.owner == instance_id_) return cache.ring;
  std::lock_guard<std::mutex> lock{mu_};
  ThreadRing*& registered = by_thread_[std::this_thread::get_id()];
  if (registered == nullptr) {
    if (rings_.size() > 0xFFFF) return nullptr;  // thread index is packed in 16 bits
    rings_.push_back(std::make_unique<ThreadRing>(
        static_cast<std::uint16_t>(rings_.size()), round_up_pow2(capacity_)));
    registered = rings_.back().get();
  }
  cache.owner = instance_id_;
  cache.ring = registered;
  return registered;
}

FlightRecorder::DrainStats FlightRecorder::drain(std::vector<Event>& out) {
  DrainStats stats;
  const std::size_t base = out.size();
  {
    std::lock_guard<std::mutex> lock{mu_};
    stats.threads = rings_.size();
    for (const auto& ring_ptr : rings_) {
      ThreadRing& ring = *ring_ptr;
      const std::uint64_t head = ring.head.load(std::memory_order_acquire);
      std::uint64_t from = ring.drained;
      if (head > ring.capacity && from < head - ring.capacity) {
        stats.dropped += (head - ring.capacity) - from;  // lapped before this drain
        from = head - ring.capacity;
      }
      const std::size_t first = out.size();
      for (std::uint64_t i = from; i < head; ++i) {
        const std::atomic<std::uint64_t>* slot =
            &ring.words[(i & (ring.capacity - 1)) * kWordsPerSlot];
        Event event;
        event.seq = slot[0].load(std::memory_order_relaxed);
        event.a = slot[1].load(std::memory_order_relaxed);
        const std::uint64_t packed = slot[2].load(std::memory_order_relaxed);
        event.b = static_cast<std::uint32_t>(packed >> 32);
        event.kind = static_cast<std::uint16_t>((packed >> 16) & 0xFFFF);
        event.thread = static_cast<std::uint16_t>(packed & 0xFFFF);
        out.push_back(event);
      }
      // The writer may have lapped part of [from, head) while we copied:
      // those cells were reused, so the copies hold torn or duplicate
      // values. Re-reading the head bounds exactly which indices are
      // suspect; dropping them keeps every surviving event exactly-once
      // (the overwriting events are still in the ring for the next drain).
      const std::uint64_t head_after = ring.head.load(std::memory_order_acquire);
      const std::uint64_t safe_from =
          head_after > ring.capacity ? head_after - ring.capacity : 0;
      if (safe_from > from) {
        const std::uint64_t overtaken = std::min(safe_from, head) - from;
        out.erase(out.begin() + static_cast<std::ptrdiff_t>(first),
                  out.begin() + static_cast<std::ptrdiff_t>(first + overtaken));
        stats.dropped += overtaken;
      }
      ring.drained = head;
    }
  }
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(base), out.end(),
            [](const Event& x, const Event& y) { return x.seq < y.seq; });
  stats.events = out.size() - base;
  metrics::counter("flight.events").inc(stats.events);
  metrics::counter("flight.dropped").inc(stats.dropped);
  return stats;
}

FlightRecorder::DrainStats FlightRecorder::drain_jsonl(std::ostream& out) {
  std::vector<Event> events;
  const DrainStats stats = drain(events);
  std::uint64_t segment = 0;
  {
    std::lock_guard<std::mutex> lock{mu_};
    segment = ++segments_;
  }
  std::string line;
  line += "{\"schema\":\"rdns.flight.v1\",\"segment\":";
  line += std::to_string(segment);
  line += ",\"events\":";
  line += std::to_string(stats.events);
  line += ",\"dropped\":";
  line += std::to_string(stats.dropped);
  line += ",\"threads\":";
  line += std::to_string(stats.threads);
  if (const auto manifest = journal::Journal::global().manifest()) {
    line += ",\"manifest\":";
    line += journal::manifest_json(*manifest);
  }
  line += "}\n";
  out << line;
  for (const Event& event : events) {
    line.clear();
    line += "{\"seq\":";
    line += std::to_string(event.seq);
    line += ",\"kind\":\"";
    line += to_string(event.kind < kKindCount ? static_cast<Kind>(event.kind)
                                              : Kind::kCount);
    line += "\",\"t\":";
    line += std::to_string(event.thread);
    line += ",\"a\":";
    line += std::to_string(event.a);
    line += ",\"b\":";
    line += std::to_string(event.b);
    line += "}\n";
    out << line;
  }
  out.flush();
  return stats;
}

bool FlightRecorder::set_dump_path(const std::string& path) {
  bool register_atexit = false;
  bool writable = false;
  {
    std::lock_guard<std::mutex> lock{mu_};
    std::ofstream truncate{path, std::ios::trunc};  // start a fresh dump file
    writable = static_cast<bool>(truncate);
    if (!writable) return false;
    dump_path_ = path;
    if (!atexit_registered_) {
      atexit_registered_ = true;
      register_atexit = true;
    }
  }
  // Only the global recorder outlives atexit handlers; test instances
  // must drain explicitly.
  if (register_atexit && this == &global()) {
    std::atexit([] { (void)FlightRecorder::global().dump_now(); });
  }
  return true;
}

std::string FlightRecorder::dump_path() const {
  std::lock_guard<std::mutex> lock{mu_};
  return dump_path_;
}

bool FlightRecorder::dump_now(std::string* error) {
  const std::string path = dump_path();
  if (path.empty()) {
    if (error != nullptr) *error = "no flight dump path configured";
    return false;
  }
  std::ofstream out{path, std::ios::app};
  if (!out) {
    if (error != nullptr) *error = "cannot open flight dump file: " + path;
    return false;
  }
  drain_jsonl(out);
  if (!out && error != nullptr) *error = "short write to flight dump file: " + path;
  return static_cast<bool>(out);
}

std::size_t FlightRecorder::ring_capacity() const noexcept {
  std::lock_guard<std::mutex> lock{mu_};
  return round_up_pow2(capacity_);
}

}  // namespace rdns::util::flight
