#pragma once
/// \file flight.hpp
/// util::flight — a per-thread lock-free flight recorder for the scan path.
///
/// Long sweeps are a black box until the CSV and journal land: the journal
/// is deliberately deterministic and therefore cannot carry high-volume
/// per-query telemetry, and metrics are aggregates with no per-event
/// ordering. The flight recorder fills that gap: every thread records
/// compact 24-byte events (query issue/done, retry, backoff, timeout,
/// fault hits, shard lifecycle) into its own fixed-capacity ring buffer,
/// and a drain — on demand, on SIGUSR2, or at exit — merges the rings
/// into a schema-versioned `rdns.flight.v1` JSONL dump ordered by a
/// global sequence number.
///
/// Cost model (mirrors util::journal::active() and util::faults::active()):
///   - disarmed (the default): one relaxed atomic load per record() call;
///   - armed: one relaxed fetch_add (global sequence), three relaxed
///     stores and one release store into the calling thread's own ring —
///     no locks, no allocation, no syscalls on the hot path.
///
/// Memory model: each ring has exactly one writer (its owning thread) and
/// stores its payload in relaxed std::atomic<u64> cells, so a concurrent
/// drain never races bytes (TSan-clean by construction, same discipline
/// as dns::ServeIntrospection's seqlock slots). The ring is bounded: when
/// a thread outruns the drain, the oldest events are overwritten and
/// accounted as `dropped` — recording never blocks the sweep.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace rdns::util::flight {

/// Event kinds, frozen for the `rdns.flight.v1` schema (append-only; the
/// slugs in to_string() are part of the dump format). The two payload
/// words `a` (64-bit) and `b` (32-bit) are kind-specific:
///   query.issue    a = transaction id        b = attempt index (0-based)
///   query.done     a = attempts used         b = LookupStatus value
///   query.retry    a = transaction id        b = attempt index being retried
///   query.backoff  a = virtual delay (s)     b = backoff base (s)
///   query.timeout  a = transaction id        b = attempt index
///   fault.hit      a = entity key            b = faults::Site value
///   shard.start    a = first address value   b = shard index
///   shard.finish   a = rows emitted          b = shard index
///   shard.degrade  a = first address value   b = shard index
///   probe.sent     a = address value         b = probes sent in this phase
///   campaign.backoff a = next delay (s)      b = probes done so far
///   rrl.drop       a = client address        b = worker index
///   rrl.slip       a = client address        b = worker index
///   shed.level     a = new shed level        b = worker index
enum class Kind : std::uint16_t {
  QueryIssue = 0,
  QueryDone,
  Retry,
  Backoff,
  Timeout,
  FaultHit,
  ShardStart,
  ShardFinish,
  ShardDegrade,
  ProbeSent,
  CampaignBackoff,
  RrlDrop,
  RrlSlip,
  ShedLevel,
  kCount,
};

inline constexpr std::size_t kKindCount = static_cast<std::size_t>(Kind::kCount);

/// Stable dump slug ("query.issue", "shard.degrade", ...).
[[nodiscard]] const char* to_string(Kind kind) noexcept;

/// A drained event (the in-ring form is three packed u64 words).
struct Event {
  std::uint64_t seq = 0;      ///< global record order across all threads
  std::uint64_t a = 0;        ///< first payload word (kind-specific)
  std::uint32_t b = 0;        ///< second payload word (kind-specific)
  std::uint16_t kind = 0;     ///< Kind value
  std::uint16_t thread = 0;   ///< ring registration index of the writer
};

class FlightRecorder {
 public:
  /// Per-thread ring capacity in events (rounded up to a power of two).
  /// 16384 events * 24 B = 384 KiB per recording thread.
  static constexpr std::size_t kDefaultCapacity = 1 << 14;

  FlightRecorder();
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Process-wide instance used by the instrumented subsystems.
  static FlightRecorder& global();

  /// Arm recording. Idempotent; rings already registered keep their
  /// capacity, new threads get `capacity_per_thread` slots.
  void arm(std::size_t capacity_per_thread = kDefaultCapacity);
  void disarm();
  [[nodiscard]] bool armed() const noexcept {
    return armed_.load(std::memory_order_relaxed);
  }

  /// Record one event into the calling thread's ring. Callers should gate
  /// through util::flight::active() / record() below so the disarmed cost
  /// stays at one relaxed load.
  void record(Kind kind, std::uint64_t a, std::uint64_t b) noexcept;

  struct DrainStats {
    std::uint64_t events = 0;   ///< events appended by this drain
    std::uint64_t dropped = 0;  ///< events lost to ring wrap since last drain
    std::size_t threads = 0;    ///< rings registered so far
  };

  /// Move every event recorded since the last drain into `out`, ordered
  /// by global sequence number. Safe to call while other threads keep
  /// recording: events overwritten mid-copy are counted as dropped, and
  /// events recorded after the drain began are left for the next drain.
  DrainStats drain(std::vector<Event>& out);

  /// Drain as one `rdns.flight.v1` JSONL segment: a header line (schema,
  /// segment index, event/drop accounting, RunManifest when the journal
  /// has one) followed by one line per event.
  DrainStats drain_jsonl(std::ostream& out);

  /// Set the dump file (truncates it) and register a process-exit drain.
  /// SIGUSR2 handling in the tool calls dump_now() on the same path; each
  /// call appends one segment, so a dump file is a sequence of segments.
  /// Returns false (path unset) when the file cannot be created.
  bool set_dump_path(const std::string& path);
  [[nodiscard]] std::string dump_path() const;

  /// Append one segment to the configured dump path. Returns false (with
  /// `error`) when no path is configured or the file cannot be opened.
  bool dump_now(std::string* error = nullptr);

  /// Test hooks.
  [[nodiscard]] std::size_t ring_capacity() const noexcept;
  [[nodiscard]] std::uint64_t sequence() const noexcept {
    return seq_.load(std::memory_order_relaxed);
  }

 private:
  struct ThreadRing;

  ThreadRing* ring_for_this_thread();

  std::atomic<bool> armed_{false};
  std::atomic<std::uint64_t> seq_{0};
  const std::uint64_t instance_id_;

  mutable std::mutex mu_;  ///< guards rings_, by_thread_, drain bookkeeping, dump path
  std::vector<std::unique_ptr<ThreadRing>> rings_;
  std::unordered_map<std::thread::id, ThreadRing*> by_thread_;
  std::size_t capacity_ = kDefaultCapacity;
  std::string dump_path_;
  std::uint64_t segments_ = 0;
  bool atexit_registered_ = false;
};

/// One-relaxed-load gate: nullptr while disarmed.
[[nodiscard]] inline FlightRecorder* active() noexcept {
  FlightRecorder& recorder = FlightRecorder::global();
  return recorder.armed() ? &recorder : nullptr;
}

/// Convenience for instrumentation sites: record iff armed.
inline void record(Kind kind, std::uint64_t a, std::uint64_t b) noexcept {
  if (FlightRecorder* recorder = active()) recorder->record(kind, a, b);
}

}  // namespace rdns::util::flight
