#include "util/journal.hpp"

#include <cmath>
#include <cstdlib>

#include "util/metrics.hpp"
#include "util/strings.hpp"

namespace rdns::util::journal {

namespace {

/// Append `"key":` with the key escaped (keys here are compile-time ASCII,
/// but escaping keeps the writer total).
void append_key(std::string& out, std::string_view key) {
  out += ",\"";
  metrics::append_json_escaped(out, key);
  out += "\":";
}

void append_manifest_fields(std::string& out, const RunManifest& m, bool include_threads) {
  out += "\"tool\":\"";
  metrics::append_json_escaped(out, m.tool);
  out += "\",\"version\":\"";
  metrics::append_json_escaped(out, m.version);
  out += "\"";
  out += format(",\"seed\":%llu", static_cast<unsigned long long>(m.seed));
  // The digest is a full 64-bit hash: hex keeps it exact through JSON
  // readers that store numbers as doubles.
  out += format(",\"world_digest\":\"%016llx\"",
                static_cast<unsigned long long>(m.world_digest));
  out += ",\"faults\":\"";
  metrics::append_json_escaped(out, m.faults);
  out += "\"";
  if (include_threads) out += format(",\"threads\":%u", m.threads);
  out += ",\"events_schema\":\"";
  metrics::append_json_escaped(out, m.events_schema);
  out += "\",\"observability_schema\":\"";
  metrics::append_json_escaped(out, m.observability_schema);
  out += "\"";
}

}  // namespace

std::string version_string() {
#ifdef RDNS_VERSION
  return RDNS_VERSION;
#else
  return "0.0.0";
#endif
}

std::string manifest_json(const RunManifest& m, bool include_threads) {
  std::string out = "{";
  append_manifest_fields(out, m, include_threads);
  out += "}";
  return out;
}

std::string manifest_event_line(const RunManifest& m) {
  // The header is part of the byte-identical stream, so it omits the thread
  // count (see manifest_json's contract) and pins t to 0: provenance fields
  // only, no run-shape fields.
  std::string out = "{\"t\":0,\"type\":\"manifest\",";
  append_manifest_fields(out, m, /*include_threads=*/false);
  out += "}\n";
  return out;
}

bool manifests_compatible(const RunManifest& a, const RunManifest& b, std::string* why) {
  const auto fail = [&](const char* field) {
    if (why != nullptr) *why = field;
    return false;
  };
  if (a.seed != b.seed) return fail("seed");
  if (a.world_digest != b.world_digest) return fail("world_digest");
  if (a.faults != b.faults) return fail("faults");
  if (a.version != b.version) return fail("version");
  if (a.events_schema != b.events_schema) return fail("events_schema");
  if (a.observability_schema != b.observability_schema) return fail("observability_schema");
  return true;
}

Event::Event(std::string_view type, SimTime t) {
  body_ = format("{\"t\":%lld", static_cast<long long>(t));
  append_key(body_, "type");
  body_ += '"';
  metrics::append_json_escaped(body_, type);
  body_ += '"';
}

Event& Event::str(std::string_view key, std::string_view value) {
  append_key(body_, key);
  body_ += '"';
  metrics::append_json_escaped(body_, value);
  body_ += '"';
  return *this;
}

Event& Event::num(std::string_view key, std::int64_t value) {
  append_key(body_, key);
  body_ += format("%lld", static_cast<long long>(value));
  return *this;
}

Event& Event::unum(std::string_view key, std::uint64_t value) {
  append_key(body_, key);
  body_ += format("%llu", static_cast<unsigned long long>(value));
  return *this;
}

Event& Event::real(std::string_view key, double value) {
  append_key(body_, key);
  body_ += metrics::json_number(value);
  return *this;
}

Event& Event::boolean(std::string_view key, bool value) {
  append_key(body_, key);
  body_ += value ? "true" : "false";
  return *this;
}

std::string Event::line() const { return body_ + "}\n"; }

Journal& Journal::global() {
  static Journal j;
  return j;
}

bool Journal::open(const std::string& path) {
  std::lock_guard lock{m_};
  if (out_.is_open()) out_.close();
  out_.open(path, std::ios::out | std::ios::trunc);
  header_written_ = false;
  if (!out_) {
    enabled_.store(false, std::memory_order_relaxed);
    return false;
  }
  if (manifest_) {
    out_ << manifest_event_line(*manifest_);
    header_written_ = true;
  }
  enabled_.store(true, std::memory_order_relaxed);
  return true;
}

void Journal::close() {
  std::lock_guard lock{m_};
  enabled_.store(false, std::memory_order_relaxed);
  if (out_.is_open()) out_.close();
  header_written_ = false;
}

void Journal::emit(const Event& event) {
  if (suspended_.load(std::memory_order_relaxed) != 0) return;
  const std::string line = event.line();
  std::lock_guard lock{m_};
  if (out_.is_open()) out_ << line;
}

void Journal::append_raw(std::string_view lines) {
  if (lines.empty()) return;
  std::lock_guard lock{m_};
  if (out_.is_open()) out_ << lines;
}

void Journal::set_manifest(const RunManifest& manifest) {
  std::lock_guard lock{m_};
  manifest_ = manifest;
  if (out_.is_open() && !header_written_) {
    out_ << manifest_event_line(manifest);
    header_written_ = true;
  }
}

std::optional<RunManifest> Journal::manifest() const {
  std::lock_guard lock{m_};
  return manifest_;
}

// -- JSON reader -------------------------------------------------------------

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string JsonValue::get_string(std::string_view key, std::string_view def) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->kind == Kind::String ? v->string : std::string{def};
}

std::int64_t JsonValue::get_int(std::string_view key, std::int64_t def) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->kind == Kind::Number ? static_cast<std::int64_t>(v->number) : def;
}

double JsonValue::get_number(std::string_view key, double def) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->kind == Kind::Number ? v->number : def;
}

bool JsonValue::get_bool(std::string_view key, bool def) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->kind == Kind::Bool ? v->boolean : def;
}

namespace {

/// Recursive-descent parser over a string_view cursor. Depth-capped so a
/// hostile document cannot blow the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse(std::string* error) {
    JsonValue value;
    if (!parse_value(value, 0)) {
      if (error != nullptr) *error = format("%s at offset %zu", error_, pos_);
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error != nullptr) *error = format("trailing data at offset %zu", pos_);
      return std::nullopt;
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool fail(const char* what) {
    error_ = what;
    return false;
  }

  [[nodiscard]] bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_value(JsonValue& out, int depth) {  // NOLINT(misc-no-recursion)
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"':
        out.kind = JsonValue::Kind::String;
        return parse_string(out.string);
      case 't':
        if (text_.substr(pos_, 4) != "true") return fail("bad literal");
        pos_ += 4;
        out.kind = JsonValue::Kind::Bool;
        out.boolean = true;
        return true;
      case 'f':
        if (text_.substr(pos_, 5) != "false") return fail("bad literal");
        pos_ += 5;
        out.kind = JsonValue::Kind::Bool;
        out.boolean = false;
        return true;
      case 'n':
        if (text_.substr(pos_, 4) != "null") return fail("bad literal");
        pos_ += 4;
        out.kind = JsonValue::Kind::Null;
        return true;
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out, int depth) {  // NOLINT(misc-no-recursion)
    ++pos_;  // '{'
    out.kind = JsonValue::Kind::Object;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected object key");
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue& out, int depth) {  // NOLINT(misc-no-recursion)
    ++pos_;  // '['
    out.kind = JsonValue::Kind::Array;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.array.push_back(std::move(value));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return true;
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return fail("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4U;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape");
          }
          // The writers only escape control characters; decode BMP code
          // points as UTF-8 (surrogate pairs are not produced by our side).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0U | (code >> 6U)));
            out.push_back(static_cast<char>(0x80U | (code & 0x3FU)));
          } else {
            out.push_back(static_cast<char>(0xE0U | (code >> 12U)));
            out.push_back(static_cast<char>(0x80U | ((code >> 6U) & 0x3FU)));
            out.push_back(static_cast<char>(0x80U | (code & 0x3FU)));
          }
          break;
        }
        default: return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      const bool number_char = (c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
                               c == '+' || c == '-';
      if (!number_char) break;
      ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    const std::string token{text_.substr(start, pos_ - start)};
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(v)) return fail("bad number");
    out.kind = JsonValue::Kind::Number;
    out.number = v;
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  const char* error_ = "parse error";
};

}  // namespace

std::optional<JsonValue> parse_json(std::string_view text, std::string* error) {
  return JsonParser{text}.parse(error);
}

}  // namespace rdns::util::journal
