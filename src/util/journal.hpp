#pragma once
/// \file journal.hpp
/// Append-only structured event stream (JSONL, schema "rdns.events.v1"):
/// the third leg of the observability stack (metrics + traces + events).
/// Domain code emits typed lifecycle events — DHCP lease transitions, DDNS
/// PTR add/remove, resolver query outcomes, reactive-campaign probe steps —
/// that an auditor (core/journal_audit.hpp, `rdns_tool verify`) can replay
/// to check the paper's timing claims mechanically.
///
/// Determinism contract. Events carry *simulated* time, never wall time,
/// and every serial producer (the sim event loop, DHCP servers, bridges,
/// the reactive engine) appends in call order. The only parallel producer —
/// the per-/24-sharded wire sweep — writes into a per-shard Buffer that is
/// folded through the existing OrderedMergeBuffer in shard order, so the
/// journal is byte-identical at any thread count.
///
/// Cost model mirrors metrics::collect_timing(): journal::active() is one
/// relaxed atomic load and returns nullptr unless --journal-out opened a
/// file, so disabled call sites pay nothing else.

#include <atomic>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/time.hpp"

namespace rdns::util::journal {

inline constexpr const char* kEventsSchema = "rdns.events.v1";
inline constexpr const char* kObservabilitySchema = "rdns.observability.v1";

/// Binary version baked in by the build (RDNS_VERSION compile definition).
[[nodiscard]] std::string version_string();

/// Provenance of one run: enough to decide whether two artifacts (journals,
/// metrics snapshots, BENCH_*.json results) are comparable. Embedded as the
/// journal's header event, as the "manifest" object of observability
/// snapshots, and in bench result documents.
struct RunManifest {
  std::string tool;                ///< e.g. "rdns_tool.campaign", "bench.fig7"
  std::string version;             ///< version_string()
  std::uint64_t seed = 0;          ///< world seed
  std::uint64_t world_digest = 0;  ///< sim::World::config_digest() (0 = no world)
  std::string faults = "none";     ///< chaos profile name (util::faults)
  unsigned threads = 0;            ///< worker pool size of this run
  std::string events_schema = kEventsSchema;
  std::string observability_schema = kObservabilitySchema;
};

/// Single-line JSON object for snapshots and bench documents. The journal
/// header omits the thread count (`include_threads = false`): the event
/// stream is thread-invariant by construction, so the header only carries
/// fields that determine the stream's content.
[[nodiscard]] std::string manifest_json(const RunManifest& m, bool include_threads = true);

/// The journal's first line: a "manifest" event at t=0 (ends with '\n').
[[nodiscard]] std::string manifest_event_line(const RunManifest& m);

/// Provenance compatibility: same seed, world digest, version and schemas.
/// Thread counts are intentionally ignored — determinism across thread
/// counts is the whole point. On mismatch, `why` (if non-null) names the
/// first differing field.
[[nodiscard]] bool manifests_compatible(const RunManifest& a, const RunManifest& b,
                                        std::string* why = nullptr);

/// One journal event, rendered eagerly into a single JSON line with
/// insertion-ordered keys ("t" and "type" first), so the byte stream is a
/// pure function of the emission sequence.
class Event {
 public:
  Event(std::string_view type, SimTime t);

  Event& str(std::string_view key, std::string_view value);
  Event& num(std::string_view key, std::int64_t value);
  Event& unum(std::string_view key, std::uint64_t value);
  Event& real(std::string_view key, double value);
  Event& boolean(std::string_view key, bool value);

  /// The complete line including the closing brace and trailing '\n'.
  [[nodiscard]] std::string line() const;

 private:
  std::string body_;  ///< '{' + fields, no closing brace
};

/// Destination for events. The global Journal and per-shard Buffers both
/// implement it, so emitters (e.g. the stub resolver) don't care whether
/// they write straight to the file or into a shard-ordered staging buffer.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void emit(const Event& event) = 0;
};

/// Local line accumulator for parallel shards: workers emit into their own
/// Buffer, and the ordered merge appends take() output in shard order.
class Buffer final : public Sink {
 public:
  void emit(const Event& event) override { lines_ += event.line(); }
  [[nodiscard]] bool empty() const noexcept { return lines_.empty(); }
  [[nodiscard]] std::string take() { return std::exchange(lines_, {}); }

 private:
  std::string lines_;
};

/// The process-wide journal. Disabled (the default), active() returns
/// nullptr after one relaxed load; open() (driven by --journal-out) arms it.
/// All writes are mutex-guarded appends to one ofstream.
class Journal final : public Sink {
 public:
  Journal() = default;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  [[nodiscard]] static Journal& global();

  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed) &&
           suspended_.load(std::memory_order_relaxed) == 0;
  }

  /// Nestable suspension: while the count is non-zero, active() returns
  /// nullptr and emit() drops events, but the stream stays open. Used by
  /// hot zone reload, whose world rebuild would replay day-one events with
  /// backwards timestamps into an otherwise monotone journal.
  void suspend() noexcept { suspended_.fetch_add(1, std::memory_order_relaxed); }
  void resume() noexcept { suspended_.fetch_sub(1, std::memory_order_relaxed); }

  /// Open (truncate) `path` and enable emission. If a manifest is already
  /// set, the header event is written immediately. Returns false (journal
  /// stays disabled) when the file cannot be created.
  bool open(const std::string& path);

  /// Flush + close the stream and disable emission. Idempotent.
  void close();

  void emit(const Event& event) override;

  /// Append pre-rendered lines (a Buffer::take() result) verbatim.
  void append_raw(std::string_view lines);

  /// Record run provenance. Writes the header event if the journal is open
  /// and none has been written yet; the manifest is also kept for snapshot
  /// and bench writers regardless of whether a journal file is open.
  void set_manifest(const RunManifest& manifest);

  [[nodiscard]] std::optional<RunManifest> manifest() const;

 private:
  mutable std::mutex m_;
  std::atomic<bool> enabled_{false};
  std::atomic<int> suspended_{0};
  std::ofstream out_;
  std::optional<RunManifest> manifest_;
  bool header_written_ = false;
};

/// RAII form of Journal::suspend()/resume() on the global journal.
class ScopedSuspend {
 public:
  ScopedSuspend() noexcept { Journal::global().suspend(); }
  ~ScopedSuspend() { Journal::global().resume(); }
  ScopedSuspend(const ScopedSuspend&) = delete;
  ScopedSuspend& operator=(const ScopedSuspend&) = delete;
};

/// The enabled global journal, or nullptr — the one-relaxed-load gate every
/// instrumentation site goes through (mirrors metrics::collect_timing()).
[[nodiscard]] inline Journal* active() noexcept {
  Journal& j = Journal::global();
  return j.enabled() ? &j : nullptr;
}

// -- minimal JSON reader (for the auditor's replay path) ---------------------

/// A parsed JSON value. Objects preserve insertion order (journal lines are
/// written with deliberate key order, and error messages read better when
/// replayed in the same order).
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;

  /// Typed object-member getters with defaults (no-throw convenience).
  [[nodiscard]] std::string get_string(std::string_view key, std::string_view def = "") const;
  [[nodiscard]] std::int64_t get_int(std::string_view key, std::int64_t def = 0) const;
  [[nodiscard]] double get_number(std::string_view key, double def = 0.0) const;
  [[nodiscard]] bool get_bool(std::string_view key, bool def = false) const;
  [[nodiscard]] bool has(std::string_view key) const noexcept { return find(key) != nullptr; }
};

/// Parse one JSON document (objects, arrays, strings with escapes, numbers,
/// booleans, null). Returns nullopt and fills `error` on malformed input.
[[nodiscard]] std::optional<JsonValue> parse_json(std::string_view text,
                                                  std::string* error = nullptr);

}  // namespace rdns::util::journal
