#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <ctime>
#include <mutex>

#include "util/time.hpp"

namespace rdns::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};

std::mutex& log_mutex() {
  static std::mutex m;
  return m;
}

[[nodiscard]] const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(static_cast<int>(level)); }

LogLevel log_level() noexcept { return static_cast<LogLevel>(g_level.load()); }

std::optional<LogLevel> parse_log_level(std::string_view s) noexcept {
  std::string lowered;
  lowered.reserve(s.size());
  for (char c : s) {
    lowered.push_back(c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c);
  }
  if (lowered == "debug") return LogLevel::Debug;
  if (lowered == "info") return LogLevel::Info;
  if (lowered == "warn" || lowered == "warning") return LogLevel::Warn;
  if (lowered == "error") return LogLevel::Error;
  if (lowered == "off") return LogLevel::Off;
  return std::nullopt;
}

const char* to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "?";
}

LogLevel cycle_log_level(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Debug: return LogLevel::Info;
    case LogLevel::Info: return LogLevel::Warn;
    case LogLevel::Warn: return LogLevel::Error;
    case LogLevel::Error: return LogLevel::Debug;
    case LogLevel::Off: return LogLevel::Debug;
  }
  return LogLevel::Debug;
}

LogLevel resolve_log_level(bool verbose, bool quiet, const char* env_value) noexcept {
  if (quiet) return LogLevel::Error;
  if (verbose) return LogLevel::Info;
  if (env_value != nullptr) {
    if (const auto level = parse_log_level(env_value)) return *level;
  }
  return LogLevel::Warn;
}

std::string format_log_line(LogLevel level, const std::string& message,
                            std::int64_t unix_seconds) {
  const CivilDateTime dt = to_civil_date_time(unix_seconds);
  char prefix[48];
  std::snprintf(prefix, sizeof prefix, "%04d-%02d-%02dT%02d:%02d:%02dZ [%s] ", dt.date.year,
                dt.date.month, dt.date.day, dt.hour, dt.minute, dt.second, level_name(level));
  std::string line{prefix};
  line += message;
  line += '\n';
  return line;
}

void log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_level.load()) return;
  const std::string line =
      format_log_line(level, message, static_cast<std::int64_t>(std::time(nullptr)));
  // One guarded fputs per line: concurrent workers cannot interleave bytes.
  std::lock_guard lock{log_mutex()};
  std::fputs(line.c_str(), stderr);
}

void log_debug(const std::string& message) { log(LogLevel::Debug, message); }
void log_info(const std::string& message) { log(LogLevel::Info, message); }
void log_warn(const std::string& message) { log(LogLevel::Warn, message); }
void log_error(const std::string& message) { log(LogLevel::Error, message); }

}  // namespace rdns::util
