#include "util/log.hpp"

#include <atomic>
#include <cstdio>

namespace rdns::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};

[[nodiscard]] const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(static_cast<int>(level)); }

LogLevel log_level() noexcept { return static_cast<LogLevel>(g_level.load()); }

void log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_level.load()) return;
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

void log_debug(const std::string& message) { log(LogLevel::Debug, message); }
void log_info(const std::string& message) { log(LogLevel::Info, message); }
void log_warn(const std::string& message) { log(LogLevel::Warn, message); }
void log_error(const std::string& message) { log(LogLevel::Error, message); }

}  // namespace rdns::util
