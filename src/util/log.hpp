#pragma once
/// \file log.hpp
/// Tiny leveled logger. Library code logs sparingly (scanners note campaign
/// milestones); benches and examples set the level they want. Default level
/// is Warn so test output stays clean.
///
/// Thread-safe: each line is composed in full (ISO-8601 UTC timestamp +
/// level prefix + message) and written with a single mutex-guarded fputs,
/// so concurrent shard workers never interleave partial lines on stderr.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace rdns::util {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Process-wide minimum level.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Parse "debug" / "info" / "warn" / "error" / "off" (case-insensitive;
/// "warning" also accepted). nullopt on anything else.
[[nodiscard]] std::optional<LogLevel> parse_log_level(std::string_view s) noexcept;

/// Lowercase level name ("debug" ... "off") — the inverse of
/// parse_log_level, for admin surfaces that report the live level.
[[nodiscard]] const char* to_string(LogLevel level) noexcept;

/// The next level in the SIGUSR1 cycle Debug -> Info -> Warn -> Error ->
/// Debug. Off is not in the cycle (it maps back to Debug), so an operator
/// can always kick a silent process into logging again.
[[nodiscard]] LogLevel cycle_log_level(LogLevel level) noexcept;

/// The level the shared CLI layer should apply, with precedence
/// flag > env > default(Warn): --quiet maps to Error and beats --verbose
/// (which maps to Info); otherwise `env_value` (the RDNS_LOG_LEVEL
/// variable, may be null/unparsable) decides; otherwise Warn.
[[nodiscard]] LogLevel resolve_log_level(bool verbose, bool quiet,
                                         const char* env_value) noexcept;

/// Log a pre-formatted message (appends a newline) to stderr.
void log(LogLevel level, const std::string& message);

/// The exact line log() emits for `message` at `unix_seconds`:
/// "2021-11-01T14:00:00Z [INFO] message\n". Exposed for tests.
[[nodiscard]] std::string format_log_line(LogLevel level, const std::string& message,
                                          std::int64_t unix_seconds);

void log_debug(const std::string& message);
void log_info(const std::string& message);
void log_warn(const std::string& message);
void log_error(const std::string& message);

}  // namespace rdns::util
