#pragma once
/// \file log.hpp
/// Tiny leveled logger. Library code logs sparingly (scanners note campaign
/// milestones); benches and examples set the level they want. Default level
/// is Warn so test output stays clean.
///
/// Thread-safe: each line is composed in full (ISO-8601 UTC timestamp +
/// level prefix + message) and written with a single mutex-guarded fputs,
/// so concurrent shard workers never interleave partial lines on stderr.

#include <cstdint>
#include <string>

namespace rdns::util {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Process-wide minimum level.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Log a pre-formatted message (appends a newline) to stderr.
void log(LogLevel level, const std::string& message);

/// The exact line log() emits for `message` at `unix_seconds`:
/// "2021-11-01T14:00:00Z [INFO] message\n". Exposed for tests.
[[nodiscard]] std::string format_log_line(LogLevel level, const std::string& message,
                                          std::int64_t unix_seconds);

void log_debug(const std::string& message);
void log_info(const std::string& message);
void log_warn(const std::string& message);
void log_error(const std::string& message);

}  // namespace rdns::util
