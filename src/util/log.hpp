#pragma once
/// \file log.hpp
/// Tiny leveled logger. Library code logs sparingly (scanners note campaign
/// milestones); benches and examples set the level they want. Default level
/// is Warn so test output stays clean.

#include <string>

namespace rdns::util {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Process-wide minimum level.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Log a pre-formatted message (appends a newline) to stderr.
void log(LogLevel level, const std::string& message);

void log_debug(const std::string& message);
void log_info(const std::string& message);
void log_warn(const std::string& message);
void log_error(const std::string& message);

}  // namespace rdns::util
