#include "util/mem.hpp"

#include <cstdio>
#include <cstring>

#include "util/metrics.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif
#if defined(__GLIBC__)
#include <malloc.h>
#endif

namespace rdns::util::mem {

namespace {

/// Read a "Key:  <n> kB" line from /proc/self/status; 0 if absent.
[[nodiscard]] std::uint64_t proc_status_kb(const char* key) noexcept {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  const std::size_t key_len = std::strlen(key);
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0 && line[key_len] == ':') {
      unsigned long long value = 0;
      if (std::sscanf(line + key_len + 1, "%llu", &value) == 1) kb = value;
      break;
    }
  }
  std::fclose(f);
  return kb;
}

[[nodiscard]] std::uint64_t rusage_peak_bytes() noexcept {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

}  // namespace

std::uint64_t peak_rss_bytes() noexcept {
  if (const std::uint64_t kb = proc_status_kb("VmHWM"); kb > 0) return kb * 1024;
  return rusage_peak_bytes();
}

std::uint64_t current_rss_bytes() noexcept {
  if (const std::uint64_t kb = proc_status_kb("VmRSS"); kb > 0) return kb * 1024;
  return rusage_peak_bytes();
}

void release_freed_memory() noexcept {
#if defined(__GLIBC__)
  malloc_trim(0);
#endif
}

std::uint64_t update_peak_rss_gauge() {
  const std::uint64_t peak = peak_rss_bytes();
  metrics::gauge("mem.peak_rss_bytes").set(static_cast<std::int64_t>(peak));
  return peak;
}

}  // namespace rdns::util::mem
