#pragma once
/// \file mem.hpp
/// Process memory accounting for the scale benches: peak RSS (VmHWM) and
/// current RSS (VmRSS) from /proc/self/status, with a getrusage fallback on
/// platforms without procfs. bench_world_scale uses these to prove the
/// compact world representation's footprint; the value is also exported as
/// the `mem.peak_rss_bytes` gauge so every metrics snapshot records how big
/// the process got.

#include <cstdint>

namespace rdns::util::mem {

/// High-water-mark resident set size in bytes (monotonic per process —
/// never decreases, so A/B comparisons must measure the smaller
/// configuration first). 0 if unavailable.
[[nodiscard]] std::uint64_t peak_rss_bytes() noexcept;

/// Current resident set size in bytes; falls back to peak_rss_bytes() on
/// platforms without /proc (so it still never reads 0 where getrusage
/// works). Deltas of this around a build isolate that build's footprint.
[[nodiscard]] std::uint64_t current_rss_bytes() noexcept;

/// Ask the allocator to return freed arenas to the OS (glibc malloc_trim;
/// no-op elsewhere) so current_rss_bytes() deltas around consecutive
/// builds don't count the previous build's cached free lists.
void release_freed_memory() noexcept;

/// Refresh the `mem.peak_rss_bytes` gauge in the global metrics registry
/// and return the value written.
std::uint64_t update_peak_rss_gauge();

}  // namespace rdns::util::mem
