#include "util/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace rdns::util::metrics {

namespace {
std::atomic<bool> g_collect_timing{false};
}  // namespace

bool collect_timing() noexcept { return g_collect_timing.load(std::memory_order_relaxed); }
void set_collect_timing(bool on) noexcept {
  g_collect_timing.store(on, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  if (bounds_.empty()) throw std::invalid_argument("Histogram: no buckets");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i - 1] < bounds_[i])) {
      throw std::invalid_argument("Histogram: bounds must be strictly increasing");
    }
  }
}

void Histogram::observe(double value) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t bucket = static_cast<std::size_t>(it - bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // Fold `value` into the double-typed sum with a CAS loop (portable
  // equivalent of C++20 atomic<double>::fetch_add).
  std::uint64_t expected = sum_bits_.load(std::memory_order_relaxed);
  for (;;) {
    const double current = std::bit_cast<double>(expected);
    const std::uint64_t desired = std::bit_cast<std::uint64_t>(current + value);
    if (sum_bits_.compare_exchange_weak(expected, desired, std::memory_order_relaxed)) break;
  }
}

double Histogram::sum() const noexcept {
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

double Histogram::percentile(double p) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::uint64_t in_bucket = counts_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    const double next = static_cast<double>(cumulative + in_bucket);
    if (next >= rank) {
      if (i == bounds_.size()) return bounds_.back();  // overflow bucket clamps
      const double lower = i == 0 ? 0.0 : bounds_[i - 1];
      const double upper = bounds_[i];
      const double into = std::max(0.0, rank - static_cast<double>(cumulative));
      return lower + (upper - lower) * into / static_cast<double>(in_bucket);
    }
    cumulative += in_bucket;
  }
  return bounds_.back();
}

void Histogram::merge_from(const Histogram& other) noexcept {
  const std::size_t n = std::min(counts_.size(), other.counts_.size());
  for (std::size_t i = 0; i < n; ++i) {
    counts_[i].fetch_add(other.counts_[i].load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  std::uint64_t expected = sum_bits_.load(std::memory_order_relaxed);
  const double delta = other.sum();
  for (;;) {
    const double current = std::bit_cast<double>(expected);
    const std::uint64_t desired = std::bit_cast<std::uint64_t>(current + delta);
    if (sum_bits_.compare_exchange_weak(expected, desired, std::memory_order_relaxed)) break;
  }
}

void Histogram::reset() noexcept {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
}

std::vector<double> Histogram::exponential_bounds(double start, double factor, std::size_t n) {
  std::vector<double> out;
  out.reserve(n);
  double v = start;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(v);
    v *= factor;
  }
  return out;
}

std::vector<double> Histogram::linear_bounds(double start, double step, std::size_t n) {
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(start + step * static_cast<double>(i));
  return out;
}

// ---------------------------------------------------------------------------
// Registry

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard lock{m_};
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard lock{m_};
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name, std::vector<double> bounds) {
  std::lock_guard lock{m_};
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

void Registry::merge_from(const Registry& other) {
  // Lock ordering: `other` is read under its own lock into a flat copy
  // first, so merge_from(a, b) and merge_from(b, a) cannot deadlock.
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, const Histogram*>> histograms;
  {
    std::lock_guard lock{other.m_};
    for (const auto& [name, c] : other.counters_) counters.emplace_back(name, c->value());
    for (const auto& [name, g] : other.gauges_) gauges.emplace_back(name, g->value());
    for (const auto& [name, h] : other.histograms_) histograms.emplace_back(name, h.get());
  }
  for (const auto& [name, v] : counters) counter(name).inc(v);
  for (const auto& [name, v] : gauges) gauge(name).add(v);
  for (const auto& [name, h] : histograms) {
    histogram(name, h->bounds()).merge_from(*h);
  }
}

void Registry::reset_values() {
  std::lock_guard lock{m_};
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

bool Registry::empty() const {
  std::lock_guard lock{m_};
  return counters_.empty() && gauges_.empty() && histograms_.empty();
}

void Registry::for_each_counter(
    const std::function<void(const std::string&, std::uint64_t)>& fn) const {
  std::lock_guard lock{m_};
  for (const auto& [name, c] : counters_) fn(name, c->value());
}

void Registry::for_each_gauge(
    const std::function<void(const std::string&, std::int64_t)>& fn) const {
  std::lock_guard lock{m_};
  for (const auto& [name, g] : gauges_) fn(name, g->value());
}

void Registry::for_each_histogram(
    const std::function<void(const std::string&, const Histogram&)>& fn) const {
  std::lock_guard lock{m_};
  for (const auto& [name, h] : histograms_) fn(name, *h);
}

// ---------------------------------------------------------------------------
// JSON

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

namespace {

void write_histogram_json(std::ostream& out, const Histogram& h, const std::string& pad) {
  out << "{\n";
  out << pad << "  \"count\": " << h.count() << ",\n";
  out << pad << "  \"sum\": " << json_number(h.sum()) << ",\n";
  out << pad << "  \"p50\": " << json_number(h.percentile(50)) << ",\n";
  out << pad << "  \"p90\": " << json_number(h.percentile(90)) << ",\n";
  out << pad << "  \"p99\": " << json_number(h.percentile(99)) << ",\n";
  out << pad << "  \"buckets\": [";
  const auto& bounds = h.bounds();
  for (std::size_t i = 0; i <= bounds.size(); ++i) {
    if (i) out << ", ";
    out << "{\"le\": ";
    if (i == bounds.size()) {
      out << "\"+Inf\"";
    } else {
      out << json_number(bounds[i]);
    }
    out << ", \"count\": " << h.bucket_count(i) << '}';
  }
  out << "]\n" << pad << '}';
}

}  // namespace

void Registry::write_json(std::ostream& out, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::lock_guard lock{m_};
  out << pad << "\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    std::string key;
    append_json_escaped(key, name);
    out << (first ? "\n" : ",\n") << pad << "  \"" << key << "\": " << c->value();
    first = false;
  }
  out << (first ? "" : "\n" + pad) << "},\n";

  out << pad << "\"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    std::string key;
    append_json_escaped(key, name);
    out << (first ? "\n" : ",\n") << pad << "  \"" << key << "\": " << g->value();
    first = false;
  }
  out << (first ? "" : "\n" + pad) << "},\n";

  out << pad << "\"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    std::string key;
    append_json_escaped(key, name);
    out << (first ? "\n" : ",\n") << pad << "  \"" << key << "\": ";
    write_histogram_json(out, *h, pad + "  ");
    first = false;
  }
  out << (first ? "" : "\n" + pad) << "}";
}

std::string Registry::to_json(int indent) const {
  std::ostringstream out;
  out << "{\n";
  write_json(out, indent);
  out << "\n}";
  return out.str();
}

void Registry::append_json_compact(std::string& out) const {
  std::lock_guard lock{m_};
  out += "\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ", ";
    out += '"';
    append_json_escaped(out, name);
    out += "\": " + std::to_string(c->value());
    first = false;
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ", ";
    out += '"';
    append_json_escaped(out, name);
    out += "\": " + std::to_string(g->value());
    first = false;
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ", ";
    out += '"';
    append_json_escaped(out, name);
    out += "\": {\"count\": " + std::to_string(h->count());
    out += ", \"sum\": " + json_number(h->sum());
    out += ", \"p50\": " + json_number(h->percentile(50));
    out += ", \"p90\": " + json_number(h->percentile(90));
    out += ", \"p99\": " + json_number(h->percentile(99));
    out += ", \"buckets\": [";
    const auto& bounds = h->bounds();
    for (std::size_t i = 0; i <= bounds.size(); ++i) {
      if (i) out += ", ";
      out += "{\"le\": ";
      out += i == bounds.size() ? "\"+Inf\"" : json_number(bounds[i]);
      out += ", \"count\": " + std::to_string(h->bucket_count(i)) + '}';
    }
    out += "]}";
    first = false;
  }
  out += '}';
}

// ---------------------------------------------------------------------------
// Prometheus text exposition

std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (!out.empty() && out.front() >= '0' && out.front() <= '9') out.insert(out.begin(), '_');
  return out;
}

std::string prometheus_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

void Registry::write_prometheus(std::ostream& out, const std::string& prefix) const {
  std::lock_guard lock{m_};
  for (const auto& [name, c] : counters_) {
    const std::string metric = prefix + prometheus_name(name) + "_total";
    out << "# TYPE " << metric << " counter\n" << metric << ' ' << c->value() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    const std::string metric = prefix + prometheus_name(name);
    out << "# TYPE " << metric << " gauge\n" << metric << ' ' << g->value() << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    const std::string metric = prefix + prometheus_name(name);
    out << "# TYPE " << metric << " histogram\n";
    const auto& bounds = h->bounds();
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      cumulative += h->bucket_count(i);
      out << metric << "_bucket{le=\"" << json_number(bounds[i]) << "\"} " << cumulative << '\n';
    }
    cumulative += h->bucket_count(bounds.size());
    out << metric << "_bucket{le=\"+Inf\"} " << cumulative << '\n';
    out << metric << "_sum " << json_number(h->sum()) << '\n';
    out << metric << "_count " << h->count() << '\n';
  }
}

}  // namespace rdns::util::metrics
