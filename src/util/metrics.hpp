#pragma once
/// \file metrics.hpp
/// Thread-safe, low-overhead metrics registry: monotonic counters, gauges
/// and fixed-bucket latency/size histograms (p50/p90/p99), addressable by
/// dotted name ("dns.server.queries" — the prefix before the first dot is
/// the subsystem). Modelled on the per-scan counter surfaces of bulkDNS
/// and the zdns lineage: every subsystem exposes its counters as first-class
/// output rather than ad-hoc printf.
///
/// Concurrency model. Counter/gauge/histogram cells are relaxed atomics, so
/// instrumentation sites cost one relaxed RMW and sums are independent of
/// thread interleaving — the same order-independence argument as the
/// existing per-shard ServerStats/ResolverStats accumulators. Registries
/// are also shardable: build a local Registry per worker and fold it into
/// the global one with merge_from() (counters add, histograms merge
/// bucket-by-bucket), which is deterministic in any merge order.
///
/// Cost model. Counters are always on (a relaxed fetch_add — the budgeted
/// "disabled-path" cost). Anything that needs a clock (latency histograms,
/// busy-time accounting, span timing) is gated on collect_timing(), a
/// relaxed atomic flag the CLI/benches flip with --metrics-out/--trace.
///
/// Snapshots (to_json / write_json) render entries sorted by name, so the
/// document layout is byte-stable for a given set of values.

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace rdns::util::metrics {

/// Global timing-collection switch (relaxed). Off by default: hot paths
/// must not pay for clock syscalls unless someone asked for a breakdown.
[[nodiscard]] bool collect_timing() noexcept;
void set_collect_timing(bool on) noexcept;

/// Monotonic counter.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }
  void merge_from(const Counter& other) noexcept { inc(other.value()); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value gauge (signed; set or adjust).
class Gauge {
 public:
  void set(std::int64_t v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) noexcept { value_.fetch_add(d, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram: `bounds` are strictly increasing upper bounds
/// (an observation lands in the first bucket whose bound >= value); one
/// implicit overflow bucket catches everything above the last bound.
/// Observations are assumed non-negative (sizes, durations, counts).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept;
  /// Estimated percentile (p in [0, 100]) by linear interpolation inside
  /// the owning bucket; the overflow bucket clamps to the last bound.
  [[nodiscard]] double percentile(double p) const noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Count in bucket i (i == bounds().size() is the overflow bucket).
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const noexcept {
    return counts_[i].load(std::memory_order_relaxed);
  }

  /// Bucket-wise fold; `other` must have identical bounds.
  void merge_from(const Histogram& other) noexcept;
  void reset() noexcept;

  /// {start, start*factor, start*factor^2, ...} — n bounds.
  [[nodiscard]] static std::vector<double> exponential_bounds(double start, double factor,
                                                              std::size_t n);
  /// {start, start+step, ...} — n bounds.
  [[nodiscard]] static std::vector<double> linear_bounds(double start, double step,
                                                         std::size_t n);

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  ///< bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};  ///< double sum, CAS-folded
};

/// Named metric registry. Lookup registers on first use and returns a
/// reference that stays valid for the registry's lifetime (reset_values()
/// zeroes values but never invalidates references, so call sites may cache
/// them in static locals).
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Process-wide default registry.
  [[nodiscard]] static Registry& global();

  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  /// Bounds are fixed by the first registration of `name`.
  [[nodiscard]] Histogram& histogram(const std::string& name, std::vector<double> bounds);

  /// Deterministic fold of another registry's values into this one
  /// (counters/gauges add, histograms merge bucket-by-bucket).
  void merge_from(const Registry& other);

  /// Zero every value; registrations (and references) survive.
  void reset_values();

  [[nodiscard]] bool empty() const;

  /// Visitors iterate in name order.
  void for_each_counter(const std::function<void(const std::string&, std::uint64_t)>& fn) const;
  void for_each_gauge(const std::function<void(const std::string&, std::int64_t)>& fn) const;
  void for_each_histogram(const std::function<void(const std::string&, const Histogram&)>& fn) const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} fragment
  /// (no enclosing document — see trace::write_snapshot_json).
  void write_json(std::ostream& out, int indent = 2) const;
  [[nodiscard]] std::string to_json(int indent = 2) const;

  /// The same three fragments as one compact single-line JSON fragment
  /// (`"counters": {...}, "gauges": {...}, "histograms": {...}`) — the
  /// building block of the `--metrics-interval` JSONL snapshot stream,
  /// where one snapshot per line keeps the file greppable and appendable.
  void append_json_compact(std::string& out) const;

  /// Prometheus text exposition (format version 0.0.4) of every series.
  /// Dotted names are sanitized (`serve.datagrams_received` becomes
  /// `<prefix>serve_datagrams_received`), counters gain the conventional
  /// `_total` suffix, and histograms render cumulative `_bucket{le=...}`
  /// series plus `_sum`/`_count`. Entries come out in name order, so the
  /// exposition is byte-stable for a given set of values.
  void write_prometheus(std::ostream& out, const std::string& prefix = "rdns_") const;

 private:
  mutable std::mutex m_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Shorthands against the global registry.
[[nodiscard]] inline Counter& counter(const std::string& name) {
  return Registry::global().counter(name);
}
[[nodiscard]] inline Gauge& gauge(const std::string& name) {
  return Registry::global().gauge(name);
}
[[nodiscard]] inline Histogram& histogram(const std::string& name, std::vector<double> bounds) {
  return Registry::global().histogram(name, std::move(bounds));
}

/// JSON string escaping shared by the observability writers.
void append_json_escaped(std::string& out, std::string_view s);
/// Render a finite double as a JSON number (non-finite values clamp to 0).
[[nodiscard]] std::string json_number(double v);

/// Sanitize a dotted metric name into the Prometheus charset
/// [a-zA-Z_:][a-zA-Z0-9_:]* — '.', '-' and other invalid characters map to
/// '_'; a leading digit gains a '_' prefix.
[[nodiscard]] std::string prometheus_name(std::string_view name);
/// Escape a Prometheus label value (backslash, double quote, newline).
[[nodiscard]] std::string prometheus_label_value(std::string_view value);

}  // namespace rdns::util::metrics
