#include "util/name_pool.hpp"

#include <cstring>
#include <stdexcept>

namespace rdns::util {

const char* NamePool::store(std::string_view s) {
  if (s.empty()) return "";
  if (s.size() > chunk_cap_ - chunk_used_ || chunks_.empty()) {
    const std::size_t cap = s.size() > kChunkBytes ? s.size() : kChunkBytes;
    chunks_.push_back(std::make_unique<char[]>(cap));
    chunk_cap_ = cap;
    chunk_used_ = 0;
  }
  char* dst = chunks_.back().get() + chunk_used_;
  std::memcpy(dst, s.data(), s.size());
  chunk_used_ += s.size();
  char_bytes_ += s.size();
  return dst;
}

NamePool::Id NamePool::intern(std::string_view s) {
  const auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  if (s.size() > 0xFFFFFFFFu) throw std::invalid_argument("NamePool::intern: string too long");
  if (entries_.size() >= 0x7FFFFFFFu) {
    // The top id bit is reserved by CompactPtrStore's synthetic-name tag.
    throw std::length_error("NamePool::intern: pool id space exhausted");
  }
  const Id id = static_cast<Id>(entries_.size());
  Ref ref;
  ref.data = store(s);
  ref.size = static_cast<std::uint32_t>(s.size());
  entries_.push_back(ref);
  index_.emplace(std::string_view{ref.data, ref.size}, id);
  return id;
}

std::size_t NamePool::footprint_bytes() const noexcept {
  std::size_t bytes = chunks_.size() * kChunkBytes;
  bytes += entries_.capacity() * sizeof(Ref);
  // unordered_map: one node (~48B with allocator overhead) per entry plus
  // the bucket array — close enough for bench accounting.
  bytes += index_.size() * 48 + index_.bucket_count() * sizeof(void*);
  return bytes;
}

}  // namespace rdns::util
