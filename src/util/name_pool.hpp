#pragma once
/// \file name_pool.hpp
/// Arena-backed string interning for hostnames and zone labels.
///
/// Internet-scale worlds publish millions of PTR targets whose text is
/// drawn from a much smaller vocabulary (fixed-form generic names share one
/// suffix per org; client-derived names repeat across leases). Storing each
/// occurrence as its own std::string costs 32+ heap bytes before the first
/// character; interning stores every distinct string once in a chunked
/// arena and hands out a 32-bit id, so a record can reference its name for
/// 4 bytes (see dns::CompactPtrStore).
///
/// Lifetime: the pool only grows — interned text is never freed or moved,
/// so returned string_views stay valid for the pool's lifetime. Chunks are
/// fixed-size allocations (oversized strings get a dedicated chunk), which
/// keeps growth O(1) amortized without realloc copies.
///
/// Thread safety: intern() mutates and must be externally serialized (zone
/// mutation is single-threaded on the sim clock); view() is safe from many
/// threads concurrently with other view() calls — the frozen-clock contract
/// the parallel sweeps already rely on.

#include <cstdint>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace rdns::util {

class NamePool {
 public:
  /// Interned-string handle. 32 bits: the scale target (10M devices) is
  /// far below 2^31 distinct names, and dns::CompactPtrStore steals the
  /// top bit for its synthetic-name encoding.
  using Id = std::uint32_t;

  NamePool() = default;
  NamePool(const NamePool&) = delete;
  NamePool& operator=(const NamePool&) = delete;

  /// Return the id of `s`, interning it on first sight. Ids are dense,
  /// assigned in first-intern order, and stable forever.
  [[nodiscard]] Id intern(std::string_view s);

  /// The text behind an id (valid for the pool's lifetime). `id` must have
  /// been returned by intern() on this pool.
  [[nodiscard]] std::string_view view(Id id) const noexcept {
    const Ref& ref = entries_[id];
    return {ref.data, ref.size};
  }

  /// Distinct strings interned.
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// Characters stored in the arena (deduplicated text only).
  [[nodiscard]] std::size_t arena_bytes() const noexcept { return char_bytes_; }

  /// Approximate total heap footprint: arena chunks plus the id table and
  /// the dedup index (for memory accounting in benches).
  [[nodiscard]] std::size_t footprint_bytes() const noexcept;

 private:
  struct Ref {
    const char* data = nullptr;
    std::uint32_t size = 0;
  };

  static constexpr std::size_t kChunkBytes = std::size_t{1} << 20;

  /// Copy `s` into arena storage and return its stable address.
  [[nodiscard]] const char* store(std::string_view s);

  std::vector<Ref> entries_;
  std::unordered_map<std::string_view, Id> index_;
  std::vector<std::unique_ptr<char[]>> chunks_;
  std::size_t chunk_used_ = 0;   ///< bytes used in chunks_.back()
  std::size_t chunk_cap_ = 0;    ///< capacity of chunks_.back()
  std::size_t char_bytes_ = 0;
};

}  // namespace rdns::util
