#include "util/rng.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace rdns::util {

namespace {
[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

void Rng::reseed(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng Rng::fork(std::uint64_t tag) const noexcept {
  // Derive a child seed from the parent state and the tag without
  // perturbing the parent stream.
  const std::uint64_t h = mix64(s_[0] ^ rotl(s_[2], 17) ^ mix64(tag ^ 0xA5A5A5A5DEADBEEFULL));
  return Rng{h};
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Debiased modulo via rejection sampling.
  const std::uint64_t limit = (~0ULL) - ((~0ULL) % range + 1) % range;
  std::uint64_t x = next();
  while (x > limit) x = next();
  return lo + static_cast<std::int64_t>(x % range);
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal(double mean, double stddev) noexcept {
  // Irwin–Hall with 12 uniforms: variance 1, mean 6. Good enough for
  // schedule jitter; avoids trig/log in hot loops.
  double sum = 0.0;
  for (int i = 0; i < 12; ++i) sum += uniform();
  return mean + stddev * (sum - 6.0);
}

double Rng::exponential(double mean) noexcept {
  assert(mean > 0.0);
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

std::size_t Rng::index(std::size_t n) noexcept {
  assert(n > 0);
  return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += w;
  assert(total > 0.0);
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numeric edge: fall into the final bucket
}

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be > 0");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  for (auto& c : cdf_) c /= acc;
}

std::size_t ZipfSampler::sample(Rng& rng) const noexcept {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(std::min<std::ptrdiff_t>(it - cdf_.begin(),
                                                           static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
}

double ZipfSampler::pmf(std::size_t rank) const noexcept {
  if (rank >= cdf_.size()) return 0.0;
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace rdns::util
