#pragma once
/// \file rng.hpp
/// Deterministic pseudo-random number generation.
///
/// Every stochastic decision in the simulator flows through `Rng` so that
/// whole experiments are reproducible from a single seed. The generator is
/// xoshiro256** seeded via SplitMix64 (the construction its authors
/// recommend); both are tiny, fast and well studied.

#include <cstdint>
#include <string>
#include <vector>

namespace rdns::util {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Mix a 64-bit value (stateless); handy for deriving per-entity seeds.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// Deterministic RNG (xoshiro256**). Not cryptographic. An instance must
/// not be shared across threads; the threading contract is one Rng per
/// worker/shard, seeded deterministically from the shard index via
/// SplitMix64 (`mix64`) so every shard's stream is reproducible regardless
/// of which thread runs it — see scan::sweep_wire for the pattern.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5EEDBA5EULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept;

  /// Derive an independent child generator; `tag` separates streams that
  /// share a parent seed (e.g. one stream per organization).
  [[nodiscard]] Rng fork(std::uint64_t tag) const noexcept;

  [[nodiscard]] std::uint64_t next() noexcept;

  // UniformRandomBitGenerator interface, so std::shuffle et al. work.
  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept { return ~0ULL; }
  result_type operator()() noexcept { return next(); }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Bernoulli trial.
  [[nodiscard]] bool chance(double p) noexcept;

  /// Approximately normal variate (sum of uniforms; adequate for jitter).
  [[nodiscard]] double normal(double mean, double stddev) noexcept;

  /// Exponential variate with the given mean (> 0).
  [[nodiscard]] double exponential(double mean) noexcept;

  /// Pick an index in [0, n) — n must be > 0.
  [[nodiscard]] std::size_t index(std::size_t n) noexcept;

  /// Pick an element by const reference; v must be non-empty.
  template <typename T>
  [[nodiscard]] const T& pick(const std::vector<T>& v) noexcept {
    return v[index(v.size())];
  }

  /// Sample an index according to non-negative weights (sum must be > 0).
  [[nodiscard]] std::size_t weighted_index(const std::vector<double>& weights) noexcept;

 private:
  std::uint64_t s_[4]{};
};

/// Zipf-like sampler over ranks 0..n-1: p(rank) proportional to 1/(rank+1)^s.
/// Used for given-name popularity (a few names dominate, mirroring the SSA
/// distribution the paper matches against).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }
  /// Probability mass of a rank.
  [[nodiscard]] double pmf(std::size_t rank) const noexcept;

 private:
  std::vector<double> cdf_;
};

}  // namespace rdns::util
