#include "util/sketch.hpp"

#include <algorithm>
#include <cstdio>

namespace rdns::util {

SpaceSaving::SpaceSaving(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  slots_.reserve(capacity_);
  index_.reserve(capacity_ * 2);
}

std::size_t SpaceSaving::min_slot() const noexcept {
  // Linear argmin over <= K slots. K is small (64 by default) and the scan
  // is branch-predictable, so this stays cheap without the stream-summary
  // bucket structure of the original paper. Ties break toward the lowest
  // index, which is itself a pure function of the offer history.
  std::size_t best = 0;
  for (std::size_t i = 1; i < slots_.size(); ++i) {
    if (slots_[i].count < slots_[best].count) best = i;
  }
  return best;
}

void SpaceSaving::offer(std::string_view key, std::uint64_t weight) {
  if (weight == 0) return;
  total_ += weight;
  if (const auto it = index_.find(std::string{key}); it != index_.end()) {
    slots_[it->second].count += weight;
    return;
  }
  if (slots_.size() < capacity_) {
    index_.emplace(std::string{key}, slots_.size());
    slots_.push_back(Slot{std::string{key}, weight, 0});
    return;
  }
  // Evict the current minimum: the newcomer inherits its count as the
  // (over)estimate floor, recorded as error — the Space-Saving move.
  const std::size_t victim = min_slot();
  Slot& slot = slots_[victim];
  index_.erase(slot.key);
  const std::uint64_t floor = slot.count;
  slot.key = std::string{key};
  slot.error = floor;
  slot.count = floor + weight;
  index_.emplace(slot.key, victim);
}

std::uint64_t SpaceSaving::estimate(std::string_view key) const noexcept {
  const auto it = index_.find(std::string{key});
  return it == index_.end() ? 0 : slots_[it->second].count;
}

std::uint64_t SpaceSaving::min_count() const noexcept {
  if (slots_.size() < capacity_) return 0;
  return slots_[min_slot()].count;
}

std::vector<SpaceSaving::Entry> SpaceSaving::top(std::size_t n) const {
  std::vector<Entry> out;
  out.reserve(slots_.size());
  for (const Slot& slot : slots_) out.push_back(Entry{slot.key, slot.count, slot.error});
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.key < b.key;
  });
  if (out.size() > n) out.resize(n);
  return out;
}

void SpaceSaving::merge_from(const SpaceSaving& other) {
  const std::uint64_t my_floor = min_count();
  const std::uint64_t other_floor = other.min_count();

  // Union with summed counts/errors; a key absent from one side may have
  // occurred up to that side's eviction floor there, so the floor joins
  // both the estimate and the error term (keeps over-estimation sound).
  std::unordered_map<std::string, Entry> merged;
  merged.reserve(slots_.size() + other.slots_.size());
  for (const Slot& slot : slots_) {
    merged.emplace(slot.key, Entry{slot.key, slot.count + other_floor, slot.error + other_floor});
  }
  for (const Slot& slot : other.slots_) {
    auto [it, fresh] = merged.emplace(slot.key, Entry{slot.key, slot.count + my_floor,
                                                      slot.error + my_floor});
    if (!fresh) {
      // Shared key: undo the absent-side floor added above, then fold the
      // other side's true values (add before subtract — errors can be
      // smaller than the floor, counts cannot).
      it->second.count += slot.count;
      it->second.count -= other_floor;
      it->second.error += slot.error;
      it->second.error -= other_floor;
    }
  }

  std::vector<Entry> ranked;
  ranked.reserve(merged.size());
  for (auto& [key, entry] : merged) ranked.push_back(std::move(entry));
  std::sort(ranked.begin(), ranked.end(), [](const Entry& a, const Entry& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.key < b.key;
  });
  if (ranked.size() > capacity_) ranked.resize(capacity_);

  total_ += other.total_;
  slots_.clear();
  index_.clear();
  for (const Entry& entry : ranked) {
    index_.emplace(entry.key, slots_.size());
    slots_.push_back(Slot{entry.key, entry.count, entry.error});
  }
}

void SpaceSaving::clear() {
  slots_.clear();
  index_.clear();
  total_ = 0;
}

std::string ipv4_sketch_key(std::uint32_t address) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (address >> 24) & 0xFF, (address >> 16) & 0xFF,
                (address >> 8) & 0xFF, address & 0xFF);
  return buf;
}

}  // namespace rdns::util
