#pragma once
/// \file sketch.hpp
/// Space-Saving heavy-hitter sketch (Metwally, Agrawal, El Abbadi 2005):
/// track the top-K most frequent items of a stream in O(K) memory. The
/// serving loop feeds one sketch with client addresses and one with query
/// names, so an operator can see *who* is sweeping the reverse zones — the
/// paper's tracking attack, observed from the defender's side.
///
/// Guarantees (capacity K, stream weight N):
///   - every item with true count > N / K is present in the sketch;
///   - for a tracked item, estimate() >= true count >= estimate() - error();
///   - error() <= N / K for every tracked item.
///
/// Determinism. offer() is a pure function of the offer sequence; top() and
/// merge_from() break count ties by key (ascending), so rendered rankings
/// and merged sketches are byte-stable regardless of hash-map iteration
/// order — the same order-independence contract as the metrics registry.
///
/// Concurrency: none. Each serving worker owns private sketches and the
/// aggregation thread merges copies, mirroring the per-shard
/// ServerStats/Registry fold.

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace rdns::util {

class SpaceSaving {
 public:
  /// One tracked item: `count` is the overestimate, `error` the maximum
  /// overcount (count - error is a guaranteed lower bound).
  struct Entry {
    std::string key;
    std::uint64_t count = 0;
    std::uint64_t error = 0;
  };

  /// `capacity` = K, the number of counters kept (min 1).
  explicit SpaceSaving(std::size_t capacity);

  /// Count `weight` occurrences of `key`.
  void offer(std::string_view key, std::uint64_t weight = 1);

  /// Total stream weight offered (sum of all weights, exact).
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }

  /// Estimated count for `key`: the tracked overestimate, or 0 when the
  /// key is not tracked (its true count is then <= min_count()).
  [[nodiscard]] std::uint64_t estimate(std::string_view key) const noexcept;

  /// Smallest tracked count (the eviction floor); 0 while not full.
  [[nodiscard]] std::uint64_t min_count() const noexcept;

  /// The top `n` entries ordered by (count desc, key asc) — deterministic
  /// for a given offer/merge history.
  [[nodiscard]] std::vector<Entry> top(std::size_t n) const;

  /// Fold another sketch into this one. Shared keys add counts and errors;
  /// keys tracked on only one side are assumed to have occurred up to the
  /// other side's min_count() times there (added to the error term), which
  /// preserves the overestimate and error-bound guarantees. The union is
  /// then re-trimmed to capacity by (count desc, key asc), so
  /// merge(a, b) == merge(b, a) entry for entry.
  void merge_from(const SpaceSaving& other);

  void clear();

 private:
  struct Slot {
    std::string key;
    std::uint64_t count = 0;
    std::uint64_t error = 0;
  };

  [[nodiscard]] std::size_t min_slot() const noexcept;

  std::size_t capacity_;
  std::uint64_t total_ = 0;
  std::vector<Slot> slots_;                            // <= capacity_
  std::unordered_map<std::string, std::size_t> index_; // key -> slot
};

/// Render an IPv4 host-order address as the dotted-quad sketch key (the
/// serving loop offers client addresses without building net::Ipv4Addr).
[[nodiscard]] std::string ipv4_sketch_key(std::uint32_t host_order_address);

}  // namespace rdns::util
