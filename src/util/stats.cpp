#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rdns::util {

void Counter::add(const std::string& key, std::int64_t n) {
  counts_[key] += n;
  total_ += n;
}

std::int64_t Counter::count(const std::string& key) const noexcept {
  const auto it = counts_.find(key);
  return it == counts_.end() ? 0 : it->second;
}

std::vector<std::pair<std::string, std::int64_t>> Counter::most_common(std::size_t limit) const {
  std::vector<std::pair<std::string, std::int64_t>> out(counts_.begin(), counts_.end());
  std::stable_sort(out.begin(), out.end(),
                   [](const auto& a, const auto& b) { return a.second > b.second; });
  if (limit > 0 && out.size() > limit) out.resize(limit);
  return out;
}

Histogram::Histogram(double lo, double hi, double bin_width) : lo_(lo), width_(bin_width) {
  if (!(hi > lo) || !(bin_width > 0)) {
    throw std::invalid_argument("Histogram: requires hi > lo and bin_width > 0");
  }
  const auto n = static_cast<std::size_t>(std::ceil((hi - lo) / bin_width));
  bins_.assign(n, 0);
}

void Histogram::add(double value, std::int64_t n) {
  total_ += n;
  if (value < lo_) {
    underflow_ += n;
    return;
  }
  const auto idx = static_cast<std::size_t>((value - lo_) / width_);
  if (idx >= bins_.size()) {
    overflow_ += n;
    return;
  }
  bins_[idx] += n;
}

double Histogram::bin_lo(std::size_t i) const noexcept { return lo_ + width_ * static_cast<double>(i); }

std::optional<std::size_t> Histogram::mode_bin() const noexcept {
  std::optional<std::size_t> best;
  std::int64_t best_count = 0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    if (bins_[i] > best_count) {
      best_count = bins_[i];
      best = i;
    }
  }
  return best;
}

void EmpiricalCdf::add_all(const std::vector<double>& values) {
  samples_.insert(samples_.end(), values.begin(), values.end());
  sorted_ = false;
}

void EmpiricalCdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double EmpiricalCdf::at(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

double EmpiricalCdf::percentile(double p) const {
  if (samples_.empty()) throw std::logic_error("EmpiricalCdf::percentile on empty CDF");
  ensure_sorted();
  const double clamped = std::clamp(p, 0.0, 100.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(samples_.size())));
  return samples_[rank == 0 ? 0 : rank - 1];
}

std::vector<double> EmpiricalCdf::evaluate(const std::vector<double>& xs) const {
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) out.push_back(at(x));
  return out;
}

double mean(const std::vector<double>& xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

std::optional<double> correlation(const std::vector<double>& xs,
                                  const std::vector<double>& ys) noexcept {
  if (xs.size() != ys.size() || xs.size() < 2) return std::nullopt;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return std::nullopt;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace rdns::util
