#pragma once
/// \file stats.hpp
/// Descriptive statistics used by the analysis pipeline and the benches:
/// counters, fixed-bin histograms (Fig. 7a), empirical CDFs (Fig. 7b) and
/// simple moments/percentiles.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace rdns::util {

/// Frequency counter over string keys (e.g. terms in hostnames).
class Counter {
 public:
  void add(const std::string& key, std::int64_t n = 1);

  [[nodiscard]] std::int64_t count(const std::string& key) const noexcept;
  [[nodiscard]] std::int64_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t distinct() const noexcept { return counts_.size(); }

  /// Entries sorted by descending count (ties broken by key).
  [[nodiscard]] std::vector<std::pair<std::string, std::int64_t>> most_common(
      std::size_t limit = 0) const;

  [[nodiscard]] const std::map<std::string, std::int64_t>& items() const noexcept {
    return counts_;
  }

 private:
  std::map<std::string, std::int64_t> counts_;
  std::int64_t total_ = 0;
};

/// Fixed-width-bin histogram over doubles.
class Histogram {
 public:
  /// Bins of width `bin_width` covering [lo, hi); values outside are
  /// accumulated in underflow/overflow.
  Histogram(double lo, double hi, double bin_width);

  void add(double value, std::int64_t n = 1);

  [[nodiscard]] std::size_t bin_count() const noexcept { return bins_.size(); }
  [[nodiscard]] std::int64_t bin(std::size_t i) const { return bins_.at(i); }
  [[nodiscard]] double bin_lo(std::size_t i) const noexcept;
  [[nodiscard]] std::int64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::int64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::int64_t total() const noexcept { return total_; }
  /// Index of the fullest bin, if any data landed in range.
  [[nodiscard]] std::optional<std::size_t> mode_bin() const noexcept;

 private:
  double lo_;
  double width_;
  std::vector<std::int64_t> bins_;
  std::int64_t underflow_ = 0;
  std::int64_t overflow_ = 0;
  std::int64_t total_ = 0;
};

/// Empirical CDF over collected samples.
class EmpiricalCdf {
 public:
  void add(double value) {
    samples_.push_back(value);
    sorted_ = false;
  }
  void add_all(const std::vector<double>& values);

  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }

  /// Fraction of samples <= x. Returns 0 for an empty CDF.
  [[nodiscard]] double at(double x) const;

  /// p-th percentile (p in [0,100]) by nearest-rank. Requires samples.
  [[nodiscard]] double percentile(double p) const;

  /// Evaluate the CDF at each of `xs` (convenience for plotting).
  [[nodiscard]] std::vector<double> evaluate(const std::vector<double>& xs) const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Mean of a sample (0 for empty).
[[nodiscard]] double mean(const std::vector<double>& xs) noexcept;

/// Population standard deviation (0 for size < 2).
[[nodiscard]] double stddev(const std::vector<double>& xs) noexcept;

/// Pearson correlation of two equally sized samples; nullopt if undefined.
[[nodiscard]] std::optional<double> correlation(const std::vector<double>& xs,
                                                const std::vector<double>& ys) noexcept;

}  // namespace rdns::util
