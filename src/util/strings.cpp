#include "util/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace rdns::util {

namespace {
[[nodiscard]] constexpr char lower(char c) noexcept {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}
[[nodiscard]] constexpr bool is_alpha(char c) noexcept {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}
}  // namespace

std::string to_lower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out.push_back(lower(c));
  return out;
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (lower(a[i]) != lower(b[i])) return false;
  }
  return true;
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_nonempty(std::string_view s, char delim) {
  std::vector<std::string> out;
  for (auto& part : split(s, delim)) {
    if (!part.empty()) out.push_back(std::move(part));
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view delim) {
  std::string out;
  std::size_t total = parts.empty() ? 0 : (parts.size() - 1) * delim.size();
  for (const auto& part : parts) total += part.size();
  out.reserve(total);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(delim);
    out.append(parts[i]);
  }
  return out;
}

std::string_view trim(std::string_view s) noexcept {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool contains(std::string_view haystack, std::string_view needle) noexcept {
  return haystack.find(needle) != std::string_view::npos;
}

std::vector<std::string> alpha_terms(std::string_view s) {
  std::vector<std::string> out;
  std::string current;
  for (char c : s) {
    if (is_alpha(c)) {
      current.push_back(lower(c));
    } else if (!current.empty()) {
      out.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) out.push_back(std::move(current));
  return out;
}

std::string replace_all(std::string s, std::string_view from, std::string_view to) {
  if (from.empty()) return s;
  std::size_t pos = 0;
  while ((pos = s.find(from, pos)) != std::string::npos) {
    s.replace(pos, from.size(), to);
    pos += to.size();
  }
  return s;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args2);
    out.resize(static_cast<std::size_t>(needed));
  }
  va_end(args2);
  return out;
}

std::string with_commas(std::int64_t n) {
  const bool neg = n < 0;
  std::string digits = std::to_string(neg ? -n : n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  const std::size_t len = digits.size();
  for (std::size_t i = 0; i < len; ++i) {
    if (i > 0 && (len - i) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return neg ? "-" + out : out;
}

}  // namespace rdns::util
