#pragma once
/// \file strings.hpp
/// Small string utilities shared across modules. All functions are ASCII
/// oriented — DNS hostnames and the paper's term analysis are ASCII domains.

#include <string>
#include <string_view>
#include <vector>

namespace rdns::util {

/// Lowercase an ASCII string.
[[nodiscard]] std::string to_lower(std::string_view s);

/// ASCII case-insensitive equality.
[[nodiscard]] bool iequals(std::string_view a, std::string_view b) noexcept;

/// Split on a delimiter character. Keeps empty fields ("a..b" -> {a,"",b}).
[[nodiscard]] std::vector<std::string> split(std::string_view s, char delim);

/// Split, dropping empty fields.
[[nodiscard]] std::vector<std::string> split_nonempty(std::string_view s, char delim);

/// Join with a delimiter.
[[nodiscard]] std::string join(const std::vector<std::string>& parts, std::string_view delim);

/// Strip leading/trailing whitespace.
[[nodiscard]] std::string_view trim(std::string_view s) noexcept;

[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix) noexcept;
[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix) noexcept;

/// True if `needle` occurs in `haystack` (case-sensitive).
[[nodiscard]] bool contains(std::string_view haystack, std::string_view needle) noexcept;

/// Extract maximal runs of alphabetic characters, lowercased.
/// This is the paper's Section 5.1 "Extracting Common Terms" regex
/// ([a-zA-Z]+) applied to a hostname: "brians-iphone-12.ex.edu" ->
/// {"brians","iphone","ex","edu"}.
[[nodiscard]] std::vector<std::string> alpha_terms(std::string_view s);

/// Replace every occurrence of `from` with `to`.
[[nodiscard]] std::string replace_all(std::string s, std::string_view from, std::string_view to);

/// printf-style formatting into a std::string.
[[nodiscard]] std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Human-readable count with thousands separators: 1234567 -> "1,234,567".
[[nodiscard]] std::string with_commas(std::int64_t n);

}  // namespace rdns::util
