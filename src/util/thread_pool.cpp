#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace rdns::util {

namespace {

/// Set while the current thread executes chunks for some pool, so nested
/// parallel_for_chunks calls degrade to the serial path instead of
/// deadlocking on worker starvation.
thread_local bool t_in_parallel_region = false;

std::unique_ptr<ThreadPool>& global_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

std::mutex& global_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace

unsigned ThreadPool::default_size() {
  if (const char* env = std::getenv("RDNS_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<unsigned>(std::min<long>(v, 1024));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool& ThreadPool::global() {
  std::lock_guard lock{global_mutex()};
  auto& slot = global_slot();
  if (!slot) slot = std::make_unique<ThreadPool>(default_size());
  return *slot;
}

void ThreadPool::set_global_size(unsigned size) {
  std::lock_guard lock{global_mutex()};
  auto& slot = global_slot();
  const unsigned want = size == 0 ? default_size() : size;
  if (slot && slot->size() == want) return;
  slot = std::make_unique<ThreadPool>(want);
}

ThreadPool::ThreadPool(unsigned size) : size_(size == 0 ? default_size() : size) {
  threads_.reserve(size_ - 1);
  for (unsigned i = 0; i + 1 < size_; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock{m_};
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::parallel_for_chunks(std::uint64_t n, std::uint64_t chunk, const ChunkFn& fn) {
  if (chunk == 0) throw std::invalid_argument("ThreadPool::parallel_for_chunks: chunk == 0");
  if (n == 0) return;
  const std::size_t n_chunks = chunk_count(n, chunk);

  // Serial path: pool of one, nested call, or nothing to spread. This is
  // the exact code a hand-written loop would run — no locks, no threads.
  if (size_ == 1 || t_in_parallel_region || n_chunks == 1) {
    for (std::size_t ci = 0; ci < n_chunks; ++ci) {
      const std::uint64_t begin = static_cast<std::uint64_t>(ci) * chunk;
      fn(ci, begin, std::min(n, begin + chunk));
    }
    return;
  }

  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->n = n;
  job->chunk = chunk;
  job->n_chunks = n_chunks;
  {
    std::lock_guard lock{m_};
    job_ = job;
    ++generation_;
  }
  work_cv_.notify_all();

  run_chunks(*job);  // the caller is worker #0

  std::unique_lock lock{m_};
  done_cv_.wait(lock, [&] { return job->done == job->n_chunks; });
  if (job_ == job) job_.reset();
  if (job->error) std::rethrow_exception(job->error);
}

void ThreadPool::run_chunks(Job& job) {
  t_in_parallel_region = true;
  for (;;) {
    const std::uint64_t ci = job.next.fetch_add(1, std::memory_order_relaxed);
    if (ci >= job.n_chunks) break;
    const std::uint64_t begin = ci * job.chunk;
    const std::uint64_t end = std::min(job.n, begin + job.chunk);
    try {
      (*job.fn)(static_cast<std::size_t>(ci), begin, end);
    } catch (...) {
      std::lock_guard lock{m_};
      if (!job.error) job.error = std::current_exception();
    }
    std::lock_guard lock{m_};
    if (++job.done == job.n_chunks) done_cv_.notify_all();
  }
  t_in_parallel_region = false;
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock lock{m_};
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) return;
      seen_generation = generation_;
      job = job_;
    }
    if (job) run_chunks(*job);
  }
}

}  // namespace rdns::util
