#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace rdns::util {

namespace {

/// Set while the current thread executes chunks for some pool, so nested
/// parallel_for_chunks calls degrade to the serial path instead of
/// deadlocking on worker starvation.
thread_local bool t_in_parallel_region = false;

std::unique_ptr<ThreadPool>& global_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

std::mutex& global_mutex() {
  static std::mutex m;
  return m;
}

/// Pool instrumentation. Counters (relaxed atomics) are always on and
/// deterministic across thread counts — chunk boundaries depend only on
/// (n, chunk). Clock-based series (busy time, queue wait) only tick when
/// metrics::collect_timing() is set.
struct PoolMetrics {
  metrics::Counter& regions = metrics::counter("thread_pool.regions");
  metrics::Counter& chunks = metrics::counter("thread_pool.chunks");
  metrics::Counter& busy_ns = metrics::counter("thread_pool.busy_ns");
  metrics::Gauge& workers = metrics::gauge("thread_pool.workers");
  metrics::Histogram& chunks_per_region = metrics::histogram(
      "thread_pool.chunks_per_region", metrics::Histogram::exponential_bounds(1, 2, 17));
  metrics::Histogram& chunk_us = metrics::histogram(
      "thread_pool.chunk_us", metrics::Histogram::exponential_bounds(10, 4, 12));
  metrics::Histogram& queue_wait_us = metrics::histogram(
      "thread_pool.queue_wait_us", metrics::Histogram::exponential_bounds(1, 4, 12));
  metrics::Histogram& parallelism_x100 = metrics::histogram(
      "thread_pool.region_parallelism_x100",
      metrics::Histogram::exponential_bounds(25, 2, 12));
};

PoolMetrics& pool_metrics() {
  static PoolMetrics m;
  return m;
}

}  // namespace

unsigned ThreadPool::default_size() {
  if (const char* env = std::getenv("RDNS_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<unsigned>(std::min<long>(v, 1024));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool& ThreadPool::global() {
  std::lock_guard lock{global_mutex()};
  auto& slot = global_slot();
  if (!slot) slot = std::make_unique<ThreadPool>(default_size());
  return *slot;
}

void ThreadPool::set_global_size(unsigned size) {
  std::lock_guard lock{global_mutex()};
  auto& slot = global_slot();
  const unsigned want = size == 0 ? default_size() : size;
  if (slot && slot->size() == want) return;
  slot = std::make_unique<ThreadPool>(want);
}

ThreadPool::ThreadPool(unsigned size) : size_(size == 0 ? default_size() : size) {
  threads_.reserve(size_ - 1);
  for (unsigned i = 0; i + 1 < size_; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock{m_};
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::parallel_for_chunks(std::uint64_t n, std::uint64_t chunk, const ChunkFn& fn) {
  if (chunk == 0) throw std::invalid_argument("ThreadPool::parallel_for_chunks: chunk == 0");
  if (n == 0) return;
  const std::size_t n_chunks = chunk_count(n, chunk);

  PoolMetrics& pm = pool_metrics();
  pm.regions.inc();
  pm.chunks.inc(n_chunks);
  pm.chunks_per_region.observe(static_cast<double>(n_chunks));
  pm.workers.set(size_);
  const bool timed = metrics::collect_timing();
  const std::int64_t region_start = timed ? trace::wall_now_ns() : 0;

  // Serial path: pool of one, nested call, or nothing to spread. This is
  // the exact code a hand-written loop would run — no locks, no threads.
  if (size_ == 1 || t_in_parallel_region || n_chunks == 1) {
    for (std::size_t ci = 0; ci < n_chunks; ++ci) {
      const std::uint64_t begin = static_cast<std::uint64_t>(ci) * chunk;
      if (timed) {
        const std::int64_t t0 = trace::wall_now_ns();
        fn(ci, begin, std::min(n, begin + chunk));
        const std::int64_t elapsed = trace::wall_now_ns() - t0;
        pm.busy_ns.inc(static_cast<std::uint64_t>(elapsed));
        pm.chunk_us.observe(static_cast<double>(elapsed) / 1e3);
      } else {
        fn(ci, begin, std::min(n, begin + chunk));
      }
    }
    if (timed) {
      const std::int64_t wall = trace::wall_now_ns() - region_start;
      if (wall > 0) pm.parallelism_x100.observe(100.0);
    }
    return;
  }

  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->n = n;
  job->chunk = chunk;
  job->n_chunks = n_chunks;
  job->timed = timed;
  job->publish_ns = region_start;
  {
    std::lock_guard lock{m_};
    job_ = job;
    ++generation_;
  }
  work_cv_.notify_all();

  run_chunks(*job);  // the caller is worker #0

  std::unique_lock lock{m_};
  done_cv_.wait(lock, [&] { return job->done == job->n_chunks; });
  if (job_ == job) job_.reset();
  if (job->error) std::rethrow_exception(job->error);
  lock.unlock();

  if (timed) {
    const std::int64_t wall = trace::wall_now_ns() - region_start;
    const std::uint64_t busy = job->busy_ns.load(std::memory_order_relaxed);
    pm.busy_ns.inc(busy);
    if (wall > 0) {
      pm.parallelism_x100.observe(100.0 * static_cast<double>(busy) /
                                  static_cast<double>(wall));
    }
  }
}

void ThreadPool::run_chunks(Job& job) {
  PoolMetrics& pm = pool_metrics();
  t_in_parallel_region = true;
  bool first_chunk = true;
  for (;;) {
    const std::uint64_t ci = job.next.fetch_add(1, std::memory_order_relaxed);
    if (ci >= job.n_chunks) break;
    const std::uint64_t begin = ci * job.chunk;
    const std::uint64_t end = std::min(job.n, begin + job.chunk);
    const std::int64_t t0 = job.timed ? trace::wall_now_ns() : 0;
    if (job.timed && first_chunk) {
      // Dispatch latency: publish -> this worker's first chunk start.
      pm.queue_wait_us.observe(static_cast<double>(t0 - job.publish_ns) / 1e3);
      first_chunk = false;
    }
    try {
      (*job.fn)(static_cast<std::size_t>(ci), begin, end);
    } catch (...) {
      std::lock_guard lock{m_};
      if (!job.error) job.error = std::current_exception();
    }
    if (job.timed) {
      const std::int64_t elapsed = trace::wall_now_ns() - t0;
      job.busy_ns.fetch_add(static_cast<std::uint64_t>(elapsed), std::memory_order_relaxed);
      pm.chunk_us.observe(static_cast<double>(elapsed) / 1e3);
    }
    std::lock_guard lock{m_};
    if (++job.done == job.n_chunks) done_cv_.notify_all();
  }
  t_in_parallel_region = false;
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock lock{m_};
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) return;
      seen_generation = generation_;
      job = job_;
    }
    if (job) run_chunks(*job);
  }
}

}  // namespace rdns::util
