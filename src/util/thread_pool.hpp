#pragma once
/// \file thread_pool.hpp
/// Chunk-sharded data parallelism for the scan and analysis hot paths.
///
/// Real full-space scanners are embarrassingly parallel — bulkDNS runs one
/// resolver state per pthread — and so are our map-reduce analysis stages.
/// The primitives here keep that parallelism *deterministic*:
///
///   - `ThreadPool::parallel_for_chunks(n, chunk, fn)` divides [0, n) into
///     fixed chunks and hands each chunk (with a stable chunk index) to a
///     worker. Chunk boundaries depend only on (n, chunk), never on the
///     thread count, so per-chunk state (resolver ids, RNG seeds) is
///     reproducible at any pool size. A pool of size 1 spawns no threads
///     and runs the exact serial code path on the calling thread.
///
///   - `OrderedMergeBuffer<T>` is a bounded reorder buffer: producers
///     deliver per-chunk results tagged with their chunk index and the
///     consume callback observes them in index order, so byte streams
///     (CSV sinks) come out identical to a serial run.
///
///   - `map_reduce_chunks` collects one partial result per chunk and folds
///     them in ascending chunk order — a deterministic reduce even when
///     the fold operation is order-sensitive.
///
/// The pool size defaults to `RDNS_THREADS` (environment) or
/// `std::thread::hardware_concurrency()`; `--threads N` in the tools maps
/// onto `ThreadPool::set_global_size`.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rdns::util {

/// Fixed-size worker pool. Construction with size N spawns N-1 worker
/// threads (the calling thread participates in every parallel region);
/// size 1 spawns none and every call degenerates to the serial loop.
class ThreadPool {
 public:
  /// fn(chunk_index, begin, end) over a sub-range of [0, n).
  using ChunkFn = std::function<void(std::size_t, std::uint64_t, std::uint64_t)>;

  /// `size` = total workers including the caller; 0 means default_size().
  explicit ThreadPool(unsigned size = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept { return size_; }

  /// RDNS_THREADS environment override, else hardware_concurrency (min 1).
  [[nodiscard]] static unsigned default_size();

  /// Process-wide shared pool (lazily built at default_size()).
  [[nodiscard]] static ThreadPool& global();

  /// Rebuild the global pool at `size` (0 = default_size()). Must not be
  /// called while a parallel region is running.
  static void set_global_size(unsigned size);

  /// Number of chunks parallel_for_chunks will produce.
  [[nodiscard]] static std::size_t chunk_count(std::uint64_t n, std::uint64_t chunk) {
    return chunk == 0 ? 0 : static_cast<std::size_t>((n + chunk - 1) / chunk);
  }

  /// Run fn over [0, n) in chunks of `chunk`. Blocks until every chunk
  /// completed; the first exception thrown by any chunk is rethrown here
  /// (remaining chunks still run to completion). Calls from inside a
  /// worker run serially inline (no nested parallelism).
  void parallel_for_chunks(std::uint64_t n, std::uint64_t chunk, const ChunkFn& fn);

 private:
  struct Job {
    const ChunkFn* fn = nullptr;
    std::uint64_t n = 0;
    std::uint64_t chunk = 0;
    std::size_t n_chunks = 0;
    bool timed = false;              // snapshot of metrics::collect_timing()
    std::int64_t publish_ns = 0;     // wall clock when the job was posted
    std::atomic<std::uint64_t> next{0};
    std::atomic<std::uint64_t> busy_ns{0};  // summed per-chunk wall time
    std::size_t done = 0;            // guarded by pool mutex
    std::exception_ptr error;        // first failure; guarded by pool mutex
  };

  void worker_loop();
  void run_chunks(Job& job);

  unsigned size_;
  std::vector<std::thread> threads_;
  std::mutex m_;
  std::condition_variable work_cv_;  // workers: new job / shutdown
  std::condition_variable done_cv_;  // caller: job completion
  std::uint64_t generation_ = 0;
  std::shared_ptr<Job> job_;         // current job; guarded by m_
  bool stop_ = false;
};

/// Bounded reorder buffer: `put(seq, item)` may arrive in any order from
/// any thread; `consume(seq, item)` fires in strictly ascending seq order
/// (0, 1, 2, ...), executed under the buffer lock by whichever producer
/// delivered the next needed item — downstream sinks need no locking of
/// their own. A producer more than `capacity` chunks ahead of the merge
/// cursor blocks until the gap closes, bounding memory.
template <typename T>
class OrderedMergeBuffer {
 public:
  using Consume = std::function<void(std::size_t, T&&)>;

  OrderedMergeBuffer(std::size_t capacity, Consume consume)
      : capacity_(capacity == 0 ? 1 : capacity), consume_(std::move(consume)) {}

  void put(std::size_t seq, T&& item) {
    std::unique_lock lock{m_};
    cv_.wait(lock, [&] { return seq == next_ || pending_.size() < capacity_; });
    pending_.emplace(seq, std::move(item));
    // Flush the contiguous run starting at the cursor. The cursor advances
    // *before* each consume so a throwing consumer cannot wedge the merge:
    // later producers keep draining and the exception reaches the caller.
    for (auto it = pending_.find(next_); it != pending_.end(); it = pending_.find(next_)) {
      T value = std::move(it->second);
      pending_.erase(it);
      const std::size_t at = next_++;
      cv_.notify_all();
      consume_(at, std::move(value));
    }
  }

  /// Sequence numbers consumed so far.
  [[nodiscard]] std::size_t emitted() const {
    std::lock_guard lock{m_};
    return next_;
  }

 private:
  std::size_t capacity_;
  Consume consume_;
  mutable std::mutex m_;
  std::condition_variable cv_;
  std::map<std::size_t, T> pending_;
  std::size_t next_ = 0;
};

/// Deterministic map-reduce over [0, n): `map(chunk_index, begin, end)`
/// produces one partial of type R per chunk (in parallel); `fold(index,
/// partial)` runs on the calling thread in ascending chunk order.
template <typename R, typename Map, typename Fold>
void map_reduce_chunks(ThreadPool& pool, std::uint64_t n, std::uint64_t chunk, Map&& map,
                       Fold&& fold) {
  const std::size_t n_chunks = ThreadPool::chunk_count(n, chunk);
  std::vector<R> partials(n_chunks);
  pool.parallel_for_chunks(n, chunk,
                           [&](std::size_t ci, std::uint64_t begin, std::uint64_t end) {
                             partials[ci] = map(ci, begin, end);
                           });
  for (std::size_t ci = 0; ci < n_chunks; ++ci) fold(ci, std::move(partials[ci]));
}

}  // namespace rdns::util
