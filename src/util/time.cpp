#include "util/time.hpp"

#include <cstdio>
#include <stdexcept>

namespace rdns::util {

const char* to_string(Weekday d) noexcept {
  switch (d) {
    case Weekday::Monday: return "Monday";
    case Weekday::Tuesday: return "Tuesday";
    case Weekday::Wednesday: return "Wednesday";
    case Weekday::Thursday: return "Thursday";
    case Weekday::Friday: return "Friday";
    case Weekday::Saturday: return "Saturday";
    case Weekday::Sunday: return "Sunday";
  }
  return "?";
}

const char* to_short_string(Weekday d) noexcept {
  switch (d) {
    case Weekday::Monday: return "Mon";
    case Weekday::Tuesday: return "Tue";
    case Weekday::Wednesday: return "Wed";
    case Weekday::Thursday: return "Thu";
    case Weekday::Friday: return "Fri";
    case Weekday::Saturday: return "Sat";
    case Weekday::Sunday: return "Sun";
  }
  return "?";
}

std::int64_t days_from_civil(const CivilDate& d) noexcept {
  // Howard Hinnant's algorithm (public domain), shifts the year so that
  // March is the first month, making leap-day handling uniform.
  std::int64_t y = d.year;
  const int m = d.month;
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);              // [0, 399]
  const unsigned doy = (153u * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d.day - 1;  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;             // [0, 146096]
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

CivilDate civil_from_days(std::int64_t z) noexcept {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);           // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;  // [0, 399]
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);           // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                                // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;                        // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                             // [1, 12]
  return CivilDate{static_cast<int>(y + (m <= 2)), static_cast<int>(m), static_cast<int>(d)};
}

SimTime to_sim_time(const CivilDate& d) noexcept { return days_from_civil(d) * kDay; }

SimTime to_sim_time(const CivilDateTime& dt) noexcept {
  return to_sim_time(dt.date) + dt.hour * kHour + dt.minute * kMinute + dt.second;
}

CivilDate to_civil_date(SimTime t) noexcept { return civil_from_days(day_index(t)); }

CivilDateTime to_civil_date_time(SimTime t) noexcept {
  CivilDateTime dt;
  dt.date = to_civil_date(t);
  const SimTime s = seconds_into_day(t);
  dt.hour = static_cast<int>(s / kHour);
  dt.minute = static_cast<int>((s % kHour) / kMinute);
  dt.second = static_cast<int>(s % kMinute);
  return dt;
}

Weekday weekday_of(const CivilDate& d) noexcept {
  // 1970-01-01 was a Thursday; ISO numbering has Monday = 0, Thursday = 3.
  const std::int64_t z = days_from_civil(d);
  const std::int64_t wd = ((z % 7) + 7 + 3) % 7;
  return static_cast<Weekday>(wd);
}

Weekday weekday_of(SimTime t) noexcept { return weekday_of(to_civil_date(t)); }

std::string format_date(const CivilDate& d) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02d", d.year, d.month, d.day);
  return buf;
}

std::string format_date(SimTime t) { return format_date(to_civil_date(t)); }

std::string format_date_time(SimTime t) {
  const CivilDateTime dt = to_civil_date_time(t);
  char buf[24];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02d %02d:%02d:%02d", dt.date.year, dt.date.month,
                dt.date.day, dt.hour, dt.minute, dt.second);
  return buf;
}

CivilDate parse_date(const std::string& s) {
  int y = 0, m = 0, d = 0;
  char extra = 0;
  if (std::sscanf(s.c_str(), "%d-%d-%d%c", &y, &m, &d, &extra) != 3 || m < 1 || m > 12 || d < 1 ||
      d > 31) {
    throw std::invalid_argument("parse_date: malformed date: " + s);
  }
  return CivilDate{y, m, d};
}

SimTime parse_date_time(const std::string& s) {
  int y = 0, mo = 0, d = 0, h = 0, mi = 0, se = 0;
  char extra = 0;
  if (std::sscanf(s.c_str(), "%d-%d-%d %d:%d:%d%c", &y, &mo, &d, &h, &mi, &se, &extra) != 6 ||
      mo < 1 || mo > 12 || d < 1 || d > 31 || h < 0 || h > 23 || mi < 0 || mi > 59 || se < 0 ||
      se > 59) {
    throw std::invalid_argument("parse_date_time: malformed date-time: " + s);
  }
  return to_sim_time(CivilDateTime{CivilDate{y, mo, d}, h, mi, se});
}

CivilDate add_days(const CivilDate& d, std::int64_t n) noexcept {
  return civil_from_days(days_from_civil(d) + n);
}

std::int64_t days_between(const CivilDate& a, const CivilDate& b) noexcept {
  return days_from_civil(b) - days_from_civil(a);
}

CivilDate thanksgiving(int year) noexcept {
  // Fourth Thursday of November.
  CivilDate nov1{year, 11, 1};
  const int wd = static_cast<int>(weekday_of(nov1));  // Monday = 0 .. Sunday = 6
  const int thursday = static_cast<int>(Weekday::Thursday);
  const int first_thursday = 1 + ((thursday - wd) + 7) % 7;
  return CivilDate{year, 11, first_thursday + 21};
}

}  // namespace rdns::util
