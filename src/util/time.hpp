#pragma once
/// \file time.hpp
/// Simulated-time primitives: a simulation clock measured in seconds since
/// the Unix epoch, plus civil (calendar) date/time conversions.
///
/// The whole system runs on simulated time; nothing in the library reads the
/// wall clock. Civil conversions use Howard Hinnant's days-from-civil
/// algorithm, valid over the full range we care about (the study period
/// 2019-10-01 .. 2021-12-31 and far beyond).

#include <cstdint>
#include <string>
#include <compare>

namespace rdns::util {

/// Seconds since the Unix epoch (1970-01-01T00:00:00Z), in simulated time.
using SimTime = std::int64_t;

/// Convenient duration constants (seconds).
inline constexpr SimTime kSecond = 1;
inline constexpr SimTime kMinute = 60;
inline constexpr SimTime kHour = 3600;
inline constexpr SimTime kDay = 86400;
inline constexpr SimTime kWeek = 7 * kDay;

[[nodiscard]] constexpr SimTime minutes(std::int64_t n) noexcept { return n * kMinute; }
[[nodiscard]] constexpr SimTime hours(std::int64_t n) noexcept { return n * kHour; }
[[nodiscard]] constexpr SimTime days(std::int64_t n) noexcept { return n * kDay; }

/// Day of week. Numbering follows ISO 8601 (Monday first) because the
/// paper's figures (e.g. Fig. 8) lay weeks out Mon..Sun.
enum class Weekday : int {
  Monday = 0,
  Tuesday = 1,
  Wednesday = 2,
  Thursday = 3,
  Friday = 4,
  Saturday = 5,
  Sunday = 6,
};

[[nodiscard]] const char* to_string(Weekday d) noexcept;
[[nodiscard]] const char* to_short_string(Weekday d) noexcept;
[[nodiscard]] constexpr bool is_weekend(Weekday d) noexcept {
  return d == Weekday::Saturday || d == Weekday::Sunday;
}

/// A calendar date (proleptic Gregorian).
struct CivilDate {
  int year = 1970;
  int month = 1;  ///< 1..12
  int day = 1;    ///< 1..31

  auto operator<=>(const CivilDate&) const = default;
};

/// A calendar date plus time-of-day.
struct CivilDateTime {
  CivilDate date;
  int hour = 0;    ///< 0..23
  int minute = 0;  ///< 0..59
  int second = 0;  ///< 0..59

  auto operator<=>(const CivilDateTime&) const = default;
};

/// Days since the epoch for a civil date (may be negative).
[[nodiscard]] std::int64_t days_from_civil(const CivilDate& d) noexcept;

/// Inverse of days_from_civil.
[[nodiscard]] CivilDate civil_from_days(std::int64_t days) noexcept;

/// SimTime (midnight) for a civil date.
[[nodiscard]] SimTime to_sim_time(const CivilDate& d) noexcept;

/// SimTime for a civil date-time.
[[nodiscard]] SimTime to_sim_time(const CivilDateTime& dt) noexcept;

/// Civil date containing a SimTime.
[[nodiscard]] CivilDate to_civil_date(SimTime t) noexcept;

/// Civil date-time for a SimTime.
[[nodiscard]] CivilDateTime to_civil_date_time(SimTime t) noexcept;

/// Day of week for a civil date.
[[nodiscard]] Weekday weekday_of(const CivilDate& d) noexcept;

/// Day of week containing a SimTime.
[[nodiscard]] Weekday weekday_of(SimTime t) noexcept;

/// Truncate a timestamp down to a multiple of `granularity` seconds.
/// The paper's supplemental measurement merges ICMP and rDNS data on
/// five-minute truncated timestamps (Section 6.1).
[[nodiscard]] constexpr SimTime truncate(SimTime t, SimTime granularity) noexcept {
  return (t / granularity) * granularity;
}

/// Midnight of the day containing `t`.
[[nodiscard]] constexpr SimTime start_of_day(SimTime t) noexcept { return truncate(t, kDay); }

/// Number of whole days since the epoch for `t`.
[[nodiscard]] constexpr std::int64_t day_index(SimTime t) noexcept { return t / kDay; }

/// Seconds elapsed since midnight.
[[nodiscard]] constexpr SimTime seconds_into_day(SimTime t) noexcept { return t % kDay; }

/// Format as "YYYY-MM-DD".
[[nodiscard]] std::string format_date(const CivilDate& d);
[[nodiscard]] std::string format_date(SimTime t);

/// Format as "YYYY-MM-DD HH:MM:SS".
[[nodiscard]] std::string format_date_time(SimTime t);

/// Parse "YYYY-MM-DD"; throws std::invalid_argument on malformed input.
[[nodiscard]] CivilDate parse_date(const std::string& s);

/// Parse "YYYY-MM-DD HH:MM:SS"; throws std::invalid_argument on malformed input.
[[nodiscard]] SimTime parse_date_time(const std::string& s);

/// Iterate dates: date + n days.
[[nodiscard]] CivilDate add_days(const CivilDate& d, std::int64_t n) noexcept;

/// Whole days from `a` to `b` (positive when b is later).
[[nodiscard]] std::int64_t days_between(const CivilDate& a, const CivilDate& b) noexcept;

/// US Thanksgiving (4th Thursday of November) for a given year.
[[nodiscard]] CivilDate thanksgiving(int year) noexcept;

}  // namespace rdns::util
