#include "util/token_bucket.hpp"

#include <algorithm>
#include <cmath>

namespace rdns::util {

TokenBucket::TokenBucket(double rate_per_second, double burst, SimTime start) noexcept
    : rate_(std::max(rate_per_second, 1e-9)),
      burst_(std::max(burst, 1.0)),
      tokens_(burst_),
      last_(start) {}

void TokenBucket::refill(SimTime now) noexcept {
  if (now <= last_) return;
  tokens_ = std::min(burst_, tokens_ + rate_ * static_cast<double>(now - last_));
  last_ = now;
}

bool TokenBucket::try_acquire(SimTime now, double n) noexcept {
  refill(now);
  if (tokens_ + 1e-12 >= n) {
    tokens_ -= n;
    return true;
  }
  return false;
}

SimTime TokenBucket::next_available(SimTime now, double n) noexcept {
  refill(now);
  if (tokens_ + 1e-12 >= n) return now;
  const double deficit = n - tokens_;
  return now + static_cast<SimTime>(std::ceil(deficit / rate_));
}

double TokenBucket::tokens(SimTime now) noexcept {
  refill(now);
  return tokens_;
}

}  // namespace rdns::util
