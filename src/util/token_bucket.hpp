#pragma once
/// \file token_bucket.hpp
/// Token-bucket rate limiter operating on simulated time.
///
/// The paper rate-limits both its ZMap ICMP probes and its rDNS lookups to
/// authoritative servers (Sections 6.1, 9); scanners in `rdns::scan` consult
/// a TokenBucket before emitting each probe.

#include <cstdint>

#include "util/time.hpp"

namespace rdns::util {

class TokenBucket {
 public:
  /// `rate_per_second` tokens accrue per simulated second, up to `burst`.
  /// The bucket starts full.
  TokenBucket(double rate_per_second, double burst, SimTime start = 0) noexcept;

  /// Try to consume `n` tokens at simulated time `now`; returns whether the
  /// probe may be sent. `now` must be monotone non-decreasing across calls.
  [[nodiscard]] bool try_acquire(SimTime now, double n = 1.0) noexcept;

  /// Earliest simulated time at which `n` tokens will be available.
  [[nodiscard]] SimTime next_available(SimTime now, double n = 1.0) noexcept;

  [[nodiscard]] double tokens(SimTime now) noexcept;
  [[nodiscard]] double rate() const noexcept { return rate_; }

 private:
  void refill(SimTime now) noexcept;

  double rate_;
  double burst_;
  double tokens_;
  SimTime last_;
};

}  // namespace rdns::util
