#include "util/trace.hpp"

#include <cstdio>
#include <ctime>
#include <ostream>
#include <sstream>

#include "util/journal.hpp"
#include "util/metrics.hpp"

namespace rdns::util::trace {

namespace {

/// The calling thread's innermost open span. Scopes form a stack per
/// thread; worker threads (which never open scopes) always see nullptr and
/// report through Scope::add_sample instead.
thread_local SpanNode* t_active = nullptr;

[[nodiscard]] std::int64_t clock_ns(clockid_t id) noexcept {
  timespec ts{};
  clock_gettime(id, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

}  // namespace

std::int64_t wall_now_ns() noexcept { return clock_ns(CLOCK_MONOTONIC); }
std::int64_t thread_cpu_now_ns() noexcept { return clock_ns(CLOCK_THREAD_CPUTIME_ID); }

SpanNode& SpanNode::child(std::string_view child_name) {
  for (const auto& c : children) {
    if (c->name == child_name) return *c;
  }
  children.push_back(std::make_unique<SpanNode>());
  children.back()->name = std::string{child_name};
  return *children.back();
}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

void Tracer::reset() {
  std::lock_guard lock{m_};
  root_.children.clear();
  root_.count = 0;
  root_.wall_ns = 0;
  root_.cpu_ns = 0;
}

Tracer::Scope::Scope(Tracer& tracer, std::string_view name) : tracer_(&tracer) {
  {
    std::lock_guard lock{tracer.m_};
    parent_ = t_active;
    SpanNode& parent = parent_ != nullptr ? *parent_ : tracer.root_;
    node_ = &parent.child(name);
    ++node_->count;
  }
  t_active = node_;
  wall_start_ = wall_now_ns();
  cpu_start_ = thread_cpu_now_ns();
}

Tracer::Scope::Scope(Scope&& other) noexcept
    : tracer_(other.tracer_),
      node_(other.node_),
      parent_(other.parent_),
      wall_start_(other.wall_start_),
      cpu_start_(other.cpu_start_) {
  other.tracer_ = nullptr;
  other.node_ = nullptr;
}

Tracer::Scope::~Scope() {
  if (tracer_ == nullptr) return;
  const std::int64_t wall = wall_now_ns() - wall_start_;
  const std::int64_t cpu = thread_cpu_now_ns() - cpu_start_;
  std::lock_guard lock{tracer_->m_};
  node_->wall_ns += wall;
  node_->cpu_ns += cpu;
  t_active = parent_;
}

void Tracer::Scope::add_sample(std::string_view name, std::int64_t sample_wall_ns,
                               std::int64_t sample_cpu_ns) const {
  if (tracer_ == nullptr) return;
  std::lock_guard lock{tracer_->m_};
  SpanNode& child = node_->child(name);
  ++child.count;
  child.wall_ns += sample_wall_ns;
  child.cpu_ns += sample_cpu_ns;
}

Tracer::Scope Tracer::scope(std::string_view name) {
  if (!enabled()) return Scope{};
  return Scope{*this, name};
}

bool Tracer::has_spans() const {
  std::lock_guard lock{m_};
  return !root_.children.empty();
}

std::int64_t Tracer::root_wall_ns() const {
  std::lock_guard lock{m_};
  std::int64_t total = 0;
  for (const auto& c : root_.children) total += c->wall_ns;
  return total;
}

namespace {

void write_span_json(std::ostream& out, const SpanNode& node, const std::string& pad) {
  std::string name;
  metrics::append_json_escaped(name, node.name);
  out << "{\"name\": \"" << name << "\", \"count\": " << node.count
      << ", \"wall_ms\": " << metrics::json_number(static_cast<double>(node.wall_ns) / 1e6)
      << ", \"cpu_ms\": " << metrics::json_number(static_cast<double>(node.cpu_ns) / 1e6)
      << ", \"children\": [";
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    out << (i ? ",\n" : "\n") << pad << "  ";
    write_span_json(out, *node.children[i], pad + "  ");
  }
  if (!node.children.empty()) out << '\n' << pad;
  out << "]}";
}

void render_span_text(std::ostream& out, const SpanNode& node, int depth) {
  out << "  ";
  for (int i = 0; i < depth; ++i) out << "  ";
  char line[160];
  std::snprintf(line, sizeof line, "%-*s %9.3fs wall  %9.3fs cpu  x%llu",
                36 - depth * 2, node.name.c_str(), static_cast<double>(node.wall_ns) / 1e9,
                static_cast<double>(node.cpu_ns) / 1e9,
                static_cast<unsigned long long>(node.count));
  out << line << '\n';
  for (const auto& c : node.children) render_span_text(out, *c, depth + 1);
}

}  // namespace

void Tracer::write_json(std::ostream& out, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::lock_guard lock{m_};
  // Render the synthetic root with wall/cpu equal to the sum of top-level
  // spans — with the CLI's single root span that is ≈ process runtime.
  SpanNode view;
  view.name = root_.name;
  view.count = 1;
  for (const auto& c : root_.children) {
    view.wall_ns += c->wall_ns;
    view.cpu_ns += c->cpu_ns;
  }
  std::string name;
  metrics::append_json_escaped(name, view.name);
  out << "{\"name\": \"" << name << "\", \"count\": " << view.count
      << ", \"wall_ms\": " << metrics::json_number(static_cast<double>(view.wall_ns) / 1e6)
      << ", \"cpu_ms\": " << metrics::json_number(static_cast<double>(view.cpu_ns) / 1e6)
      << ", \"children\": [";
  for (std::size_t i = 0; i < root_.children.size(); ++i) {
    out << (i ? ",\n" : "\n") << pad << "  ";
    write_span_json(out, *root_.children[i], pad + "  ");
  }
  if (!root_.children.empty()) out << '\n' << pad;
  out << "]}";
}

std::string Tracer::to_json(int indent) const {
  std::ostringstream out;
  write_json(out, indent);
  return out.str();
}

std::string Tracer::render_text() const {
  std::ostringstream out;
  out << "phase timing (wall / cpu / count):\n";
  std::lock_guard lock{m_};
  if (root_.children.empty()) {
    out << "  (no spans recorded)\n";
    return out.str();
  }
  for (const auto& c : root_.children) render_span_text(out, *c, 0);
  return out.str();
}

void write_snapshot_json(std::ostream& out, const metrics::Registry& registry,
                         const Tracer& tracer) {
  out << "{\n";
  out << "  \"schema\": \"rdns.observability.v1\",\n";
  out << "  \"generated_unix\": " << static_cast<long long>(std::time(nullptr)) << ",\n";
  // Run provenance, when the tool recorded it: ties this snapshot to the
  // journal/bench artifacts of the same run (journal::manifests_compatible).
  if (const auto manifest = journal::Journal::global().manifest()) {
    out << "  \"manifest\": " << journal::manifest_json(*manifest) << ",\n";
  }
  registry.write_json(out, 2);
  out << ",\n  \"spans\": ";
  tracer.write_json(out, 2);
  out << "\n}\n";
}

}  // namespace rdns::util::trace
