#pragma once
/// \file trace.hpp
/// Scoped-span phase tracer. Instrumented phases open a Scope (RAII); the
/// tracer records a phase tree with wall-clock and calling-thread CPU time
/// per span. Repeated spans with the same name under the same parent merge
/// into one node (count + summed times), so the tree is keyed by *structure*
/// not timing: "sweep → day → org_snapshot" has the same shape at every
/// thread count, and thousands of per-shard samples collapse into one child.
///
/// Worker threads don't open scopes of their own (their notion of "current
/// span" would race); instead they report completed samples into a parent
/// scope handle with Scope::add_sample — one mutex-guarded merge per sample,
/// only taken when tracing is enabled.
///
/// Disabled (the default), scope() returns an inert handle after one relaxed
/// atomic load — no clocks, no locks.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace rdns::util::trace {

/// Monotonic wall clock (ns).
[[nodiscard]] std::int64_t wall_now_ns() noexcept;
/// CPU time consumed by the calling thread (ns).
[[nodiscard]] std::int64_t thread_cpu_now_ns() noexcept;

/// One node of the phase tree. Children keep first-seen order (which is
/// driven by the instrumented control flow, hence deterministic).
struct SpanNode {
  std::string name;
  std::uint64_t count = 0;
  std::int64_t wall_ns = 0;
  std::int64_t cpu_ns = 0;
  std::vector<std::unique_ptr<SpanNode>> children;

  /// Find the child named `child_name`, creating it if absent.
  [[nodiscard]] SpanNode& child(std::string_view child_name);
};

class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  [[nodiscard]] static Tracer& global();

  void set_enabled(bool on) noexcept { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  /// Drop all recorded spans (keeps the enabled flag).
  void reset();

  /// RAII span handle. Inert when default-constructed or when the tracer
  /// was disabled at scope() time.
  class Scope {
   public:
    Scope() = default;
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    Scope(Scope&& other) noexcept;
    Scope& operator=(Scope&&) = delete;
    ~Scope();

    [[nodiscard]] bool active() const noexcept { return tracer_ != nullptr; }

    /// Merge a completed child sample (e.g. one /24 shard measured on a
    /// worker thread) under this span. Thread-safe; no-op when inert.
    void add_sample(std::string_view name, std::int64_t sample_wall_ns,
                    std::int64_t sample_cpu_ns) const;

   private:
    friend class Tracer;
    Scope(Tracer& tracer, std::string_view name);

    Tracer* tracer_ = nullptr;
    SpanNode* node_ = nullptr;
    SpanNode* parent_ = nullptr;  ///< thread-local active span to restore
    std::int64_t wall_start_ = 0;
    std::int64_t cpu_start_ = 0;
  };

  /// Open a span named `name` under the calling thread's active span (or
  /// the root). Returns an inert handle when disabled.
  [[nodiscard]] Scope scope(std::string_view name);

  /// True if any span has been recorded.
  [[nodiscard]] bool has_spans() const;

  /// Total wall time across top-level spans (ns).
  [[nodiscard]] std::int64_t root_wall_ns() const;

  /// {"name": ..., "count": ..., "wall_ms": ..., "cpu_ms": ..., "children": [...]}
  void write_json(std::ostream& out, int indent = 2) const;
  [[nodiscard]] std::string to_json(int indent = 2) const;

  /// Indented phase-timing summary (one line per node) for stderr.
  [[nodiscard]] std::string render_text() const;

 private:
  friend class Scope;

  mutable std::mutex m_;
  std::atomic<bool> enabled_{false};
  SpanNode root_{"total", 0, 0, 0, {}};
};

}  // namespace rdns::util::trace

namespace rdns::util::metrics {
class Registry;
}

namespace rdns::util::trace {

/// The full observability snapshot — metrics registry + span tree — as one
/// JSON document (schema "rdns.observability.v1"). This is what
/// --metrics-out writes and what tools/check_metrics_schema.py validates.
void write_snapshot_json(std::ostream& out, const metrics::Registry& registry,
                         const Tracer& tracer);

}  // namespace rdns::util::trace
