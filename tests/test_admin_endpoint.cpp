// Live introspection plane (dns::ServeIntrospection + net::AdminHttpServer):
// the seqlock publish/aggregate pipeline, rolling QPS windows, latency
// percentiles, the CHAOS TXT wire interface, the Prometheus/stats.json
// renders and the loopback HTTP endpoint. Network-touching cases run over
// loopback with kernel-assigned ports (LABELS net).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "dns/admin.hpp"
#include "dns/message.hpp"
#include "dns/name.hpp"
#include "dns/udp_server.hpp"
#include "dns/wire.hpp"
#include "net/admin_http.hpp"
#include "util/journal.hpp"

namespace rdns::dns {
namespace {

ServeAdminConfig test_config() {
  ServeAdminConfig cfg;
  cfg.sample_every = 1;  // sample everything: tests want deterministic totals
  cfg.slowlog_threshold_us = 1e9;  // never slowlog unless a test lowers it
  cfg.top_k = 8;
  return cfg;
}

std::vector<std::uint8_t> chaos_query(const std::string& qname, std::uint16_t id = 7,
                                      RrClass qclass = RrClass::CH,
                                      RrType qtype = RrType::TXT) {
  Message q = make_query(id, DnsName::must_parse(qname), qtype);
  q.questions.front().qclass = qclass;
  return encode(q);
}

TEST(RateWindows, DifferencesAgainstWindowBoundary) {
  RateWindows rw;
  EXPECT_EQ(rw.rate(1.0), 0.0);
  rw.add_sample(0.0, 0);
  EXPECT_EQ(rw.rate(1.0), 0.0);  // one sample: no span yet
  rw.add_sample(1.0, 1000);
  rw.add_sample(2.0, 3000);
  // 1s window: newest (2.0, 3000) vs the sample at/just before 1.0.
  EXPECT_NEAR(rw.rate(1.0), 2000.0, 1e-6);
  // 10s window clamps to the observed 2s span: 3000 events over 2s.
  EXPECT_NEAR(rw.rate(10.0), 1500.0, 1e-6);
}

TEST(ServeLatencySnapshot, PercentileInterpolatesWithinBuckets) {
  ServeLatencySnapshot snap;
  EXPECT_EQ(snap.percentile(50), 0.0);
  // 100 samples in the bucket with upper bound 8us (index 3).
  snap.buckets[3] = 100;
  snap.count = 100;
  const double p50 = snap.percentile(50);
  EXPECT_GT(p50, 4.0);
  EXPECT_LE(p50, 8.0);
  // Add 100 slower samples (bound 64us): the median stays in the fast
  // bucket, p99 moves into the slow one.
  snap.buckets[6] = 100;
  snap.count = 200;
  EXPECT_LE(snap.percentile(50), 8.0);
  EXPECT_GT(snap.percentile(99), 32.0);
}

TEST(PeekQuestion, ParsesWellFormedQuestion) {
  const auto wire = chaos_query("STATS.rdns");
  std::uint16_t qtype = 0, qclass = 0;
  std::string qname;
  ASSERT_TRUE(peek_question(wire, &qtype, &qclass, &qname));
  EXPECT_EQ(qtype, static_cast<std::uint16_t>(RrType::TXT));
  EXPECT_EQ(qclass, static_cast<std::uint16_t>(RrClass::CH));
  EXPECT_EQ(qname, "stats.rdns");  // lowercased, no trailing dot
}

TEST(PeekQuestion, RejectsMalformedPayloads) {
  std::uint16_t qtype = 0, qclass = 0;
  // Too short for a header.
  const std::vector<std::uint8_t> stub(11, 0);
  EXPECT_FALSE(peek_question(stub, &qtype, &qclass, nullptr));
  // Header claims a question but the name runs off the end.
  std::vector<std::uint8_t> truncated(14, 0);
  truncated[5] = 1;   // qdcount = 1
  truncated[12] = 9;  // label of 9 bytes, only 1 present
  EXPECT_FALSE(peek_question(truncated, &qtype, &qclass, nullptr));
  // Compression pointer (0xC0) in a query name is rejected, not chased.
  std::vector<std::uint8_t> compressed(18, 0);
  compressed[5] = 1;
  compressed[12] = 0xC0;
  compressed[13] = 0x0C;
  EXPECT_FALSE(peek_question(compressed, &qtype, &qclass, nullptr));
}

TEST(ServeIntrospection, PublishAggregateRoundTrip) {
  ServeIntrospection plane{2, test_config()};
  auto& p0 = plane.probe(0);
  auto& p1 = plane.probe(1);

  UdpServeStats s0;
  s0.datagrams_received = 100;
  s0.responses_sent = 90;
  s0.dropped_timeout_fault = 6;
  s0.dropped_malformed = 3;
  s0.dropped_policy = 1;
  p0.note_client(0x7f000001u);
  p0.note_client(0x7f000001u);
  p0.note_client(0x0a000001u);
  p0.publish(s0);

  UdpServeStats s1;
  s1.datagrams_received = 50;
  s1.responses_sent = 50;
  p1.note_client(0x7f000001u);
  p1.publish(s1);

  plane.aggregate_now();
  const auto agg = plane.aggregate();
  EXPECT_EQ(agg.totals.datagrams_received, 150u);
  EXPECT_EQ(agg.totals.responses_sent, 140u);
  EXPECT_EQ(agg.totals.dropped_timeout_fault, 6u);
  EXPECT_EQ(agg.totals.dropped_malformed, 3u);
  EXPECT_EQ(agg.totals.dropped_policy, 1u);
  EXPECT_EQ(agg.totals.dropped_total(), 10u);
  ASSERT_FALSE(agg.top_clients.empty());
  EXPECT_EQ(agg.top_clients.front().key, "127.0.0.1");
  EXPECT_EQ(agg.top_clients.front().count, 3u);
}

TEST(ServeIntrospection, SampledLatencyFeedsHistogramAndQnames) {
  ServeIntrospection plane{1, test_config()};
  auto& probe = plane.probe(0);

  const auto query = encode(make_query(1, DnsName::must_parse("1.0.0.127.in-addr.arpa"),
                                       RrType::PTR));
  // sample_every=1: every headered payload is sampled.
  EXPECT_TRUE(probe.should_sample(query));
  const net::UdpEndpoint client{0x7f000001u, 9999};
  for (int i = 0; i < 10; ++i) {
    probe.on_sampled(query, std::nullopt, 100.0, client);
  }
  probe.publish(UdpServeStats{});

  plane.aggregate_now();
  const auto agg = plane.aggregate();
  EXPECT_EQ(agg.sampled, 10u);
  EXPECT_EQ(agg.latency.count, 10u);
  EXPECT_NEAR(agg.latency.sum_us, 1000.0, 1e-6);
  const double p50 = agg.latency.percentile(50);
  EXPECT_GT(p50, 64.0);
  EXPECT_LE(p50, 128.0);  // 100us lands in the 2^7 bucket
  ASSERT_FALSE(agg.top_qnames.empty());
  EXPECT_EQ(agg.top_qnames.front().key, "1.0.0.127.in-addr.arpa");
}

TEST(ServeIntrospection, ShouldSampleIsDeterministicAndGated) {
  ServeAdminConfig cfg = test_config();
  cfg.sample_every = 4;
  ServeIntrospection plane{1, cfg};
  auto& probe = plane.probe(0);

  unsigned sampled = 0;
  for (std::uint16_t id = 0; id < 1024; ++id) {
    const auto wire = encode(make_query(id, DnsName::must_parse("x.rdns"), RrType::TXT));
    const bool first = probe.should_sample(wire);
    EXPECT_EQ(first, probe.should_sample(wire));  // pure function of txid
    if (first) ++sampled;
  }
  // txid hash spreads roughly uniformly: ~1024/4 sampled, generous margin.
  EXPECT_GT(sampled, 1024 / 8);
  EXPECT_LT(sampled, 1024 / 2);

  ServeAdminConfig off = test_config();
  off.sample_every = 0;
  ServeIntrospection disabled{1, off};
  const auto wire = encode(make_query(1, DnsName::must_parse("x.rdns"), RrType::TXT));
  EXPECT_FALSE(disabled.probe(0).should_sample(wire));
}

TEST(ServeIntrospection, ChaosTxtAnswersStatsAndVersion) {
  ServeIntrospection plane{1, test_config()};
  unsigned inner_calls = 0;
  auto handler = plane.wrap_chaos([&inner_calls](std::span<const std::uint8_t>)
                                      -> std::optional<std::vector<std::uint8_t>> {
    ++inner_calls;
    return std::nullopt;
  });

  // Ordinary IN-class query falls through to the inner handler.
  EXPECT_FALSE(handler(chaos_query("1.0.0.127.in-addr.arpa", 1, RrClass::IN, RrType::PTR))
                   .has_value());
  EXPECT_EQ(inner_calls, 1u);

  // CH TXT stats.rdns is answered by the plane, not the zone.
  const auto reply = handler(chaos_query("stats.rdns"));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(inner_calls, 1u);
  const auto msg = decode(*reply);
  EXPECT_EQ(msg.flags.rcode, Rcode::NoError);
  ASSERT_FALSE(msg.answers.empty());
  EXPECT_EQ(msg.answers.front().klass, RrClass::CH);
  const auto* txt = std::get_if<TxtRdata>(&msg.answers.front().rdata);
  ASSERT_NE(txt, nullptr);
  ASSERT_FALSE(txt->strings.empty());
  bool saw_received = false;
  for (const auto& s : txt->strings) {
    if (s.rfind("received=", 0) == 0) saw_received = true;
  }
  EXPECT_TRUE(saw_received);

  // version.bind alias answers with the build version string.
  const auto version = handler(chaos_query("version.bind"));
  ASSERT_TRUE(version.has_value());
  const auto vmsg = decode(*version);
  EXPECT_EQ(vmsg.flags.rcode, Rcode::NoError);
  ASSERT_FALSE(vmsg.answers.empty());

  // Unknown CHAOS name: NXDOMAIN from the plane, inner never sees it.
  const auto unknown = handler(chaos_query("no.such.rdns"));
  ASSERT_TRUE(unknown.has_value());
  EXPECT_EQ(decode(*unknown).flags.rcode, Rcode::NxDomain);
  EXPECT_EQ(inner_calls, 1u);
}

TEST(ServeIntrospection, RendersPrometheusExposition) {
  ServeIntrospection plane{1, test_config()};
  auto& probe = plane.probe(0);
  UdpServeStats stats;
  stats.datagrams_received = 42;
  stats.responses_sent = 42;
  probe.publish(stats);
  plane.aggregate_now();

  const auto text = plane.render_prometheus();
  EXPECT_NE(text.find("# TYPE rdns_build_info gauge"), std::string::npos);
  EXPECT_NE(text.find("rdns_serve_qps{window=\"1s\"}"), std::string::npos);
  EXPECT_NE(text.find("serve_qps_1s"), std::string::npos);
  // Exposition ends with a newline (required by the text format).
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
}

TEST(ServeIntrospection, StatsJsonParsesAndCarriesSchema) {
  ServeIntrospection plane{1, test_config()};
  auto& probe = plane.probe(0);
  UdpServeStats stats;
  stats.datagrams_received = 10;
  stats.responses_sent = 9;
  probe.note_client(0x7f000001u);
  probe.publish(stats);
  plane.aggregate_now();

  const auto body = plane.render_stats_json();
  const auto doc = util::journal::parse_json(body);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->get_string("schema"), "rdns.serve-stats.v1");
  const auto* totals = doc->find("totals");
  ASSERT_NE(totals, nullptr);
  EXPECT_EQ(totals->get_int("received"), 10);
  const auto* top = doc->find("top_clients");
  ASSERT_NE(top, nullptr);
  ASSERT_FALSE(top->array.empty());
  EXPECT_EQ(top->array.front().get_string("key"), "127.0.0.1");
}

TEST(AdminHttpServer, ServesRoutesOverLoopback) {
  ServeIntrospection plane{1, test_config()};
  plane.probe(0).publish(UdpServeStats{});
  plane.aggregate_now();

  net::AdminHttpServer http;
  plane.install_http_routes(http);
  std::string error;
  ASSERT_TRUE(http.start(net::UdpEndpoint{0x7f000001u, 0}, &error)) << error;
  ASSERT_TRUE(http.running());
  ASSERT_NE(http.endpoint().port, 0);

  const auto metrics = net::http_get(http.endpoint(), "/metrics");
  ASSERT_TRUE(metrics.has_value());
  EXPECT_NE(metrics->find("# TYPE"), std::string::npos);

  const auto stats = net::http_get(http.endpoint(), "/stats.json");
  ASSERT_TRUE(stats.has_value());
  EXPECT_TRUE(util::journal::parse_json(*stats).has_value());

  // Query strings are stripped before route matching.
  EXPECT_TRUE(net::http_get(http.endpoint(), "/stats.json?cache=0").has_value());
  // Unknown path: 404 surfaces as nullopt from the client helper.
  EXPECT_FALSE(net::http_get(http.endpoint(), "/nope").has_value());

  http.stop();
  EXPECT_FALSE(http.running());
}

/// Raw TCP client for the abuse tests below: http_get is too well-behaved
/// to drip bytes or omit the CRLF.
struct RawTcpClient {
  int fd = -1;

  explicit RawTcpClient(const net::UdpEndpoint& server) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(server.address);
    addr.sin_port = htons(server.port);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      fd = -1;
    }
  }
  ~RawTcpClient() {
    if (fd >= 0) ::close(fd);
  }

  bool send_bytes(const std::string& bytes) const {
    return fd >= 0 &&
           ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL) ==
               static_cast<ssize_t>(bytes.size());
  }

  /// Read until the peer closes (bounded by `budget_ms`); returns whatever
  /// arrived. An empty result means the server closed without replying.
  std::string read_to_close(int budget_ms) const {
    std::string out;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(budget_ms);
    char buffer[512];
    while (std::chrono::steady_clock::now() < deadline) {
      timeval tv{0, 50 * 1000};
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
      const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
      if (n > 0) {
        out.append(buffer, static_cast<std::size_t>(n));
        continue;
      }
      if (n == 0) break;  // orderly close
      if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) break;
    }
    return out;
  }
};

TEST(AdminHttpServer, SlowlorisDripIsCutOffWith408) {
  net::AdminHttpServer http;
  http.set_io_timeout_ms(300);
  http.route("/ping", [](const std::string&) { return net::HttpResponse{200, "text/plain", "pong"}; });
  ASSERT_TRUE(http.start(net::UdpEndpoint{0x7f000001u, 0}));

  const auto t0 = std::chrono::steady_clock::now();
  RawTcpClient drip{http.endpoint()};
  ASSERT_GE(drip.fd, 0);
  // Drip one byte at a time, never sending the terminating CRLF: every
  // recv makes progress, so only the overall deadline can stop this.
  const std::string tease = "GET /ping";
  for (char c : tease) {
    if (!drip.send_bytes(std::string(1, c))) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  const std::string response = drip.read_to_close(3000);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  EXPECT_NE(response.find("408"), std::string::npos) << response;
  // The connection must die near the configured budget, not hang.
  EXPECT_LT(elapsed, 2500);

  // The listener is single-threaded: having shed the slow client, it must
  // still serve a well-behaved one promptly.
  const auto ok = net::http_get(http.endpoint(), "/ping");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(*ok, "pong");
  http.stop();
}

TEST(AdminHttpServer, OversizedHeaderlessRequestGets431) {
  net::AdminHttpServer http;
  http.set_io_timeout_ms(2000);
  http.set_max_request_bytes(128);
  ASSERT_TRUE(http.start(net::UdpEndpoint{0x7f000001u, 0}));

  RawTcpClient hog{http.endpoint()};
  ASSERT_GE(hog.fd, 0);
  // 4x the cap without ever finishing the request line.
  ASSERT_TRUE(hog.send_bytes("GET /" + std::string(512, 'a')));
  const std::string response = hog.read_to_close(3000);
  EXPECT_NE(response.find("431"), std::string::npos) << response;
  http.stop();
}

TEST(AdminHttpServer, TimeoutAndSizeKnobsHaveFloors) {
  net::AdminHttpServer http;
  http.set_io_timeout_ms(0);  // ignored: non-positive
  EXPECT_EQ(http.io_timeout_ms(), 2000);
  http.set_io_timeout_ms(750);
  EXPECT_EQ(http.io_timeout_ms(), 750);
  http.set_max_request_bytes(1);  // ignored: below the floor
  EXPECT_EQ(http.max_request_bytes(), 4096u);
  http.set_max_request_bytes(64);
  EXPECT_EQ(http.max_request_bytes(), 64u);
}

}  // namespace
}  // namespace rdns::dns
