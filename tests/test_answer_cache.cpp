/// AnswerCache: byte-parity of assembled replies against the reference
/// codec path (encode(handle_readonly(query))), probe classification of
/// cacheable vs handler-bound queries, EDNS OPT probing, the wire
/// post-processing helpers, and the serve-loop integration — cache-on vs
/// cache-off replies byte-identical over real sockets, and epoch-bump
/// invalidation swapping the whole image under a query stream.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "dns/answer_cache.hpp"
#include "dns/message.hpp"
#include "dns/server.hpp"
#include "dns/udp_server.hpp"
#include "dns/wire.hpp"
#include "net/arpa.hpp"
#include "net/ipv4.hpp"
#include "net/udp.hpp"
#include "util/rng.hpp"

namespace rdns::dns {
namespace {

SoaRdata test_soa() {
  SoaRdata soa;
  soa.mname = DnsName::must_parse("ns1.x.edu");
  soa.rname = DnsName::must_parse("hostmaster.x.edu");
  soa.serial = 100;
  return soa;
}

constexpr RrType kOpt = static_cast<RrType>(41);

net::Ipv4Addr addr(std::uint32_t v) { return net::Ipv4Addr{v}; }

/// A server hosting 10.80/16 with generic PTRs over 10.80.0.0–10.80.3.255
/// (the rest of the /16 answers NXDOMAIN). `suffix` varies per server so
/// invalidation tests can tell two generations apart.
std::unique_ptr<AuthoritativeServer> make_server(const char* suffix) {
  auto server = std::make_unique<AuthoritativeServer>();
  server->add_zone(DnsName::must_parse("80.10.in-addr.arpa"), test_soa());
  server->populate_generic(net::Ipv4Addr::must_parse("10.80.0.0"),
                           net::Ipv4Addr::must_parse("10.80.3.255"),
                           DnsName::must_parse(suffix), 3600);
  return server;
}

std::shared_ptr<const AnswerCache> cache_over(const AuthoritativeServer& server,
                                              const char* first = "10.80.0.0",
                                              const char* last = "10.80.255.255") {
  return AnswerCache::build({{&server, net::Ipv4Addr::must_parse(first),
                              net::Ipv4Addr::must_parse(last)}});
}

/// Reference reply through the codec path, as the serve loop's handler
/// would produce it.
std::vector<std::uint8_t> codec_reply(const AuthoritativeServer& server,
                                      std::span<const std::uint8_t> query) {
  ServerStats scratch;
  const auto response = server.handle_readonly(decode(query), scratch);
  EXPECT_TRUE(response.has_value());
  return encode(*response);
}

std::vector<std::uint8_t> cache_reply(const AnswerCache& cache,
                                      std::span<const std::uint8_t> query) {
  const AnswerCache::Probe p = cache.probe(query);
  EXPECT_TRUE(p.hit);
  std::vector<std::uint8_t> out(AnswerCache::reply_size(p));
  const std::size_t n = AnswerCache::assemble(p, query, out.data());
  out.resize(n);
  return out;
}

// -- byte parity ---------------------------------------------------------

TEST(AnswerCache, AssembledRepliesMatchCodecByteForByte) {
  const auto server = make_server("one.test");
  const auto cache = cache_over(*server);
  // Announced range sampled with a deterministic stride: populated
  // addresses (NOERROR + PTR), empty ones (NXDOMAIN + SOA), varying ids.
  util::Rng rng{0xCACE};
  for (int i = 0; i < 400; ++i) {
    const std::uint32_t host = static_cast<std::uint32_t>(rng.next() & 0xFFFF);
    const auto id = static_cast<std::uint16_t>(rng.next());
    Message q = make_ptr_query(id, addr((10u << 24) | (80u << 16) | host));
    if ((i & 1) != 0) q.flags.rd = false;  // parity must hold for both RD states
    const auto wire = encode(q);
    EXPECT_EQ(cache_reply(*cache, wire), codec_reply(*server, wire))
        << "host offset " << host;
  }
}

TEST(AnswerCache, MixedCaseQnamePreservesCodecParity) {
  const auto server = make_server("one.test");
  const auto cache = cache_over(*server);
  Message q = make_query(0xBEEF, DnsName::must_parse("7.0.80.10.IN-aDdR.Arpa"),
                         RrType::PTR);
  const auto wire = encode(q);
  const auto cached = cache_reply(*cache, wire);
  EXPECT_EQ(cached, codec_reply(*server, wire));
  // The echoed question keeps the client's exact casing.
  const Message reply = decode(cached);
  EXPECT_EQ(reply.questions[0].qname.to_string(), "7.0.80.10.IN-aDdR.Arpa");
  EXPECT_EQ(reply.flags.rcode, Rcode::NoError);
  ASSERT_EQ(reply.answers.size(), 1u);
}

TEST(AnswerCache, NxDomainEntryCarriesSoaAuthority) {
  const auto server = make_server("one.test");
  const auto cache = cache_over(*server);
  const auto wire = encode(make_ptr_query(7, net::Ipv4Addr::must_parse("10.80.200.200")));
  const auto cached = cache_reply(*cache, wire);
  EXPECT_EQ(cached, codec_reply(*server, wire));
  const Message reply = decode(cached);
  EXPECT_EQ(reply.flags.rcode, Rcode::NxDomain);
  ASSERT_EQ(reply.authority.size(), 1u);
  EXPECT_EQ(reply.authority[0].type(), RrType::SOA);
}

// -- probe classification ------------------------------------------------

TEST(AnswerCache, ProbeMissesOutsideBuiltRanges) {
  const auto server = make_server("one.test");
  // Cache only covers 10.80.0.0/18-ish; the rest of the /16 the server
  // *could* answer must still fall through to the handler.
  const auto cache = cache_over(*server, "10.80.0.0", "10.80.63.255");
  const auto inside = encode(make_ptr_query(1, net::Ipv4Addr::must_parse("10.80.1.1")));
  EXPECT_TRUE(cache->probe(inside).hit);
  const auto outside = encode(make_ptr_query(2, net::Ipv4Addr::must_parse("10.80.64.1")));
  const auto p = cache->probe(outside);
  EXPECT_FALSE(p.hit);
  EXPECT_TRUE(p.cacheable);  // canonical PTR shape, just not covered
}

TEST(AnswerCache, ProbeRejectsNonCanonicalAndNonPtrShapes) {
  const auto server = make_server("one.test");
  const auto cache = cache_over(*server);

  // Leading-zero octet: a distinct DNS name that the zone does not hold;
  // the handler must resolve it (to NXDOMAIN), not the cache.
  const auto padded = encode(
      make_query(1, DnsName::must_parse("01.0.80.10.in-addr.arpa"), RrType::PTR));
  EXPECT_FALSE(cache->probe(padded).cacheable);

  // Forward name.
  const auto forward =
      encode(make_query(2, DnsName::must_parse("host.example.com"), RrType::PTR));
  EXPECT_FALSE(cache->probe(forward).cacheable);

  // Wrong qtype.
  const auto a_query = encode(
      make_query(3, DnsName::must_parse("7.0.80.10.in-addr.arpa"), RrType::A));
  EXPECT_FALSE(cache->probe(a_query).cacheable);

  // Octet out of range.
  const auto oversize = encode(
      make_query(4, DnsName::must_parse("7.0.80.999.in-addr.arpa"), RrType::PTR));
  EXPECT_FALSE(cache->probe(oversize).cacheable);

  // Compressed qname (pointer byte in the question): never cacheable, and
  // the probe must stay in bounds.
  std::vector<std::uint8_t> compressed = {
      0x00, 0x05, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0xC0, 0x0C, 0x00, 0x0C, 0x00, 0x01};
  const auto p = cache->probe(compressed);
  EXPECT_FALSE(p.cacheable);
  EXPECT_FALSE(p.hit);
}

TEST(AnswerCache, ProbeParsesEdnsOpt) {
  const auto server = make_server("one.test");
  const auto cache = cache_over(*server);
  auto wire = encode(make_ptr_query(9, net::Ipv4Addr::must_parse("10.80.1.1")));
  // Append a minimal OPT RR advertising 1400 bytes and bump ARCOUNT.
  wire.insert(wire.end(), {0x00, 0x00, 0x29, 0x05, 0x78, 0x00, 0x00, 0x00, 0x00,
                           0x00, 0x00});
  wire[11] = 1;
  const auto p = cache->probe(wire);
  EXPECT_TRUE(p.hit);
  EXPECT_TRUE(p.edns);
  EXPECT_EQ(p.edns_udp_size, 1400);
}

TEST(AnswerCache, ProbeRejectsMalformedOpt) {
  const auto server = make_server("one.test");
  const auto cache = cache_over(*server);
  const auto base = encode(make_ptr_query(9, net::Ipv4Addr::must_parse("10.80.1.1")));

  // RDLEN lies about trailing bytes.
  auto bad_rdlen = base;
  bad_rdlen.insert(bad_rdlen.end(), {0x00, 0x00, 0x29, 0x04, 0xD0, 0x00, 0x00,
                                     0x00, 0x00, 0x00, 0x07});
  bad_rdlen[11] = 1;
  EXPECT_FALSE(cache->probe(bad_rdlen).edns);

  // Non-root owner name on the OPT.
  auto named = base;
  named.insert(named.end(), {0x01, 'x', 0x00, 0x00, 0x29, 0x04, 0xD0, 0x00,
                             0x00, 0x00, 0x00, 0x00, 0x00});
  named[11] = 1;
  EXPECT_FALSE(cache->probe(named).edns);

  // Two additional records: not the single-OPT shape the fast path takes.
  auto twice = base;
  for (int i = 0; i < 2; ++i) {
    twice.insert(twice.end(), {0x00, 0x00, 0x29, 0x04, 0xD0, 0x00, 0x00, 0x00,
                               0x00, 0x00, 0x00});
  }
  twice[11] = 2;
  EXPECT_FALSE(cache->probe(twice).edns);
  EXPECT_FALSE(cache->probe(twice).hit);
}

// -- wire helpers --------------------------------------------------------

TEST(AnswerCache, AppendOptAndTruncateToTc) {
  const auto server = make_server("one.test");
  const auto cache = cache_over(*server);
  const auto wire = encode(make_ptr_query(5, net::Ipv4Addr::must_parse("10.80.1.2")));
  const AnswerCache::Probe p = cache->probe(wire);
  ASSERT_TRUE(p.hit);
  std::vector<std::uint8_t> reply(AnswerCache::reply_size(p) + 11);
  std::size_t len = AnswerCache::assemble(p, wire, reply.data());

  len = AnswerCache::append_opt(reply.data(), len, 1232);
  reply.resize(len);
  const Message with_opt = decode(reply);
  ASSERT_EQ(with_opt.additional.size(), 1u);
  EXPECT_EQ(with_opt.additional[0].type(), kOpt);
  EXPECT_EQ(static_cast<std::uint16_t>(with_opt.additional[0].klass), 1232);

  // Truncation keeps header + question only, sets TC, re-appends the OPT.
  reply.resize(reply.size() + 11);
  len = AnswerCache::truncate_to_tc(reply.data(), p.question_end, 512);
  reply.resize(len);
  const Message truncated = decode(reply);
  EXPECT_TRUE(truncated.flags.tc);
  EXPECT_TRUE(truncated.answers.empty());
  ASSERT_EQ(truncated.additional.size(), 1u);
  EXPECT_EQ(truncated.additional[0].type(), kOpt);
}

TEST(AnswerCache, ScanQuestionEndMatchesEncodedQuery) {
  const auto wire = encode(make_ptr_query(1, net::Ipv4Addr::must_parse("10.80.1.1")));
  EXPECT_EQ(AnswerCache::scan_question_end(wire), wire.size());
  EXPECT_EQ(AnswerCache::scan_question_end(std::span<const std::uint8_t>{}), 0u);
}

// -- serve-loop integration over real sockets ----------------------------

struct RawClient {
  net::UdpSocket socket;
  net::UdpEndpoint server;

  explicit RawClient(const net::UdpEndpoint& endpoint)
      : socket(*net::UdpSocket::open()), server(endpoint) {}

  std::optional<std::vector<std::uint8_t>> exchange(
      const std::vector<std::uint8_t>& wire, int timeout_ms = 2000) {
    if (!socket.send(wire, server)) return std::nullopt;
    if (!socket.wait_readable(timeout_ms)) return std::nullopt;
    std::vector<std::uint8_t> buffer(2048);
    const auto n = socket.recv(buffer, nullptr);
    if (!n) return std::nullopt;
    buffer.resize(*n);
    return buffer;
  }
};

UdpServerLoop::WireHandler server_handler(const AuthoritativeServer& server) {
  return [&server](std::span<const std::uint8_t> query)
             -> std::optional<std::vector<std::uint8_t>> {
    ServerStats scratch;
    const auto response = server.handle_readonly(decode(query), scratch);
    if (!response) return std::nullopt;
    return encode(*response);
  };
}

TEST(AnswerCacheLoop, CacheOnRepliesByteIdenticalToCacheOff) {
  const auto server = make_server("one.test");
  const auto cache = cache_over(*server);

  UdpServeOptions off_options;
  off_options.threads = 1;
  UdpServerLoop off_loop{off_options, [&](unsigned) { return server_handler(*server); }};
  ASSERT_TRUE(off_loop.start());

  UdpServeOptions on_options;
  on_options.threads = 1;
  on_options.answer_cache = [cache]() { return cache; };
  UdpServerLoop on_loop{on_options, [&](unsigned) { return server_handler(*server); }};
  ASSERT_TRUE(on_loop.start());

  RawClient off_client{off_loop.endpoint()};
  RawClient on_client{on_loop.endpoint()};
  util::Rng rng{0xFACE};
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t host = static_cast<std::uint32_t>(rng.next() & 0xFFFF);
    const auto wire = encode(make_ptr_query(static_cast<std::uint16_t>(i + 1),
                                            addr((10u << 24) | (80u << 16) | host)));
    const auto off_reply = off_client.exchange(wire);
    const auto on_reply = on_client.exchange(wire);
    ASSERT_TRUE(off_reply.has_value());
    ASSERT_TRUE(on_reply.has_value());
    EXPECT_EQ(*off_reply, *on_reply) << "host offset " << host;
  }

  on_loop.stop();
  off_loop.stop();
  EXPECT_GT(on_loop.stats().cache_hits, 0u);
  EXPECT_EQ(on_loop.stats().cache_misses, 0u);
  EXPECT_EQ(off_loop.stats().cache_hits, 0u);
}

TEST(AnswerCacheLoop, EpochBumpSwapsTheWholeImageUnderLoad) {
  const auto server_a = make_server("one.test");
  const auto server_b = make_server("two.test");
  const auto cache_a = cache_over(*server_a);
  const auto cache_b = cache_over(*server_b);

  std::atomic<int> which{0};
  std::atomic<std::uint64_t> epoch{0};
  UdpServeOptions options;
  options.threads = 1;
  options.answer_cache = [&]() { return which.load() == 0 ? cache_a : cache_b; };
  options.answer_cache_epoch = &epoch;
  // Handler answers from whichever generation is current, like the serve
  // switchboard's slots do; with a full-coverage cache it only sees
  // non-cacheable shapes.
  UdpServerLoop loop{options, [&](unsigned) -> UdpServerLoop::WireHandler {
    return [&](std::span<const std::uint8_t> query)
               -> std::optional<std::vector<std::uint8_t>> {
      ServerStats scratch;
      const AuthoritativeServer& s = which.load() == 0 ? *server_a : *server_b;
      const auto response = s.handle_readonly(decode(query), scratch);
      if (!response) return std::nullopt;
      return encode(*response);
    };
  }};
  ASSERT_TRUE(loop.start());
  RawClient client{loop.endpoint()};

  const auto query_of = [&](std::uint16_t id) {
    return encode(make_ptr_query(id, net::Ipv4Addr::must_parse("10.80.1.9")));
  };
  const auto ptr_of = [&](const std::vector<std::uint8_t>& reply) {
    const Message m = decode(reply);
    EXPECT_EQ(m.answers.size(), 1u);
    return m.answers.empty()
               ? std::string{}
               : std::get<PtrRdata>(m.answers[0].rdata).ptrdname.to_string();
  };

  // A burst against generation A...
  for (std::uint16_t id = 1; id <= 32; ++id) {
    const auto reply = client.exchange(query_of(id));
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(ptr_of(*reply), "host-10-80-1-9.one.test");
  }
  // ...swap the generation and bump the epoch (publish order matters:
  // provider target first, then the bump the workers poll)...
  which.store(1);
  epoch.fetch_add(1, std::memory_order_release);
  // ...and the very next batch must answer from generation B.
  for (std::uint16_t id = 100; id <= 131; ++id) {
    const auto reply = client.exchange(query_of(id));
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(ptr_of(*reply), "host-10-80-1-9.two.test");
  }
  loop.stop();
  EXPECT_EQ(loop.stats().cache_hits, 64u);
}

TEST(AnswerCacheLoop, OversizeAnswerTruncatesThenEdnsRaisesTheLimit) {
  // A single owner with enough PTRs that the reply exceeds 512 bytes.
  AuthoritativeServer server;
  Zone& zone = server.add_zone(DnsName::must_parse("80.10.in-addr.arpa"), test_soa());
  const DnsName owner = DnsName::must_parse("1.1.80.10.in-addr.arpa");
  for (int i = 0; i < 24; ++i) {
    zone.add(make_ptr(owner, DnsName::must_parse(
                                 "very-long-hostname-number-" + std::to_string(i) +
                                 ".some-deep.subdomain.example-university.edu")));
  }
  const auto cache = cache_over(server);

  UdpServeOptions options;
  options.threads = 1;
  options.answer_cache = [cache]() { return cache; };
  UdpServerLoop loop{options, [&](unsigned) { return server_handler(server); }};
  ASSERT_TRUE(loop.start());
  RawClient client{loop.endpoint()};

  // Plain UDP: the >512B answer must come back TC=1 with empty sections.
  const auto plain = client.exchange(
      encode(make_ptr_query(1, net::Ipv4Addr::must_parse("10.80.1.1"))));
  ASSERT_TRUE(plain.has_value());
  EXPECT_LE(plain->size(), 512u);
  const Message tc = decode(*plain);
  EXPECT_TRUE(tc.flags.tc);
  EXPECT_TRUE(tc.answers.empty());

  // EDNS advertising 4096: the same answer now fits and arrives whole,
  // with the server's OPT appended.
  auto edns = encode(make_ptr_query(2, net::Ipv4Addr::must_parse("10.80.1.1")));
  edns.insert(edns.end(), {0x00, 0x00, 0x29, 0x10, 0x00, 0x00, 0x00, 0x00, 0x00,
                           0x00, 0x00});
  edns[11] = 1;
  const auto full = client.exchange(edns);
  ASSERT_TRUE(full.has_value());
  const Message whole = decode(*full);
  EXPECT_FALSE(whole.flags.tc);
  EXPECT_EQ(whole.answers.size(), 24u);
  ASSERT_EQ(whole.additional.size(), 1u);
  EXPECT_EQ(whole.additional[0].type(), kOpt);

  loop.stop();
  EXPECT_EQ(loop.stats().tc_responses, 1u);
  EXPECT_EQ(loop.stats().edns_queries, 1u);
}

}  // namespace
}  // namespace rdns::dns
