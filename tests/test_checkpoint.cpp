/// scan/checkpoint unit coverage: rdns.checkpoint.v1 round-trips losslessly,
/// malformed files are rejected with a message (never resumed from), and the
/// compatibility gate catches every way a checkpoint can belong to a
/// different run.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "scan/checkpoint.hpp"

namespace rdns {
namespace {

using scan::SweepCheckpoint;
using scan::SweepCheckpointConfig;

/// Deletes the file when the test exits, pass or fail.
struct TempFile {
  explicit TempFile(std::string p) : path(std::move(p)) {}
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

SweepCheckpoint sample_checkpoint() {
  SweepCheckpoint cp;
  cp.config.manifest.tool = "rdns_tool sweep";
  cp.config.manifest.version = "1.2.3";
  cp.config.manifest.seed = 42;
  cp.config.manifest.world_digest = 0xDEADBEEFCAFEF00DULL;
  cp.config.manifest.faults = "flaky-dns";
  cp.config.mode = "wire";
  cp.config.from = "2021-01-02";
  cp.config.to = "2021-02-06";
  cp.config.every_days = 1;
  cp.config.hour = 14;
  cp.progress.day = "2021-01-17";
  cp.progress.day_ordinal = 15;
  cp.progress.shards_done = 96;
  cp.progress.shards_total = 256;
  cp.progress.day_complete = false;
  cp.progress.csv_bytes = 1234567;
  cp.progress.rows = 54321;
  return cp;
}

TEST(Checkpoint, SaveLoadRoundTrip) {
  TempFile f{"test_checkpoint_roundtrip.jsonl"};
  const SweepCheckpoint cp = sample_checkpoint();
  std::string error;
  ASSERT_TRUE(scan::save_checkpoint(f.path, cp, &error)) << error;

  const auto loaded = scan::load_checkpoint(f.path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->config.mode, "wire");
  EXPECT_EQ(loaded->config.from, "2021-01-02");
  EXPECT_EQ(loaded->config.to, "2021-02-06");
  EXPECT_EQ(loaded->config.every_days, 1);
  EXPECT_EQ(loaded->config.hour, 14);
  EXPECT_EQ(loaded->config.manifest.seed, 42u);
  EXPECT_EQ(loaded->config.manifest.world_digest, 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(loaded->config.manifest.faults, "flaky-dns");
  EXPECT_EQ(loaded->config.manifest.version, "1.2.3");
  EXPECT_EQ(loaded->progress.day, "2021-01-17");
  EXPECT_EQ(loaded->progress.day_ordinal, 15u);
  EXPECT_EQ(loaded->progress.shards_done, 96u);
  EXPECT_EQ(loaded->progress.shards_total, 256u);
  EXPECT_FALSE(loaded->progress.day_complete);
  EXPECT_EQ(loaded->progress.csv_bytes, 1234567u);
  EXPECT_EQ(loaded->progress.rows, 54321u);

  // Saves are whole-file rewrites: a later save fully supersedes.
  SweepCheckpoint later = cp;
  later.progress.shards_done = 256;
  later.progress.day_complete = true;
  later.progress.csv_bytes = 2222222;
  ASSERT_TRUE(scan::save_checkpoint(f.path, later, &error)) << error;
  const auto reloaded = scan::load_checkpoint(f.path, &error);
  ASSERT_TRUE(reloaded.has_value()) << error;
  EXPECT_EQ(reloaded->progress.shards_done, 256u);
  EXPECT_TRUE(reloaded->progress.day_complete);
}

TEST(Checkpoint, MissingFileIsAnError) {
  std::string error;
  const auto loaded = scan::load_checkpoint("no_such_checkpoint.jsonl", &error);
  EXPECT_FALSE(loaded.has_value());
  EXPECT_FALSE(error.empty());
}

TEST(Checkpoint, MalformedFilesAreRejectedWithAMessage) {
  const struct {
    const char* label;
    const char* content;
  } cases[] = {
      {"empty", ""},
      {"not JSON", "this is not a checkpoint\n"},
      {"wrong schema", "{\"schema\":\"rdns.checkpoint.v99\"}\n{\"day\":\"2021-01-02\"}\n"},
      {"header only (progress line lost mid-write)",
       "{\"schema\":\"rdns.checkpoint.v1\",\"mode\":\"wire\",\"from\":\"2021-01-02\","
       "\"to\":\"2021-01-03\",\"every_days\":1,\"hour\":14,\"manifest\":{\"seed\":1}}\n"},
      {"progress not JSON",
       "{\"schema\":\"rdns.checkpoint.v1\",\"mode\":\"wire\",\"from\":\"2021-01-02\","
       "\"to\":\"2021-01-03\",\"every_days\":1,\"hour\":14,\"manifest\":{\"seed\":1}}\n"
       "garbage progress\n"},
      {"done exceeds total",
       "{\"schema\":\"rdns.checkpoint.v1\",\"mode\":\"wire\",\"from\":\"2021-01-02\","
       "\"to\":\"2021-01-03\",\"every_days\":1,\"hour\":14,\"manifest\":{\"seed\":1}}\n"
       "{\"day\":\"2021-01-02\",\"day_ordinal\":0,\"shards_done\":9,\"shards_total\":4,"
       "\"day_complete\":false,\"csv_bytes\":0,\"rows\":0}\n"},
  };
  for (const auto& c : cases) {
    TempFile f{"test_checkpoint_malformed.jsonl"};
    std::ofstream out{f.path, std::ios::binary};
    out << c.content;
    out.close();
    std::string error;
    const auto loaded = scan::load_checkpoint(f.path, &error);
    EXPECT_FALSE(loaded.has_value()) << c.label;
    EXPECT_FALSE(error.empty()) << c.label;
  }
}

TEST(Checkpoint, LastProgressLineWins) {
  // Crash-during-save leaves the previous progress line intact; an append
  // that completed adds a newer one. The newest non-empty line is truth.
  TempFile f{"test_checkpoint_lastline.jsonl"};
  const SweepCheckpoint cp = sample_checkpoint();
  std::string error;
  ASSERT_TRUE(scan::save_checkpoint(f.path, cp, &error)) << error;
  {
    std::ofstream out{f.path, std::ios::binary | std::ios::app};
    out << "{\"day\":\"2021-01-18\",\"day_ordinal\":16,\"shards_done\":8,"
           "\"shards_total\":256,\"day_complete\":false,\"csv_bytes\":1300000,"
           "\"rows\":60000}\n";
  }
  const auto loaded = scan::load_checkpoint(f.path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->progress.day, "2021-01-18");
  EXPECT_EQ(loaded->progress.csv_bytes, 1300000u);
}

TEST(Checkpoint, CompatibilityGate) {
  const SweepCheckpointConfig base = sample_checkpoint().config;
  std::string why;
  EXPECT_TRUE(scan::checkpoints_compatible(base, base, &why)) << why;

  // Thread count is deliberately NOT part of the contract: resuming on a
  // different pool size must be allowed (and produce identical bytes).
  SweepCheckpointConfig threads = base;
  threads.manifest.threads = 8;
  EXPECT_TRUE(scan::checkpoints_compatible(base, threads, &why)) << why;

  const struct {
    const char* label;
    void (*mutate)(SweepCheckpointConfig&);
  } mismatches[] = {
      {"mode", [](SweepCheckpointConfig& c) { c.mode = "bulk"; }},
      {"from", [](SweepCheckpointConfig& c) { c.from = "2021-01-03"; }},
      {"to", [](SweepCheckpointConfig& c) { c.to = "2021-03-01"; }},
      {"every_days", [](SweepCheckpointConfig& c) { c.every_days = 7; }},
      {"hour", [](SweepCheckpointConfig& c) { c.hour = 9; }},
      {"seed", [](SweepCheckpointConfig& c) { c.manifest.seed = 43; }},
      {"world", [](SweepCheckpointConfig& c) { c.manifest.world_digest = 1; }},
      {"faults", [](SweepCheckpointConfig& c) { c.manifest.faults = "none"; }},
  };
  for (const auto& m : mismatches) {
    SweepCheckpointConfig other = base;
    m.mutate(other);
    why.clear();
    EXPECT_FALSE(scan::checkpoints_compatible(base, other, &why)) << m.label;
    EXPECT_FALSE(why.empty()) << m.label;
  }
}

}  // namespace
}  // namespace rdns
