/// Tests for the Section 4.1 dynamicity heuristic on hand-crafted snapshot
/// streams, where ground truth is exact.

#include "core/dynamicity.hpp"

#include <gtest/gtest.h>

namespace rdns::core {
namespace {

using util::CivilDate;

/// Feed `days` sweeps; `counts_fn(day)` gives the number of addresses with
/// a PTR in the block 10.0.0.0/24 that day.
void feed_block(DynamicityDetector& detector, int days,
                const std::function<int(int)>& counts_fn,
                std::uint32_t base = 0x0A000000) {
  for (int d = 0; d < days; ++d) {
    const CivilDate date = util::add_days(CivilDate{2021, 1, 1}, d);
    const int count = counts_fn(d);
    for (int i = 0; i < count; ++i) {
      detector.on_row(date, net::Ipv4Addr{base + static_cast<std::uint32_t>(i) + 1},
                      dns::DnsName::must_parse("h.x.edu"));
    }
    detector.on_sweep_end(date);
  }
}

TEST(Dynamicity, StableBlockIsNotDynamic) {
  DynamicityDetector detector;
  feed_block(detector, 30, [](int) { return 50; });
  const auto result = detector.analyze();
  ASSERT_EQ(result.blocks.size(), 1u);
  EXPECT_FALSE(result.blocks[0].dynamic);
  EXPECT_EQ(result.blocks[0].max_daily, 50u);
  EXPECT_EQ(result.blocks[0].days_over_threshold, 0);
  EXPECT_EQ(result.dynamic_count, 0u);
}

TEST(Dynamicity, OscillatingBlockIsDynamic) {
  DynamicityDetector detector;
  // Weekday/weekend style oscillation: 50 vs 10 -> |diff| = 40, max = 50,
  // change 80% on every transition.
  feed_block(detector, 30, [](int d) { return (d % 7 < 5) ? 50 : 10; });
  const auto result = detector.analyze();
  ASSERT_EQ(result.blocks.size(), 1u);
  EXPECT_TRUE(result.blocks[0].dynamic);
  EXPECT_GE(result.blocks[0].days_over_threshold, 7);
}

TEST(Dynamicity, QuietBlockDiscardedByStep1) {
  DynamicityDetector detector;
  // Never more than 10 addresses -> step 1 discards regardless of churn.
  feed_block(detector, 30, [](int d) { return d % 2 == 0 ? 10 : 1; });
  const auto result = detector.analyze();
  EXPECT_TRUE(result.blocks.empty());
  EXPECT_EQ(result.total_slash24_seen, 1u);
}

TEST(Dynamicity, ExactlyElevenAddressesPassesStep1) {
  DynamicityDetector detector;
  feed_block(detector, 30, [](int d) { return d % 2 == 0 ? 11 : 1; });
  const auto result = detector.analyze();
  ASSERT_EQ(result.blocks.size(), 1u);
  EXPECT_TRUE(result.blocks[0].dynamic);
}

TEST(Dynamicity, ThresholdYDaysBoundary) {
  DynamicityDetector detector;
  // Exactly 6 change days: one short of the default Y = 7.
  feed_block(detector, 30, [](int d) { return (d >= 1 && d <= 6) ? (d % 2 ? 60 : 20) : 20; });
  DynamicityConfig config;
  auto result = detector.analyze(config);
  ASSERT_EQ(result.blocks.size(), 1u);
  EXPECT_EQ(result.blocks[0].days_over_threshold, 6);
  EXPECT_FALSE(result.blocks[0].dynamic);
  config.min_days_over = 6;
  result = detector.analyze(config);
  EXPECT_TRUE(result.blocks[0].dynamic);
}

TEST(Dynamicity, ChangePercentageUsesPeriodMax) {
  DynamicityDetector detector;
  // Daily wobble of 5 around 50 with a single spike to 250: the spike
  // raises the max so the wobble (5/250 = 2%) stays under X = 10%.
  feed_block(detector, 30, [](int d) { return d == 15 ? 250 : (d % 2 ? 55 : 50); });
  const auto result = detector.analyze();
  ASSERT_EQ(result.blocks.size(), 1u);
  // Only the two spike transitions cross the threshold.
  EXPECT_EQ(result.blocks[0].days_over_threshold, 2);
  EXPECT_FALSE(result.blocks[0].dynamic);
}

TEST(Dynamicity, BlockAppearingMidPeriodIsPadded) {
  DynamicityDetector detector;
  // Block absent for the first 10 days, then oscillates.
  feed_block(detector, 10, [](int) { return 0; });
  feed_block(detector, 20, [](int d) { return d % 2 ? 40 : 5; });
  const auto result = detector.analyze();
  ASSERT_EQ(result.blocks.size(), 1u);
  EXPECT_TRUE(result.blocks[0].dynamic);
  EXPECT_EQ(detector.days_ingested(), 30u);
}

TEST(Dynamicity, SeparatesBlocks) {
  DynamicityDetector detector;
  for (int d = 0; d < 20; ++d) {
    const CivilDate date = util::add_days(CivilDate{2021, 1, 1}, d);
    // Block A oscillates; block B stays flat.
    const int a_count = d % 2 ? 40 : 5;
    for (int i = 0; i < a_count; ++i) {
      detector.on_row(date, net::Ipv4Addr{0x0A000001u + static_cast<std::uint32_t>(i)},
                      dns::DnsName::must_parse("h.x.edu"));
    }
    for (int i = 0; i < 30; ++i) {
      detector.on_row(date, net::Ipv4Addr{0x0A000101u + static_cast<std::uint32_t>(i)},
                      dns::DnsName::must_parse("h.x.edu"));
    }
    detector.on_sweep_end(date);
  }
  const auto result = detector.analyze();
  ASSERT_EQ(result.blocks.size(), 2u);
  EXPECT_EQ(result.dynamic_count, 1u);
  EXPECT_EQ(result.dynamic_blocks()[0].to_string(), "10.0.0.0/24");
}

TEST(Dynamicity, DuplicateAddressesCountOnce) {
  DynamicityDetector detector;
  const CivilDate date{2021, 1, 1};
  for (int i = 0; i < 5; ++i) {
    detector.on_row(date, net::Ipv4Addr{0x0A000001u}, dns::DnsName::must_parse("h.x.edu"));
  }
  detector.on_sweep_end(date);
  const auto result = detector.analyze(DynamicityConfig{10.0, 1, 0});
  ASSERT_EQ(result.blocks.size(), 1u);
  EXPECT_EQ(result.blocks[0].max_daily, 1u);
}

/// Parameterized threshold sweep: higher X admits fewer dynamic blocks
/// (monotonicity property of step 3).
class ThresholdSweep : public ::testing::TestWithParam<double> {};

TEST_P(ThresholdSweep, MonotoneInX) {
  DynamicityDetector detector;
  feed_block(detector, 60, [](int d) { return 30 + (d % 3) * 10; });
  DynamicityConfig lo_config;
  lo_config.change_threshold_pct = GetParam();
  DynamicityConfig hi_config = lo_config;
  hi_config.change_threshold_pct = GetParam() + 20.0;
  const auto lo = detector.analyze(lo_config);
  const auto hi = detector.analyze(hi_config);
  ASSERT_EQ(lo.blocks.size(), 1u);
  EXPECT_GE(lo.blocks[0].days_over_threshold, hi.blocks[0].days_over_threshold);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ThresholdSweep, ::testing::Values(1.0, 5.0, 10.0, 25.0));

TEST(Rollup, FractionsPerAnnouncedPrefix) {
  const std::vector<net::Prefix> dynamic = {
      net::Prefix::must_parse("10.0.0.0/24"),
      net::Prefix::must_parse("10.0.1.0/24"),
      net::Prefix::must_parse("10.1.0.0/24"),
      net::Prefix::must_parse("192.168.0.0/24"),  // not covered by any announcement
  };
  const std::vector<net::Prefix> announced = {
      net::Prefix::must_parse("10.0.0.0/16"),
      net::Prefix::must_parse("10.1.0.0/16"),
  };
  const auto rollup = rollup_to_announced(dynamic, announced);
  ASSERT_EQ(rollup.size(), 2u);
  EXPECT_EQ(rollup[0].dynamic_slash24s, 2u);
  EXPECT_EQ(rollup[0].total_slash24s, 256u);
  EXPECT_NEAR(rollup[0].fraction(), 2.0 / 256.0, 1e-12);
  EXPECT_EQ(rollup[1].dynamic_slash24s, 1u);
}

TEST(Rollup, MostSpecificAnnouncementWins) {
  const std::vector<net::Prefix> dynamic = {net::Prefix::must_parse("10.0.0.0/24")};
  const std::vector<net::Prefix> announced = {
      net::Prefix::must_parse("10.0.0.0/8"),
      net::Prefix::must_parse("10.0.0.0/20"),
  };
  const auto rollup = rollup_to_announced(dynamic, announced);
  ASSERT_EQ(rollup.size(), 2u);
  // Sorted: /8 before /20. The /20 (more specific) got the block.
  EXPECT_EQ(rollup[0].announced.length(), 8);
  EXPECT_EQ(rollup[0].dynamic_slash24s, 0u);
  EXPECT_EQ(rollup[1].announced.length(), 20);
  EXPECT_EQ(rollup[1].dynamic_slash24s, 1u);
}

}  // namespace
}  // namespace rdns::core
