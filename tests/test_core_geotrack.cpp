/// Tests for building-level geotemporal tracking (§8): the building map,
/// trace construction from groups, and the end-to-end roaming integration
/// (students changing buildings produce multi-building traces).

#include "core/geotrack.hpp"

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "scan/campaign.hpp"

namespace rdns::core {
namespace {

using util::CivilDate;
using util::kHour;

TEST(BuildingMap, MostSpecificWins) {
  BuildingMap map;
  map.add(net::Prefix::must_parse("10.10.0.0/16"), "campus");
  map.add(net::Prefix::must_parse("10.10.140.0/23"), "library");
  EXPECT_EQ(map.building_of(net::Ipv4Addr::must_parse("10.10.140.7")), "library");
  EXPECT_EQ(map.building_of(net::Ipv4Addr::must_parse("10.10.1.1")), "campus");
  EXPECT_FALSE(map.building_of(net::Ipv4Addr::must_parse("10.99.0.1")).has_value());
}

scan::GroupSummary visit(const char* ip, const char* host, int day, int hour, int hours) {
  scan::GroupSummary g;
  g.address = net::Ipv4Addr::must_parse(ip);
  g.network = "Academic-A";
  g.started = util::to_sim_time(CivilDate{2021, 11, day}) + hour * kHour;
  g.last_icmp_ok = g.started + hours * kHour;
  g.offline_detected = g.last_icmp_ok + 300;
  g.ptr_observed_gone = g.offline_detected + 600;
  g.first_ptr = std::string{host} + ".wifi.bayfield-university.edu";
  g.last_ptr = g.first_ptr;
  g.spot_rdns_ok = true;
  g.closed = true;
  g.reverted = true;
  g.reliable = true;
  g.icmp_ok = 3;
  return g;
}

TEST(Traces, OrderedVisitsWithTransitions) {
  BuildingMap map;
  map.add(net::Prefix::must_parse("10.10.136.0/22"), "sci-building");
  map.add(net::Prefix::must_parse("10.10.140.0/23"), "library");
  map.add(net::Prefix::must_parse("10.10.142.0/23"), "lecture-halls");

  std::vector<scan::GroupSummary> groups;
  groups.push_back(visit("10.10.140.5", "emmas-iphone", 1, 13, 2));   // library, later
  groups.push_back(visit("10.10.136.9", "emmas-iphone", 1, 9, 2));    // sci, first
  groups.push_back(visit("10.10.142.3", "emmas-iphone", 2, 9, 1));    // lecture, next day
  groups.push_back(visit("10.10.136.9", "liams-mbp", 1, 9, 2));       // other person
  groups.push_back(visit("10.99.0.1", "emmas-ipad", 1, 9, 2));        // off-map

  const auto traces = build_traces(groups, map, "emma");
  ASSERT_EQ(traces.size(), 1u);  // emmas-ipad dropped (unknown building)
  const auto& trace = traces[0];
  EXPECT_EQ(trace.hostname, "emmas-iphone");
  ASSERT_EQ(trace.visits.size(), 3u);
  EXPECT_EQ(trace.visits[0].building, "sci-building");   // time-sorted
  EXPECT_EQ(trace.visits[1].building, "library");
  EXPECT_EQ(trace.visits[2].building, "lecture-halls");
  EXPECT_EQ(trace.transitions(), 2u);
  EXPECT_EQ(trace.distinct_buildings(), 3u);
}

TEST(Traces, EmptyWhenNameAbsent) {
  BuildingMap map;
  map.add(net::Prefix::must_parse("10.10.136.0/22"), "sci");
  EXPECT_TRUE(build_traces({}, map, "brian").empty());
}

/// End-to-end: roaming students on Academic-A produce multi-building traces
/// observable from the outside.
TEST(Roaming, StudentsVisitMultipleBuildings) {
  WorldScale scale;
  scale.population = 0.2;
  auto world = make_paper_world(/*seed=*/55, scale);
  const CivilDate from{2021, 11, 1};
  const CivilDate to{2021, 11, 5};
  world->start(util::add_days(from, -1), util::add_days(to, 1));

  const sim::Organization* campus = world->org_by_name("Academic-A");
  ASSERT_TRUE(campus->spec().students_roam);
  scan::SupplementalCampaign campaign{*world,
                                      {{"Academic-A", campus->spec().measurement_targets}},
                                      scan::CampaignWindow{from, to}};
  campaign.run();

  BuildingMap buildings;
  for (const auto& segment : campus->spec().segments) {
    buildings.add(segment.prefix, segment.label);
  }

  // Across all observed people, someone must have been seen in more than
  // one building over a school week.
  std::size_t multi_building_traces = 0;
  std::size_t total_traces = 0;
  for (const auto& name : top_given_names()) {
    for (const auto& trace : build_traces(campaign.engine().groups(), buildings, name)) {
      ++total_traces;
      multi_building_traces += trace.distinct_buildings() > 1;
    }
  }
  EXPECT_GT(total_traces, 5u);
  EXPECT_GT(multi_building_traces, 0u);
}

}  // namespace
}  // namespace rdns::core
