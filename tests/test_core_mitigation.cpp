/// Tests for the operator-facing mitigation tooling (Section 8): the leak
/// auditor severity model and the policy assessments.

#include "core/mitigation.hpp"

#include <gtest/gtest.h>

#include "sim/world.hpp"

namespace rdns::core {
namespace {

TEST(StreamAuditor, SeveritiesByContent) {
  StreamAuditor auditor;
  auditor.inspect(net::Ipv4Addr::must_parse("10.0.0.1"), "brians-iphone.wifi.x.edu");
  auditor.inspect(net::Ipv4Addr::must_parse("10.0.0.2"), "laptop-4f2k.wifi.x.edu");
  auditor.inspect(net::Ipv4Addr::must_parse("10.0.0.3"), "emmas-box.wifi.x.edu");
  auditor.inspect(net::Ipv4Addr::must_parse("10.0.0.4"), "host-10-0-0-4.dyn.x.edu");
  const auto& report = auditor.report();
  EXPECT_EQ(report.records_audited, 4u);
  ASSERT_EQ(report.findings.size(), 3u);
  EXPECT_EQ(report.findings[0].severity, LeakSeverity::NameAndDevice);
  EXPECT_EQ(report.findings[1].severity, LeakSeverity::DeviceModel);
  EXPECT_EQ(report.findings[2].severity, LeakSeverity::OwnerName);
  EXPECT_EQ(report.owner_name_leaks, 2u);
  EXPECT_EQ(report.device_model_leaks, 2u);
  EXPECT_FALSE(report.clean());
}

TEST(StreamAuditor, RouterRecordsAreNotFindings) {
  StreamAuditor auditor;
  auditor.inspect(net::Ipv4Addr::must_parse("10.0.0.1"), "et-0-0-1.core1.jackson.isp.net");
  EXPECT_TRUE(auditor.report().clean());
  EXPECT_EQ(auditor.report().records_audited, 1u);
}

TEST(StreamAuditor, SeverityStrings) {
  EXPECT_STREQ(to_string(LeakSeverity::OwnerName), "owner-name");
  EXPECT_STREQ(to_string(LeakSeverity::NameAndDevice), "owner-name+device-model");
}

sim::OrgSpec org_with_policy(dhcp::DdnsPolicy policy) {
  sim::OrgSpec o;
  o.name = "audit-me";
  o.type = sim::OrgType::Academic;
  o.suffix = dns::DnsName::must_parse("audit.edu");
  o.announced = {net::Prefix::must_parse("10.95.0.0/16")};
  sim::SegmentSpec seg;
  seg.label = "wifi";
  seg.prefix = net::Prefix::must_parse("10.95.64.0/24");
  seg.schedule = sim::ScheduleKind::OfficeWorker;
  seg.user_count = 30;
  seg.ddns_policy = policy;
  seg.named_device_frac = 1.0;
  o.segments = {seg};
  o.seed = 31337;
  return o;
}

TEST(AuditOrganization, CarryOverOrgHasFindingsHashedOrgIsClean) {
  using util::CivilDate;
  sim::World world;
  sim::Organization& leaky = world.add_org(org_with_policy(dhcp::DdnsPolicy::CarryOverClientId));
  sim::OrgSpec hashed_spec = org_with_policy(dhcp::DdnsPolicy::HashedClientId);
  hashed_spec.name = "hashed";
  hashed_spec.announced = {net::Prefix::must_parse("10.96.0.0/16")};
  hashed_spec.segments[0].prefix = net::Prefix::must_parse("10.96.64.0/24");
  sim::Organization& hashed = world.add_org(std::move(hashed_spec));
  world.start(CivilDate{2021, 11, 1}, CivilDate{2021, 11, 3});
  world.run_until(util::to_sim_time(CivilDate{2021, 11, 2}) + 12 * util::kHour);

  const auto leaky_report = audit_organization(leaky);
  EXPECT_GT(leaky_report.records_audited, 0u);
  EXPECT_GT(leaky_report.owner_name_leaks + leaky_report.device_model_leaks, 0u);

  const auto hashed_report = audit_organization(hashed);
  EXPECT_GT(hashed_report.records_audited, 0u);
  EXPECT_EQ(hashed_report.owner_name_leaks, 0u);
  EXPECT_EQ(hashed_report.device_model_leaks, 0u);
}

TEST(PolicyAssessment, MatchesSection8Discussion) {
  const auto carry = assess_policy(dhcp::DdnsPolicy::CarryOverClientId);
  EXPECT_TRUE(carry.leaks_identifiers);
  EXPECT_TRUE(carry.exposes_dynamics);

  const auto hashed = assess_policy(dhcp::DdnsPolicy::HashedClientId);
  EXPECT_FALSE(hashed.leaks_identifiers);
  EXPECT_TRUE(hashed.exposes_dynamics);  // churn still visible

  const auto generic = assess_policy(dhcp::DdnsPolicy::StaticGeneric);
  EXPECT_FALSE(generic.leaks_identifiers);
  EXPECT_FALSE(generic.exposes_dynamics);

  const auto none = assess_policy(dhcp::DdnsPolicy::None);
  EXPECT_FALSE(none.leaks_identifiers);
  EXPECT_FALSE(none.exposes_dynamics);
  EXPECT_FALSE(none.advice.empty());
}

}  // namespace
}  // namespace rdns::core
