/// Tests for the Section 5 machinery: term extraction, router-level
/// filtering, given-name matching (with the possessive rule), per-suffix
/// selection thresholds, the city-name guard, type classification and
/// device-term co-occurrence.

#include <gtest/gtest.h>

#include "core/classify.hpp"
#include "core/cooccur.hpp"
#include "core/names.hpp"
#include "core/terms.hpp"

namespace rdns::core {
namespace {

using util::CivilDate;

void add(PtrCorpus& corpus, const char* ip, const char* hostname) {
  corpus.on_row(CivilDate{2021, 1, 1}, net::Ipv4Addr::must_parse(ip),
                dns::DnsName::must_parse(hostname));
}

TEST(Terms, ExtractionMatchesRegexSemantics) {
  EXPECT_EQ(extract_terms("brians-iphone-12.wifi.uni.edu"),
            (std::vector<std::string>{"brians", "iphone", "wifi", "uni", "edu"}));
}

TEST(Terms, RouterLevelDetection) {
  EXPECT_TRUE(looks_router_level(extract_terms("et-0-0-1.core1.jackson.someisp.net")));
  EXPECT_TRUE(looks_router_level(extract_terms("north-gw.uni.edu")));
  EXPECT_FALSE(looks_router_level(extract_terms("brians-iphone.wifi.uni.edu")));
}

TEST(Names, Top50ListMatchesPaperFigure2) {
  const auto& names = top_given_names();
  EXPECT_EQ(names.size(), 50u);
  EXPECT_EQ(names.front(), "jacob");
  // Spot-check names from the Fig. 2 x-axis.
  for (const char* n : {"michael", "emma", "brandon", "jackson", "madison", "brian"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), n), names.end()) << n;
  }
}

TEST(Names, MatchingIncludesPossessive) {
  EXPECT_EQ(match_given_names({"brians", "iphone"}), (std::vector<std::string>{"brian"}));
  EXPECT_EQ(match_given_names({"brian"}), (std::vector<std::string>{"brian"}));
  EXPECT_EQ(match_given_names({"james"}), (std::vector<std::string>{"james"}));  // not jame+s
  EXPECT_TRUE(match_given_names({"xyz", "host"}).empty());
}

TEST(Names, ShortTermsNeverMatch) {
  // "we considered terms of three or more characters".
  EXPECT_TRUE(match_given_names({"al", "jo"}).empty());
}

TEST(Names, CityTermMatchesAsName) {
  // jackson the city is indistinguishable from jackson the name at the
  // term level — the guard lives at the suffix-statistics level.
  EXPECT_EQ(match_given_names({"jackson"}), (std::vector<std::string>{"jackson"}));
}

PtrCorpus leaky_corpus(int unique_names, const char* suffix = "leaky.edu") {
  PtrCorpus corpus;
  const auto& names = top_given_names();
  for (int i = 0; i < unique_names; ++i) {
    const std::string host = names[static_cast<std::size_t>(i)] + "s-iphone." +
                             std::string{"wifi."} + suffix;
    corpus.on_row(CivilDate{2021, 1, 1},
                  net::Ipv4Addr{0x0A000001u + static_cast<std::uint32_t>(i)},
                  dns::DnsName::must_parse(host));
  }
  return corpus;
}

TEST(Leaks, SelectsSuffixAboveThresholds) {
  const PtrCorpus corpus = leaky_corpus(50);
  LeakConfig config;  // defaults: 50 unique names, ratio 0.1
  const auto result = identify_leaking_networks(corpus, config);
  ASSERT_EQ(result.identified.size(), 1u);
  EXPECT_EQ(result.identified[0], "leaky.edu");
  const auto& stats = result.suffixes.at("leaky.edu");
  EXPECT_EQ(stats.unique_names.size(), 50u);
  EXPECT_EQ(stats.records, 50u);
  EXPECT_DOUBLE_EQ(stats.ratio(), 1.0);
}

TEST(Leaks, BelowUniqueNameThresholdRejected) {
  const PtrCorpus corpus = leaky_corpus(49);
  const auto result = identify_leaking_networks(corpus, LeakConfig{});
  EXPECT_TRUE(result.identified.empty());
  EXPECT_FALSE(result.suffixes.at("leaky.edu").identified);
}

TEST(Leaks, RatioThresholdRejectsDilutedSuffixes) {
  PtrCorpus corpus = leaky_corpus(50);
  // Dilute with 600 name-bearing but repetitive records: 50 names over 650
  // records -> ratio ~0.077 < 0.1.
  for (int i = 0; i < 600; ++i) {
    add(corpus, ("10.0.2." + std::to_string(i % 250 + 1)).c_str(),
        ("jacobs-ipad-" + std::to_string(i) + ".wifi.leaky.edu").c_str());
  }
  const auto result = identify_leaking_networks(corpus, LeakConfig{});
  EXPECT_TRUE(result.identified.empty());
}

TEST(Leaks, CityNameGuardRejectsRouterNetworks) {
  // A transit network where the only "names" are city labels in router
  // hostnames that slip past the generic-term filter: few UNIQUE name
  // matches -> rejected by step 5 without any city enumeration.
  PtrCorpus corpus;
  for (int i = 0; i < 300; ++i) {
    add(corpus, ("10.9.0." + std::to_string(i % 250 + 1)).c_str(),
        ("po" + std::to_string(i) + ".jackson.citydecoy.org").c_str());
  }
  const auto result = identify_leaking_networks(corpus, LeakConfig{});
  EXPECT_TRUE(result.identified.empty());
  const auto& stats = result.suffixes.at("citydecoy.org");
  EXPECT_EQ(stats.unique_names.size(), 1u);  // only "jackson"
}

TEST(Leaks, RouterTermRecordsExcludedEntirely) {
  PtrCorpus corpus;
  // Router-level records with a real given name embedded are still dropped
  // by step 2 (the generic-term filter).
  for (int i = 0; i < 60; ++i) {
    add(corpus, ("10.9.1." + std::to_string(i + 1)).c_str(),
        (top_given_names()[static_cast<std::size_t>(i % 50)] + "-core.uplink.isp.net").c_str());
  }
  const auto result = identify_leaking_networks(corpus, LeakConfig{});
  EXPECT_TRUE(result.suffixes.empty());
}

TEST(Leaks, Figure2CountsAllVersusFiltered) {
  PtrCorpus corpus = leaky_corpus(50, "big.edu");
  // A small network below thresholds also contributes matches.
  add(corpus, "10.7.0.1", "brians-iphone.small-shop.com");
  const auto result = identify_leaking_networks(corpus, LeakConfig{});
  ASSERT_EQ(result.identified.size(), 1u);
  EXPECT_EQ(result.matches_per_name.at("brian"), 2u);           // both networks
  EXPECT_EQ(result.filtered_matches_per_name.at("brian"), 1u);  // identified only
}

TEST(Leaks, CountNameMatchesOverCorpus) {
  PtrCorpus corpus;
  add(corpus, "10.0.0.1", "brians-iphone.x.edu");
  add(corpus, "10.0.0.2", "emmas-ipad.x.edu");
  add(corpus, "10.0.0.3", "host-3.x.edu");
  const auto counts = count_name_matches(corpus);
  EXPECT_EQ(counts.at("brian"), 1u);
  EXPECT_EQ(counts.at("emma"), 1u);
  EXPECT_EQ(counts.size(), 2u);
}

TEST(Corpus, RestrictionFiltersRows) {
  PtrCorpus corpus;
  corpus.restrict_to({net::Prefix::must_parse("10.0.0.0/24")});
  add(corpus, "10.0.0.1", "in.x.edu");
  add(corpus, "10.0.1.1", "out.x.edu");
  EXPECT_EQ(corpus.distinct_hostnames(), 1u);
  EXPECT_EQ(corpus.total_observations(), 1u);
}

TEST(Corpus, AggregatesDuplicates) {
  PtrCorpus corpus;
  add(corpus, "10.0.0.1", "brians-iphone.x.edu");
  add(corpus, "10.0.0.2", "Brians-iPhone.x.edu");  // same canonical name
  EXPECT_EQ(corpus.distinct_hostnames(), 1u);
  EXPECT_EQ(corpus.total_observations(), 2u);
  EXPECT_EQ(corpus.entries().begin()->second.observations, 2u);
}

TEST(Corpus, TermFrequencies) {
  PtrCorpus corpus;
  add(corpus, "10.0.0.1", "brians-iphone.x.edu");
  add(corpus, "10.0.0.2", "emmas-iphone.x.edu");
  const auto freq = corpus.term_frequencies();
  EXPECT_EQ(freq.count("iphone"), 2);
  EXPECT_EQ(freq.count("brians"), 1);
}

struct ClassifyCase {
  const char* suffix;
  NetworkType expected;
};

class Classify : public ::testing::TestWithParam<ClassifyCase> {};

TEST_P(Classify, AssignsType) {
  EXPECT_EQ(classify_suffix(GetParam().suffix), GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, Classify,
    ::testing::Values(ClassifyCase{"uni.edu", NetworkType::Academic},
                      ClassifyCase{"college.ac.uk", NetworkType::Academic},
                      ClassifyCase{"cedar-university.nl", NetworkType::Academic},
                      ClassifyCase{"agency.gov", NetworkType::Government},
                      ClassifyCase{"lakeshore-broadband.net", NetworkType::Isp},
                      ClassifyCase{"some-telecom.net", NetworkType::Isp},
                      ClassifyCase{"mega-corp.com", NetworkType::Enterprise},
                      ClassifyCase{"widget-systems.com", NetworkType::Enterprise},
                      ClassifyCase{"mystery.xyz", NetworkType::Other}));

TEST(Classify, BreakdownPercentages) {
  const auto breakdown = classify_all({"a.edu", "b.edu", "c-broadband.net", "d-corp.com"});
  EXPECT_EQ(breakdown.total, 4u);
  EXPECT_DOUBLE_EQ(breakdown.percent(NetworkType::Academic), 50.0);
  EXPECT_DOUBLE_EQ(breakdown.percent(NetworkType::Isp), 25.0);
  EXPECT_DOUBLE_EQ(breakdown.percent(NetworkType::Government), 0.0);
}

TEST(Cooccur, DeviceTermListMatchesFig3) {
  const auto& terms = device_terms();
  EXPECT_EQ(terms.size(), 14u);
  EXPECT_EQ(terms.front(), "ipad");
  EXPECT_EQ(terms.back(), "roku");
}

TEST(Cooccur, CountsTermsAlongsideNamesOnly) {
  PtrCorpus corpus;
  add(corpus, "10.0.0.1", "brians-iphone.x.edu");   // name + device term
  add(corpus, "10.0.0.2", "iphone-lab-3.x.edu");    // device term, no name
  add(corpus, "10.0.0.3", "emmas-mbp.y.com");       // identified? depends on list
  const auto result = count_device_terms(corpus, {"x.edu"});
  EXPECT_EQ(result.all_matches.at("iphone"), 1u);   // only the named one
  EXPECT_EQ(result.all_matches.at("mbp"), 1u);
  EXPECT_EQ(result.filtered_matches.at("iphone"), 1u);
  EXPECT_EQ(result.filtered_matches.at("mbp"), 0u);  // y.com not identified
  EXPECT_EQ(result.total_all, 2u);
  EXPECT_EQ(result.total_filtered, 1u);
}

TEST(Cooccur, FrequentTermDiscovery) {
  PtrCorpus corpus;
  for (int i = 0; i < 120; ++i) {
    add(corpus, ("10.0.0." + std::to_string(i % 250 + 1)).c_str(),
        ("brians-iphone-" + std::to_string(i) + ".x.edu").c_str());
  }
  const auto frequent = frequent_cooccurring_terms(corpus, 100);
  // "iphone" (and the suffix terms) appear >= 100 times; "brians" is the
  // matched name itself and must be excluded.
  bool found_iphone = false;
  for (const auto& [term, count] : frequent) {
    EXPECT_NE(term, "brians");
    EXPECT_NE(term, "brian");
    if (term == "iphone") found_iphone = true;
  }
  EXPECT_TRUE(found_iphone);
}

}  // namespace
}  // namespace rdns::core
