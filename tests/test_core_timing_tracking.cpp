/// Tests for the Section 6/7 analyses over synthetic group summaries:
/// the Table 5 funnel, Fig. 7 lingering distributions, Fig. 8 presence
/// grids (incl. the Cyber Monday first-appearance), and the Fig. 11 heist
/// profile.

#include <gtest/gtest.h>

#include <cmath>

#include "core/heist.hpp"
#include "core/timing.hpp"
#include "core/tracking.hpp"

namespace rdns::core {
namespace {

using scan::GroupSummary;
using util::CivilDate;
using util::kHour;
using util::kMinute;

GroupSummary group(const char* ip, const char* network, util::SimTime start,
                   double linger_minutes, bool ok = true, bool reliable = true) {
  GroupSummary g;
  g.address = net::Ipv4Addr::must_parse(ip);
  g.network = network;
  g.started = start;
  g.last_icmp_ok = start + 2 * kHour;
  g.offline_detected = g.last_icmp_ok + 5 * kMinute;
  g.first_ptr = "brians-iphone.wifi.x.edu";
  g.last_ptr = g.first_ptr;
  g.icmp_ok = 10;
  g.spot_rdns_ok = ok;
  g.closed = ok;
  if (ok) {
    g.ptr_observed_gone = g.last_icmp_ok + static_cast<util::SimTime>(linger_minutes * 60);
    g.reverted = true;
    g.reliable = reliable;
  }
  return g;
}

TEST(Funnel, CountsEachStage) {
  std::vector<GroupSummary> groups;
  groups.push_back(group("10.0.0.1", "A", 0, 5));                  // fully usable
  groups.push_back(group("10.0.0.2", "A", 0, 60, true, false));    // unreliable
  groups.push_back(group("10.0.0.3", "A", 0, 0, /*ok=*/false));    // incomplete
  GroupSummary never_gone = group("10.0.0.4", "A", 0, 5);
  never_gone.ptr_observed_gone = 0;
  never_gone.reverted = false;
  groups.push_back(never_gone);  // successful() is false without a terminal observation

  const auto funnel = build_funnel(groups);
  EXPECT_EQ(funnel.all_groups, 4u);
  EXPECT_EQ(funnel.successful, 2u);
  EXPECT_EQ(funnel.reverted, 2u);
  EXPECT_EQ(funnel.reliable, 1u);
  EXPECT_DOUBLE_EQ(funnel.fraction_reverted(), 1.0);
  EXPECT_DOUBLE_EQ(funnel.fraction_reliable(), 0.5);

  const auto usable = usable_groups(groups);
  ASSERT_EQ(usable.size(), 1u);
  EXPECT_EQ(usable[0]->address.to_string(), "10.0.0.1");
}

TEST(Funnel, EmptyInput) {
  const auto funnel = build_funnel({});
  EXPECT_EQ(funnel.all_groups, 0u);
  EXPECT_DOUBLE_EQ(funnel.fraction_successful(), 0.0);
}

TEST(Linger, HistogramPeaks) {
  std::vector<GroupSummary> groups;
  // A 5-minute release peak and a 60-minute expiry peak (Fig. 7a shape).
  for (int i = 0; i < 30; ++i) groups.push_back(group("10.0.0.1", "A", i, 5.0));
  for (int i = 0; i < 50; ++i) groups.push_back(group("10.0.0.2", "A", i, 60.0));
  const auto usable = usable_groups(groups);
  const auto histogram = linger_histogram(usable, 180.0, 5.0);
  ASSERT_TRUE(histogram.mode_bin().has_value());
  EXPECT_EQ(*histogram.mode_bin(), 12u);  // [60, 65)
  EXPECT_EQ(histogram.bin(1), 30);        // [5, 10)
  EXPECT_EQ(histogram.total(), 80);
}

TEST(Linger, PerNetworkCdfsSeparate) {
  std::vector<GroupSummary> groups;
  for (int i = 0; i < 20; ++i) groups.push_back(group("10.0.0.1", "Academic-A", i, 10.0));
  for (int i = 0; i < 20; ++i) groups.push_back(group("10.1.0.1", "Academic-C", i, 110.0));
  const auto cdfs = linger_cdfs(usable_groups(groups));
  ASSERT_EQ(cdfs.size(), 2u);
  EXPECT_DOUBLE_EQ(cdfs.at("Academic-A").at(60.0), 1.0);
  EXPECT_DOUBLE_EQ(cdfs.at("Academic-C").at(60.0), 0.0);  // longer lease lingers
}

TEST(Linger, FractionWithinMinutes) {
  std::vector<GroupSummary> groups;
  for (int i = 0; i < 9; ++i) groups.push_back(group("10.0.0.1", "A", i, 30.0));
  groups.push_back(group("10.0.0.2", "A", 99, 120.0));
  const auto usable = usable_groups(groups);
  // The paper's headline: 9 out of 10 within 60 minutes.
  EXPECT_DOUBLE_EQ(fraction_within_minutes(usable, 60.0), 0.9);
  EXPECT_DOUBLE_EQ(fraction_within_minutes({}, 60.0), 0.0);
}

GroupSummary brian_group(const char* ip, const char* host, const CivilDate& date, int hour,
                         int hours_present) {
  GroupSummary g;
  g.address = net::Ipv4Addr::must_parse(ip);
  g.network = "Academic-A";
  g.started = util::to_sim_time(date) + hour * kHour;
  g.last_icmp_ok = g.started + hours_present * kHour;
  g.offline_detected = g.last_icmp_ok + 5 * kMinute;
  g.ptr_observed_gone = g.offline_detected + 10 * kMinute;
  g.first_ptr = std::string{host} + ".housing.bayfield-university.edu";
  g.last_ptr = g.first_ptr;
  g.spot_rdns_ok = true;
  g.closed = true;
  g.reverted = true;
  g.reliable = true;
  g.icmp_ok = 5;
  return g;
}

TEST(Tracking, SegmentsFilterByNameAndNetwork) {
  std::vector<GroupSummary> groups;
  groups.push_back(brian_group("10.10.128.1", "brians-mbp", {2021, 11, 1}, 18, 12));
  groups.push_back(brian_group("10.10.128.2", "emmas-ipad", {2021, 11, 1}, 18, 12));
  GroupSummary other_net = brian_group("10.12.0.1", "brians-air", {2021, 11, 1}, 18, 12);
  other_net.network = "Academic-C";
  groups.push_back(other_net);

  const auto segments = segments_matching(groups, "brian", "Academic-A");
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].hostname, "brians-mbp");
  EXPECT_EQ(segments_matching(groups, "brian").size(), 2u);
  EXPECT_EQ(segments_matching(groups, "emma").size(), 1u);
}

TEST(Tracking, WeeklyGridLayout) {
  std::vector<GroupSummary> groups;
  // Monday 2021-11-01, 18:00-22:00.
  groups.push_back(brian_group("10.10.128.1", "brians-mbp", {2021, 11, 1}, 18, 4));
  // Tuesday, different device on a different address.
  groups.push_back(brian_group("10.10.128.2", "brians-ipad", {2021, 11, 2}, 10, 2));
  const auto segments = segments_matching(groups, "brian");
  const auto grid = build_weekly_grid(segments, CivilDate{2021, 11, 1}, 1, 12);

  ASSERT_EQ(grid.hostnames.size(), 2u);
  EXPECT_EQ(grid.hostnames[0], "brians-ipad");  // sorted
  ASSERT_EQ(grid.weeks.size(), 1u);
  EXPECT_EQ(grid.first_monday, (CivilDate{2021, 11, 1}));

  // brians-mbp row (index 1), Monday 18:00 -> slot 9 (2h slots).
  const auto& mbp_row = grid.weeks[0][1];
  EXPECT_NE(mbp_row[9], 0);
  EXPECT_EQ(mbp_row[5], 0);  // Monday 10:00: absent
  // brians-ipad: Tuesday 10:00 -> slot 12 + 5.
  const auto& ipad_row = grid.weeks[0][0];
  EXPECT_NE(ipad_row[17], 0);
  // Different devices on different addresses get different colours.
  EXPECT_NE(mbp_row[9], ipad_row[17]);
  EXPECT_EQ(grid.addresses.size(), 2u);
}

TEST(Tracking, GridSnapsToMonday) {
  const auto grid = build_weekly_grid({}, CivilDate{2021, 11, 4} /* Thursday */, 1, 12);
  EXPECT_EQ(grid.first_monday, (CivilDate{2021, 11, 1}));
}

TEST(Tracking, FirstSeenDatesFindCyberMondayPurchase) {
  std::vector<GroupSummary> groups;
  for (int d = 0; d < 10; ++d) {
    groups.push_back(brian_group("10.10.128.1", "brians-mbp",
                                 util::add_days(CivilDate{2021, 11, 20}, d), 18, 4));
  }
  // The Galaxy Note 9 appears on Cyber Monday afternoon.
  groups.push_back(brian_group("10.10.128.3", "brians-galaxy-note9", {2021, 11, 29}, 14, 6));
  const auto segments = segments_matching(groups, "brian");
  const auto first_seen = first_seen_dates(segments);
  EXPECT_EQ(first_seen.at("brians-galaxy-note9"), (CivilDate{2021, 11, 29}));
  EXPECT_EQ(first_seen.at("brians-mbp"), (CivilDate{2021, 11, 20}));
}

TEST(Heist, FindsQuietestWeekdayHour) {
  std::map<std::int64_t, scan::HourlyActivity> hourly;
  const util::SimTime from = util::to_sim_time(CivilDate{2021, 11, 1});  // a Monday
  const util::SimTime to = from + 7 * util::kDay;
  for (util::SimTime t = from; t < to; t += kHour) {
    const int hod = static_cast<int>((t % util::kDay) / kHour);
    // Diurnal curve with a 6 AM minimum.
    const std::uint64_t level = 100 + static_cast<std::uint64_t>(
                                          80.0 * -std::cos((hod - 18) * 3.14159 / 12.0));
    scan::HourlyActivity a;
    a.rdns_ok = hod == 6 ? 5 : level;
    a.icmp_ok = a.rdns_ok * 2;
    hourly[t / kHour] = a;
  }
  const auto analysis = analyze_heist_window(hourly, from, to);
  EXPECT_EQ(analysis.quietest_hour, 6);
  EXPECT_EQ(analysis.icmp_per_hour.size(), 24u * 7u);
  // ICMP counts exceed rDNS counts, as in Fig. 11.
  EXPECT_GT(analysis.icmp_per_hour[12], analysis.rdns_per_hour[12]);
}

TEST(Heist, EmptyWindow) {
  const auto analysis = analyze_heist_window({}, 100, 100);
  EXPECT_TRUE(analysis.icmp_per_hour.empty());
}

TEST(Heist, MissingHoursCountAsZero) {
  std::map<std::int64_t, scan::HourlyActivity> hourly;
  const util::SimTime from = util::to_sim_time(CivilDate{2021, 11, 1});
  hourly[(from + 13 * kHour) / kHour] = scan::HourlyActivity{10, 5};
  const auto analysis = analyze_heist_window(hourly, from, from + util::kDay);
  EXPECT_EQ(analysis.rdns_per_hour[13], 5u);
  EXPECT_EQ(analysis.rdns_per_hour[12], 0u);
}

}  // namespace
}  // namespace rdns::core
