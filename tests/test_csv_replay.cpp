/// Tests for CSV replay: running the analysis pipeline from recorded sweep
/// data instead of a live world — including a full record→replay→analyze
/// equivalence check.

#include "scan/csv_replay.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/dynamicity.hpp"
#include "core/names.hpp"
#include "core/terms.hpp"
#include "sim/world.hpp"

namespace rdns::scan {
namespace {

using util::CivilDate;

struct RecordingSink final : SnapshotSink {
  std::vector<std::string> rows;
  std::vector<std::string> sweep_ends;
  void on_row(const CivilDate& date, net::Ipv4Addr a, const dns::DnsName& ptr) override {
    rows.push_back(util::format_date(date) + "|" + a.to_string() + "|" +
                   ptr.to_canonical_string());
  }
  void on_sweep_end(const CivilDate& date) override {
    sweep_ends.push_back(util::format_date(date));
  }
};

TEST(CsvReplay, BasicRowsAndSweepBoundaries) {
  const std::string csv =
      "2021-01-01,10.0.0.1,brians-iphone.x.edu\n"
      "2021-01-01,10.0.0.2,emmas-ipad.x.edu\n"
      "2021-01-02,10.0.0.1,brians-iphone.x.edu\n";
  RecordingSink sink;
  const auto stats = replay_csv_text(csv, sink);
  EXPECT_EQ(stats.rows, 3u);
  EXPECT_EQ(stats.sweeps, 2u);
  EXPECT_EQ(stats.skipped, 0u);
  ASSERT_EQ(sink.sweep_ends.size(), 2u);
  EXPECT_EQ(sink.sweep_ends[0], "2021-01-01");
  EXPECT_EQ(sink.sweep_ends[1], "2021-01-02");
}

TEST(CsvReplay, SkipsHeaderAndJunkRows) {
  const std::string csv =
      "date,ip,ptr\n"
      "2021-01-01,10.0.0.1,ok.x.edu\n"
      "2021-01-01,not-an-ip,bad.x.edu\n"
      "2021-01-01,10.0.0.2,bad name with spaces\n"
      "2021-01-01,10.0.0.3\n"
      "garbage\n";
  RecordingSink sink;
  const auto stats = replay_csv_text(csv, sink);
  EXPECT_EQ(stats.rows, 1u);
  EXPECT_EQ(stats.skipped, 5u);
}

TEST(CsvReplay, EmptyInput) {
  RecordingSink sink;
  const auto stats = replay_csv_text("", sink);
  EXPECT_EQ(stats.rows, 0u);
  EXPECT_EQ(stats.sweeps, 0u);
  EXPECT_TRUE(sink.sweep_ends.empty());
}

/// The paper-relevant property: analysis over live sweeps equals analysis
/// over CSV-recorded-then-replayed sweeps.
TEST(CsvReplay, RecordThenReplayMatchesLiveAnalysis) {
  sim::OrgSpec org;
  org.name = "replay-test";
  org.type = sim::OrgType::Academic;
  org.suffix = dns::DnsName::must_parse("replay.edu");
  org.announced = {net::Prefix::must_parse("10.85.0.0/16")};
  sim::SegmentSpec seg;
  seg.label = "wifi";
  seg.prefix = net::Prefix::must_parse("10.85.64.0/24");
  seg.schedule = sim::ScheduleKind::OfficeWorker;
  seg.user_count = 40;
  org.segments = {seg};
  org.seed = 99;

  sim::World world;
  world.add_org(std::move(org));
  world.start(CivilDate{2021, 1, 1}, CivilDate{2021, 1, 21});

  // Live path: sweep into a CSV AND into the live detector/corpus.
  std::stringstream csv;
  CsvSnapshotSink csv_sink{csv};
  core::DynamicityDetector live_detector;
  core::PtrCorpus live_corpus;
  struct Tee final : SnapshotSink {
    std::vector<SnapshotSink*> sinks;
    void on_row(const CivilDate& d, net::Ipv4Addr a, const dns::DnsName& n) override {
      for (auto* s : sinks) s->on_row(d, a, n);
    }
    void on_sweep_end(const CivilDate& d) override {
      for (auto* s : sinks) s->on_sweep_end(d);
    }
  } tee;
  tee.sinks = {&csv_sink, &live_detector, &live_corpus};
  SweepDriver driver{world, 14, 1};
  (void)driver.run(CivilDate{2021, 1, 2}, CivilDate{2021, 1, 20}, tee);

  // Replay path: feed the CSV back into fresh analyzers.
  core::DynamicityDetector replay_detector;
  core::PtrCorpus replay_corpus;
  Tee replay_tee;
  replay_tee.sinks = {&replay_detector, &replay_corpus};
  const auto stats = replay_csv(csv, replay_tee);
  EXPECT_GT(stats.rows, 0u);
  EXPECT_EQ(stats.skipped, 0u);

  // Identical dynamicity outcomes...
  core::DynamicityConfig config;
  config.min_days_over = 3;
  const auto live = live_detector.analyze(config);
  const auto replayed = replay_detector.analyze(config);
  EXPECT_EQ(live.total_slash24_seen, replayed.total_slash24_seen);
  EXPECT_EQ(live.dynamic_count, replayed.dynamic_count);
  ASSERT_EQ(live.blocks.size(), replayed.blocks.size());
  for (std::size_t i = 0; i < live.blocks.size(); ++i) {
    EXPECT_EQ(live.blocks[i].block, replayed.blocks[i].block);
    EXPECT_EQ(live.blocks[i].max_daily, replayed.blocks[i].max_daily);
    EXPECT_EQ(live.blocks[i].days_over_threshold, replayed.blocks[i].days_over_threshold);
  }
  // ...and identical corpora.
  EXPECT_EQ(live_corpus.distinct_hostnames(), replay_corpus.distinct_hostnames());
  EXPECT_EQ(live_corpus.total_observations(), replay_corpus.total_observations());
  // Hence identical leak identification.
  core::LeakConfig leak;
  leak.min_unique_names = 5;
  const auto live_leaks = core::identify_leaking_networks(live_corpus, leak);
  const auto replay_leaks = core::identify_leaking_networks(replay_corpus, leak);
  EXPECT_EQ(live_leaks.identified, replay_leaks.identified);
}

}  // namespace
}  // namespace rdns::scan
