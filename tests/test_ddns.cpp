/// Tests for the DHCP→DNS bridge: hostname sanitization (the step that
/// turns "Brian's iPhone" into a public DNS label), the policy spectrum,
/// removal behaviours and RFC 4702 N-flag handling.

#include "dhcp/ddns.hpp"

#include <gtest/gtest.h>

#include "dns/resolver.hpp"
#include "dns/server.hpp"
#include "net/arpa.hpp"
#include "util/rng.hpp"

namespace rdns::dhcp {
namespace {

struct SanitizeCase {
  const char* input;
  const char* expected;
};

class Sanitize : public ::testing::TestWithParam<SanitizeCase> {};

TEST_P(Sanitize, ProducesDnsLabel) {
  EXPECT_EQ(sanitize_hostname(GetParam().input), GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, Sanitize,
    ::testing::Values(SanitizeCase{"Brian's iPhone", "brians-iphone"},
                      SanitizeCase{"Brian\xE2\x80\x99s iPad", "brians-ipad"},  // U+2019
                      SanitizeCase{"Brians-Galaxy-Note9", "brians-galaxy-note9"},
                      SanitizeCase{"DESKTOP-4F2K9QX", "desktop-4f2k9qx"},
                      SanitizeCase{"LAPTOP  WITH   SPACES", "laptop-with-spaces"},
                      SanitizeCase{"trailing-", "trailing"},
                      SanitizeCase{"__weird__", "weird"},
                      SanitizeCase{"", ""}));

TEST(Sanitize, ClampsTo63Octets) {
  const std::string long_name(100, 'a');
  EXPECT_EQ(sanitize_hostname(long_name).size(), 63u);
}

TEST(HashedLabel, StablePerMacAndOpaque) {
  util::Rng rng{5};
  const net::Mac m = net::Mac::random(net::MacVendor::Apple, rng);
  const std::string h1 = hashed_label(m);
  EXPECT_EQ(h1, hashed_label(m));
  EXPECT_EQ(h1.rfind("h-", 0), 0u);
  EXPECT_EQ(h1.size(), 14u);  // "h-" + 12 hex digits
  const net::Mac other = net::Mac::random(net::MacVendor::Apple, rng);
  EXPECT_NE(h1, hashed_label(other));
}

TEST(GenericLabel, FixedForm) {
  EXPECT_EQ(generic_label(net::Ipv4Addr::must_parse("10.131.4.27")), "host-10-131-4-27");
}

class BridgeFixture : public ::testing::Test {
 protected:
  BridgeFixture()
      : zone_(server_.add_zone(dns::DnsName::must_parse("131.10.in-addr.arpa"),
                               dns::SoaRdata{dns::DnsName::must_parse("ns1.x.edu"),
                                             dns::DnsName::must_parse("hostmaster.x.edu")})),
        transport_(server_) {}

  DdnsConfig config(DdnsPolicy policy, RemovalBehavior removal = RemovalBehavior::RemovePtr) {
    DdnsConfig c;
    c.policy = policy;
    c.removal = removal;
    c.reverse_zone = dns::DnsName::must_parse("131.10.in-addr.arpa");
    c.domain_suffix = dns::DnsName::must_parse("wifi.x.edu");
    c.generic_suffix = dns::DnsName::must_parse("dynamic.x.edu");
    return c;
  }

  Lease lease(const char* ip, const std::string& host_name) {
    Lease l;
    l.address = net::Ipv4Addr::must_parse(ip);
    util::Rng rng{static_cast<std::uint64_t>(l.address.value())};
    l.mac = net::Mac::random(net::MacVendor::Apple, rng);
    l.host_name = host_name;
    l.state = LeaseState::Bound;
    return l;
  }

  std::optional<std::string> ptr_of(const char* ip) {
    const auto records = zone_.find(
        dns::DnsName::must_parse(net::to_arpa(net::Ipv4Addr::must_parse(ip))), dns::RrType::PTR);
    if (records.empty()) return std::nullopt;
    return std::get<dns::PtrRdata>(records[0].rdata).ptrdname.to_canonical_string();
  }

  dns::AuthoritativeServer server_;
  dns::Zone& zone_;
  dns::LoopbackTransport transport_;
};

TEST_F(BridgeFixture, CarryOverPublishesSanitizedClientName) {
  DdnsBridge bridge{config(DdnsPolicy::CarryOverClientId), transport_};
  bridge.on_lease_bound(lease("10.131.4.27", "Brian's iPhone"), 100);
  EXPECT_EQ(ptr_of("10.131.4.27"), "brians-iphone.wifi.x.edu");
  EXPECT_EQ(bridge.stats().ptr_added, 1u);
}

TEST_F(BridgeFixture, CarryOverRemovesOnLeaseEnd) {
  DdnsBridge bridge{config(DdnsPolicy::CarryOverClientId), transport_};
  const Lease l = lease("10.131.4.27", "Brian's iPhone");
  bridge.on_lease_bound(l, 100);
  bridge.on_lease_end(l, LeaseEndReason::Release, 200);
  EXPECT_FALSE(ptr_of("10.131.4.27").has_value());
  EXPECT_EQ(bridge.stats().ptr_removed, 1u);
}

TEST_F(BridgeFixture, RevertToGenericKeepsARecordForm) {
  DdnsBridge bridge{config(DdnsPolicy::CarryOverClientId, RemovalBehavior::RevertToGeneric),
                    transport_};
  const Lease l = lease("10.131.4.27", "Brian's iPhone");
  bridge.on_lease_bound(l, 100);
  bridge.on_lease_end(l, LeaseEndReason::Expiry, 3700);
  EXPECT_EQ(ptr_of("10.131.4.27"), "host-10-131-4-27.dynamic.x.edu");
  EXPECT_EQ(bridge.stats().ptr_reverted, 1u);
}

TEST_F(BridgeFixture, EmptyHostNameFallsBackToGenericLabel) {
  DdnsBridge bridge{config(DdnsPolicy::CarryOverClientId), transport_};
  bridge.on_lease_bound(lease("10.131.4.30", ""), 100);
  EXPECT_EQ(ptr_of("10.131.4.30"), "host-10-131-4-30.wifi.x.edu");
}

TEST_F(BridgeFixture, HashedPolicyHidesIdentity) {
  DdnsBridge bridge{config(DdnsPolicy::HashedClientId), transport_};
  const Lease l = lease("10.131.4.28", "Brian's iPhone");
  bridge.on_lease_bound(l, 100);
  const auto ptr = ptr_of("10.131.4.28");
  ASSERT_TRUE(ptr.has_value());
  EXPECT_EQ(ptr->find("brian"), std::string::npos);
  EXPECT_EQ(ptr->rfind("h-", 0), 0u);
  // Still dynamic: removed at lease end.
  bridge.on_lease_end(l, LeaseEndReason::Release, 200);
  EXPECT_FALSE(ptr_of("10.131.4.28").has_value());
}

TEST_F(BridgeFixture, NonePolicyTouchesNothing) {
  DdnsBridge bridge{config(DdnsPolicy::None), transport_};
  const Lease l = lease("10.131.4.29", "Brian's iPhone");
  bridge.on_lease_bound(l, 100);
  bridge.on_lease_end(l, LeaseEndReason::Release, 200);
  EXPECT_FALSE(ptr_of("10.131.4.29").has_value());
  EXPECT_EQ(bridge.stats().ptr_added, 0u);
}

TEST_F(BridgeFixture, HonoursClientNoUpdateFlag) {
  DdnsConfig c = config(DdnsPolicy::CarryOverClientId);
  c.honor_no_update_flag = true;
  DdnsBridge bridge{c, transport_};
  Lease l = lease("10.131.4.31", "Brian's iPhone");
  l.client_fqdn = std::string{};  // convention for the N flag
  bridge.on_lease_bound(l, 100);
  EXPECT_FALSE(ptr_of("10.131.4.31").has_value());
  EXPECT_EQ(bridge.stats().suppressed_by_client_flag, 1u);
}

TEST_F(BridgeFixture, IgnoringClientFlagLeaksAnyway) {
  // The open question of Section 8: servers may not honour the client's
  // wish. Default config does not.
  DdnsBridge bridge{config(DdnsPolicy::CarryOverClientId), transport_};
  Lease l = lease("10.131.4.32", "Brian's iPhone");
  l.client_fqdn = std::string{};
  bridge.on_lease_bound(l, 100);
  EXPECT_TRUE(ptr_of("10.131.4.32").has_value());
}

TEST_F(BridgeFixture, PopulateStaticFillsRange) {
  DdnsBridge bridge{config(DdnsPolicy::StaticGeneric), transport_};
  bridge.populate_static(net::Ipv4Addr::must_parse("10.131.0.1"),
                         net::Ipv4Addr::must_parse("10.131.0.10"), 0);
  EXPECT_EQ(ptr_of("10.131.0.1"), "host-10-131-0-1.dynamic.x.edu");
  EXPECT_EQ(ptr_of("10.131.0.10"), "host-10-131-0-10.dynamic.x.edu");
  EXPECT_EQ(bridge.stats().update_failures, 0u);
}

TEST_F(BridgeFixture, StaticGenericIgnoresLeaseEvents) {
  DdnsBridge bridge{config(DdnsPolicy::StaticGeneric), transport_};
  bridge.populate_static(net::Ipv4Addr::must_parse("10.131.1.1"),
                         net::Ipv4Addr::must_parse("10.131.1.1"), 0);
  const Lease l = lease("10.131.1.1", "Brian's iPhone");
  bridge.on_lease_bound(l, 100);
  bridge.on_lease_end(l, LeaseEndReason::Release, 200);
  // The fixed-form record never changed: dynamic DHCP, static rDNS.
  EXPECT_EQ(ptr_of("10.131.1.1"), "host-10-131-1-1.dynamic.x.edu");
}

TEST_F(BridgeFixture, UpdateFailureCounted) {
  DdnsConfig c = config(DdnsPolicy::CarryOverClientId);
  c.reverse_zone = dns::DnsName::must_parse("99.10.in-addr.arpa");  // not hosted
  DdnsBridge bridge{c, transport_};
  Lease l = lease("10.131.4.40", "X");
  l.address = net::Ipv4Addr::must_parse("10.99.4.40");
  bridge.on_lease_bound(l, 100);
  EXPECT_EQ(bridge.stats().update_failures, 1u);
}

TEST(PublishedName, ReflectsPolicy) {
  dns::AuthoritativeServer server;
  dns::LoopbackTransport transport{server};
  DdnsConfig c;
  c.policy = DdnsPolicy::CarryOverClientId;
  c.reverse_zone = dns::DnsName::must_parse("131.10.in-addr.arpa");
  c.domain_suffix = dns::DnsName::must_parse("wifi.x.edu");
  c.generic_suffix = dns::DnsName::must_parse("dynamic.x.edu");
  DdnsBridge bridge{c, transport};
  Lease l;
  l.address = net::Ipv4Addr::must_parse("10.131.0.5");
  l.host_name = "Emma's MacBook Air";
  const auto name = bridge.published_name(l);
  ASSERT_TRUE(name.has_value());
  EXPECT_EQ(name->to_canonical_string(), "emmas-macbook-air.wifi.x.edu");
}

}  // namespace
}  // namespace rdns::dhcp

namespace rdns::dhcp {
namespace {

TEST(ForwardDdns, AddsAndRemovesARecords) {
  dns::AuthoritativeServer server;
  dns::SoaRdata soa;
  soa.mname = dns::DnsName::must_parse("ns1.x.edu");
  soa.rname = dns::DnsName::must_parse("hostmaster.x.edu");
  server.add_zone(dns::DnsName::must_parse("131.10.in-addr.arpa"), soa);
  dns::Zone& forward = server.add_zone(dns::DnsName::must_parse("x.edu"), soa);
  dns::LoopbackTransport transport{server};

  DdnsConfig config;
  config.policy = DdnsPolicy::CarryOverClientId;
  config.reverse_zone = dns::DnsName::must_parse("131.10.in-addr.arpa");
  config.forward_zone = dns::DnsName::must_parse("x.edu");
  config.domain_suffix = dns::DnsName::must_parse("wifi.x.edu");
  config.generic_suffix = dns::DnsName::must_parse("dynamic.x.edu");
  DdnsBridge bridge{config, transport};

  Lease lease;
  lease.address = net::Ipv4Addr::must_parse("10.131.4.50");
  util::Rng rng{50};
  lease.mac = net::Mac::random(net::MacVendor::Apple, rng);
  lease.host_name = "Brian's iPhone";
  lease.state = LeaseState::Bound;

  bridge.on_lease_bound(lease, 100);
  const dns::DnsName fqdn = dns::DnsName::must_parse("brians-iphone.wifi.x.edu");
  const auto a_records = forward.find(fqdn, dns::RrType::A);
  ASSERT_EQ(a_records.size(), 1u);
  EXPECT_EQ(std::get<dns::ARdata>(a_records[0].rdata).address, lease.address);
  EXPECT_EQ(bridge.stats().a_added, 1u);

  bridge.on_lease_end(lease, LeaseEndReason::Release, 200);
  EXPECT_TRUE(forward.find(fqdn, dns::RrType::A).empty());
  EXPECT_EQ(bridge.stats().a_removed, 1u);
}

TEST(ForwardDdns, DisabledByDefault) {
  dns::AuthoritativeServer server;
  dns::SoaRdata soa;
  soa.mname = dns::DnsName::must_parse("ns1.x.edu");
  soa.rname = dns::DnsName::must_parse("h.x.edu");
  server.add_zone(dns::DnsName::must_parse("131.10.in-addr.arpa"), soa);
  dns::LoopbackTransport transport{server};
  DdnsConfig config;
  config.policy = DdnsPolicy::CarryOverClientId;
  config.reverse_zone = dns::DnsName::must_parse("131.10.in-addr.arpa");
  config.domain_suffix = dns::DnsName::must_parse("wifi.x.edu");
  DdnsBridge bridge{config, transport};
  Lease lease;
  lease.address = net::Ipv4Addr::must_parse("10.131.4.51");
  util::Rng rng{51};
  lease.mac = net::Mac::random(net::MacVendor::Apple, rng);
  lease.host_name = "X";
  bridge.on_lease_bound(lease, 0);
  EXPECT_EQ(bridge.stats().a_added, 0u);
  EXPECT_EQ(bridge.stats().update_failures, 0u);
}

}  // namespace
}  // namespace rdns::dhcp
