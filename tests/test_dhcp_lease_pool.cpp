/// Tests for the lease database (expiry ordering, state transitions) and
/// address pools (sticky bindings, exhaustion).

#include <gtest/gtest.h>

#include "dhcp/lease.hpp"
#include "dhcp/pool.hpp"
#include "util/rng.hpp"

namespace rdns::dhcp {
namespace {

net::Mac mac(int i) {
  std::array<std::uint8_t, 6> b{0x02, 0, 0, 0, 0, static_cast<std::uint8_t>(i)};
  return net::Mac{b};
}

Lease make_lease(const char* ip, int mac_id, util::SimTime start, util::SimTime expiry,
                 LeaseState state = LeaseState::Bound) {
  Lease l;
  l.address = net::Ipv4Addr::must_parse(ip);
  l.mac = mac(mac_id);
  l.host_name = "Device-" + std::to_string(mac_id);
  l.start = start;
  l.expiry = expiry;
  l.state = state;
  return l;
}

TEST(LeaseDb, UpsertAndLookups) {
  LeaseDb db;
  db.upsert(make_lease("10.0.0.1", 1, 0, 3600));
  EXPECT_NE(db.by_address(net::Ipv4Addr::must_parse("10.0.0.1")), nullptr);
  EXPECT_NE(db.by_mac(mac(1)), nullptr);
  EXPECT_EQ(db.by_mac(mac(1))->address, net::Ipv4Addr::must_parse("10.0.0.1"));
  EXPECT_EQ(db.by_address(net::Ipv4Addr::must_parse("10.0.0.2")), nullptr);
  EXPECT_EQ(db.size(), 1u);
}

TEST(LeaseDb, ExpireDueInOrder) {
  LeaseDb db;
  db.upsert(make_lease("10.0.0.1", 1, 0, 100));
  db.upsert(make_lease("10.0.0.2", 2, 0, 200));
  db.upsert(make_lease("10.0.0.3", 3, 0, 300));
  auto expired = db.expire_due(150);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].address.to_string(), "10.0.0.1");
  EXPECT_EQ(expired[0].state, LeaseState::Bound);  // pre-expiry state returned
  // The stored lease is now Expired.
  EXPECT_EQ(db.by_address(net::Ipv4Addr::must_parse("10.0.0.1"))->state, LeaseState::Expired);
  expired = db.expire_due(500);
  EXPECT_EQ(expired.size(), 2u);
}

TEST(LeaseDb, RenewDefeatsStaleExpiryEntries) {
  LeaseDb db;
  db.upsert(make_lease("10.0.0.1", 1, 0, 100));
  EXPECT_TRUE(db.renew(net::Ipv4Addr::must_parse("10.0.0.1"), 500));
  EXPECT_TRUE(db.expire_due(100).empty());  // stale heap entry skipped
  const auto expired = db.expire_due(500);
  ASSERT_EQ(expired.size(), 1u);
}

TEST(LeaseDb, ReleaseOnlyWhenBound) {
  LeaseDb db;
  db.upsert(make_lease("10.0.0.1", 1, 0, 100, LeaseState::Offered));
  EXPECT_FALSE(db.release(net::Ipv4Addr::must_parse("10.0.0.1")).has_value());
  EXPECT_TRUE(db.bind(net::Ipv4Addr::must_parse("10.0.0.1"), 10, 3610));
  const auto released = db.release(net::Ipv4Addr::must_parse("10.0.0.1"));
  ASSERT_TRUE(released.has_value());
  EXPECT_EQ(released->state, LeaseState::Released);
  // Released leases do not later "expire".
  EXPECT_TRUE(db.expire_due(10000).empty());
}

TEST(LeaseDb, EraseCleansIndexes) {
  LeaseDb db;
  db.upsert(make_lease("10.0.0.1", 1, 0, 100));
  db.erase(net::Ipv4Addr::must_parse("10.0.0.1"));
  EXPECT_EQ(db.by_address(net::Ipv4Addr::must_parse("10.0.0.1")), nullptr);
  EXPECT_EQ(db.by_mac(mac(1)), nullptr);
  EXPECT_EQ(db.size(), 0u);
}

TEST(LeaseDb, AddressReassignmentUpdatesMacIndex) {
  LeaseDb db;
  db.upsert(make_lease("10.0.0.1", 1, 0, 100));
  db.upsert(make_lease("10.0.0.1", 2, 0, 200));  // new owner
  EXPECT_EQ(db.by_mac(mac(1)), nullptr);
  ASSERT_NE(db.by_mac(mac(2)), nullptr);
}

TEST(LeaseDb, BoundCount) {
  LeaseDb db;
  db.upsert(make_lease("10.0.0.1", 1, 0, 100, LeaseState::Offered));
  db.upsert(make_lease("10.0.0.2", 2, 0, 100));
  EXPECT_EQ(db.bound_count(), 1u);
  EXPECT_EQ(db.all().size(), 2u);
}

TEST(LeaseDb, ActiveAt) {
  const Lease l = make_lease("10.0.0.1", 1, 0, 100);
  EXPECT_TRUE(l.active_at(50));
  EXPECT_FALSE(l.active_at(100));
}

TEST(Pool, AllocatesAllAddressesOnce) {
  AddressPool pool;
  pool.add_range(net::Ipv4Addr::must_parse("10.0.0.1"), net::Ipv4Addr::must_parse("10.0.0.4"));
  std::set<std::string> seen;
  for (int i = 0; i < 4; ++i) {
    const auto a = pool.allocate(mac(i));
    ASSERT_TRUE(a.has_value());
    seen.insert(a->to_string());
  }
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_FALSE(pool.allocate(mac(99)).has_value());  // exhausted
  EXPECT_EQ(pool.free_count(), 0u);
}

TEST(Pool, StickyBindingAcrossRelease) {
  AddressPool pool;
  pool.add_range(net::Ipv4Addr::must_parse("10.0.0.1"), net::Ipv4Addr::must_parse("10.0.0.10"));
  const auto first = pool.allocate(mac(1));
  ASSERT_TRUE(first.has_value());
  pool.release(*first, mac(1));
  // Other clients churn through the pool...
  for (int i = 2; i < 6; ++i) (void)pool.allocate(mac(i));
  // ...but the returning client gets its old address back.
  EXPECT_EQ(pool.allocate(mac(1)), first);
}

TEST(Pool, HonoursRequestedAddress) {
  AddressPool pool;
  pool.add_prefix(net::Prefix::must_parse("10.0.0.0/28"));
  const auto requested = net::Ipv4Addr::must_parse("10.0.0.9");
  EXPECT_EQ(pool.allocate(mac(1), requested), requested);
  // A second client cannot take the same address.
  EXPECT_NE(pool.allocate(mac(2), requested), requested);
}

TEST(Pool, AddPrefixSkipsNetworkAndBroadcast) {
  AddressPool pool;
  pool.add_prefix(net::Prefix::must_parse("10.0.0.0/29"));
  EXPECT_EQ(pool.capacity(), 6u);
  EXPECT_FALSE(pool.contains(net::Ipv4Addr::must_parse("10.0.0.0")));
  EXPECT_FALSE(pool.contains(net::Ipv4Addr::must_parse("10.0.0.7")));
  EXPECT_TRUE(pool.contains(net::Ipv4Addr::must_parse("10.0.0.1")));
}

TEST(Pool, ReleaseMakesAddressReusable) {
  AddressPool pool;
  pool.add_range(net::Ipv4Addr::must_parse("10.0.0.1"), net::Ipv4Addr::must_parse("10.0.0.1"));
  const auto a = pool.allocate(mac(1));
  ASSERT_TRUE(a.has_value());
  EXPECT_FALSE(pool.allocate(mac(2)).has_value());
  pool.release(*a, mac(1));
  EXPECT_TRUE(pool.allocate(mac(2)).has_value());
}

}  // namespace
}  // namespace rdns::dhcp
