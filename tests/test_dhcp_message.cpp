/// Tests for the RFC 2131 message wire format and the client-side builders.

#include "dhcp/message.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace rdns::dhcp {
namespace {

ClientIdentity test_identity() {
  util::Rng rng{1};
  ClientIdentity id;
  id.mac = net::Mac::random(net::MacVendor::Apple, rng);
  id.host_name = "Brian's iPhone";
  return id;
}

TEST(DhcpWire, DiscoverRoundTrip) {
  const DhcpMessage m = make_discover(0xDEADBEEF, test_identity());
  const DhcpMessage decoded = decode(encode(m));
  EXPECT_EQ(decoded, m);
  EXPECT_EQ(decoded.xid, 0xDEADBEEFu);
  EXPECT_EQ(decoded.message_type(), MessageType::Discover);
  EXPECT_EQ(decoded.host_name(), "Brian's iPhone");
  EXPECT_EQ(decoded.flags & 0x8000, 0x8000);  // broadcast bit
}

TEST(DhcpWire, FixedHeaderFields) {
  DhcpMessage m = make_discover(42, test_identity());
  m.secs = 7;
  m.hops = 2;
  m.ciaddr = net::Ipv4Addr::must_parse("10.0.0.1");
  m.yiaddr = net::Ipv4Addr::must_parse("10.0.0.2");
  m.siaddr = net::Ipv4Addr::must_parse("10.0.0.3");
  m.giaddr = net::Ipv4Addr::must_parse("10.0.0.4");
  const DhcpMessage decoded = decode(encode(m));
  EXPECT_EQ(decoded, m);
}

TEST(DhcpWire, MagicCookieEnforced) {
  auto wire = encode(make_discover(1, test_identity()));
  wire[236] = 0;  // corrupt the cookie
  EXPECT_THROW((void)decode(wire), DhcpWireError);
}

TEST(DhcpWire, RejectsShortMessages) {
  EXPECT_THROW((void)decode(std::vector<std::uint8_t>(100, 0)), DhcpWireError);
}

TEST(DhcpWire, RejectsBadOp) {
  auto wire = encode(make_discover(1, test_identity()));
  wire[0] = 9;
  EXPECT_THROW((void)decode(wire), DhcpWireError);
}

TEST(Builders, RequestCarriesSelection) {
  const auto m = make_request(5, test_identity(), net::Ipv4Addr::must_parse("10.0.0.9"),
                              net::Ipv4Addr::must_parse("10.0.0.1"));
  EXPECT_EQ(m.message_type(), MessageType::Request);
  EXPECT_EQ(m.requested_ip(), net::Ipv4Addr::must_parse("10.0.0.9"));
  EXPECT_EQ(m.server_identifier(), net::Ipv4Addr::must_parse("10.0.0.1"));
  EXPECT_EQ(m.host_name(), "Brian's iPhone");  // identity re-sent on REQUEST
}

TEST(Builders, RenewUsesCiaddr) {
  const auto m = make_renew(6, test_identity(), net::Ipv4Addr::must_parse("10.0.0.9"));
  EXPECT_EQ(m.ciaddr, net::Ipv4Addr::must_parse("10.0.0.9"));
  EXPECT_FALSE(m.requested_ip().has_value());
  EXPECT_FALSE(m.server_identifier().has_value());
}

TEST(Builders, ReleaseOmitsIdentity) {
  // RELEASE does not need to re-announce the Host Name.
  const auto m = make_release(7, test_identity(), net::Ipv4Addr::must_parse("10.0.0.9"),
                              net::Ipv4Addr::must_parse("10.0.0.1"));
  EXPECT_EQ(m.message_type(), MessageType::Release);
  EXPECT_FALSE(m.host_name().has_value());
}

TEST(Builders, ClientFqdnOptionFlows) {
  ClientIdentity id = test_identity();
  ClientFqdn fqdn;
  fqdn.no_server_update = true;
  fqdn.fqdn = "brians-iphone";
  id.fqdn = fqdn;
  const auto decoded = decode(encode(make_discover(8, id)));
  ASSERT_TRUE(decoded.client_fqdn().has_value());
  EXPECT_TRUE(decoded.client_fqdn()->no_server_update);
}

TEST(Summary, MentionsTypeAndHostname) {
  const std::string s = make_discover(9, test_identity()).summary();
  EXPECT_NE(s.find("DISCOVER"), std::string::npos);
  EXPECT_NE(s.find("Brian's iPhone"), std::string::npos);
}

TEST(Accessors, MissingOptionsYieldNullopt) {
  DhcpMessage m;
  EXPECT_FALSE(m.message_type().has_value());
  EXPECT_FALSE(m.host_name().has_value());
  EXPECT_FALSE(m.client_fqdn().has_value());
  EXPECT_FALSE(m.requested_ip().has_value());
  EXPECT_FALSE(m.lease_time().has_value());
  EXPECT_FALSE(m.server_identifier().has_value());
}

}  // namespace
}  // namespace rdns::dhcp
