/// Tests for DHCP options: TLV codec, typed accessors and the RFC 4702
/// Client FQDN option (flags, wire-encoded names).

#include "dhcp/options.hpp"

#include <gtest/gtest.h>

namespace rdns::dhcp {
namespace {

TEST(Options, TypedConstructors) {
  EXPECT_EQ(Option::message_type(MessageType::Discover).as_message_type(),
            MessageType::Discover);
  EXPECT_EQ(Option::host_name("Brians-iPhone").as_string(), "Brians-iPhone");
  EXPECT_EQ(Option::requested_ip(net::Ipv4Addr::must_parse("10.0.0.7")).as_ipv4(),
            net::Ipv4Addr::must_parse("10.0.0.7"));
  EXPECT_EQ(Option::lease_time(3600).as_u32(), 3600u);
}

TEST(Options, HostNameBounds) {
  EXPECT_THROW((void)Option::host_name(""), OptionError);
  EXPECT_THROW((void)Option::host_name(std::string(256, 'a')), OptionError);
  EXPECT_NO_THROW((void)Option::host_name(std::string(255, 'a')));
}

TEST(Options, AccessorTypeChecks) {
  const Option o{OptionCode::HostName, {1, 2, 3}};
  EXPECT_THROW((void)o.as_message_type(), OptionError);
  EXPECT_THROW((void)o.as_u32(), OptionError);
}

TEST(Options, EncodeDecodeRoundTrip) {
  std::vector<Option> options = {
      Option::message_type(MessageType::Request),
      Option::host_name("Brian's iPhone"),
      Option::requested_ip(net::Ipv4Addr::must_parse("10.10.128.9")),
      Option::lease_time(3600),
      Option::server_identifier(net::Ipv4Addr::must_parse("10.10.128.0")),
  };
  std::vector<std::uint8_t> wire;
  encode_options(options, wire);
  EXPECT_EQ(wire.back(), 255);  // End option
  const auto decoded = decode_options(wire);
  EXPECT_EQ(decoded, options);
}

TEST(Options, DecodeSkipsPadRequiresEnd) {
  std::vector<std::uint8_t> wire = {0, 0, 53, 1, 1, 255};
  const auto decoded = decode_options(wire);
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].as_message_type(), MessageType::Discover);
  EXPECT_THROW((void)decode_options(std::vector<std::uint8_t>{53, 1, 1}), OptionError);
}

TEST(Options, DecodeRejectsTruncation) {
  EXPECT_THROW((void)decode_options(std::vector<std::uint8_t>{53}), OptionError);
  EXPECT_THROW((void)decode_options(std::vector<std::uint8_t>{53, 4, 1, 255}), OptionError);
}

TEST(Options, FindOption) {
  std::vector<Option> options = {Option::message_type(MessageType::Ack)};
  EXPECT_NE(find_option(options, OptionCode::MessageType), nullptr);
  EXPECT_EQ(find_option(options, OptionCode::HostName), nullptr);
}

TEST(ClientFqdn, WireEncodedRoundTrip) {
  ClientFqdn f;
  f.server_updates = true;
  f.fqdn = "brians-iphone.wifi.x.edu";
  const Option o = f.to_option();
  const ClientFqdn decoded = ClientFqdn::from_option(o);
  EXPECT_EQ(decoded, f);
}

TEST(ClientFqdn, AsciiFormRoundTrip) {
  ClientFqdn f;
  f.canonical_wire = false;
  f.fqdn = "brians-iphone";
  EXPECT_EQ(ClientFqdn::from_option(f.to_option()), f);
}

TEST(ClientFqdn, FlagBits) {
  ClientFqdn f;
  f.no_server_update = true;  // the RFC 4702 "N" bit
  f.server_updates = false;
  f.fqdn = "x";
  const Option o = f.to_option();
  EXPECT_EQ(o.data[0] & 0x08, 0x08);
  EXPECT_EQ(o.data[0] & 0x01, 0x00);
  EXPECT_TRUE(ClientFqdn::from_option(o).no_server_update);
}

TEST(ClientFqdn, RejectsMalformed) {
  EXPECT_THROW((void)ClientFqdn::from_option(Option{OptionCode::ClientFqdn, {1}}),
               OptionError);
  ClientFqdn f;
  f.fqdn = std::string(70, 'a');  // label > 63 in wire form
  EXPECT_THROW((void)f.to_option(), OptionError);
}

TEST(MessageTypeNames, Strings) {
  EXPECT_STREQ(to_string(MessageType::Discover), "DISCOVER");
  EXPECT_STREQ(to_string(MessageType::Release), "RELEASE");
}

}  // namespace
}  // namespace rdns::dhcp
