/// Integration tests for the DHCP server and client state machines: the
/// full wire-level handshake, renewals, releases, expiry, and lease-event
/// observation (what the DDNS bridge subscribes to).

#include <gtest/gtest.h>

#include "dhcp/client.hpp"
#include "dhcp/server.hpp"
#include "util/rng.hpp"

namespace rdns::dhcp {
namespace {

DhcpServer make_server(std::uint32_t lease_seconds = 3600) {
  DhcpServerConfig config;
  config.server_id = net::Ipv4Addr::must_parse("10.0.0.0");
  config.lease_seconds = lease_seconds;
  AddressPool pool;
  pool.add_prefix(net::Prefix::must_parse("10.0.0.0/28"));
  return DhcpServer{config, std::move(pool)};
}

ClientIdentity identity(int i, const std::string& host_name = "Brians-MBP") {
  util::Rng rng{static_cast<std::uint64_t>(i) + 100};
  ClientIdentity id;
  id.mac = net::Mac::random(net::MacVendor::Apple, rng);
  id.host_name = host_name;
  return id;
}

TEST(Handshake, DiscoverOfferRequestAck) {
  DhcpServer server = make_server();
  DhcpClient client{identity(1), 7};
  const auto address = client.join(server, 1000);
  ASSERT_TRUE(address.has_value());
  EXPECT_EQ(client.state(), ClientState::Bound);
  EXPECT_EQ(server.stats().discovers, 1u);
  EXPECT_EQ(server.stats().offers, 1u);
  EXPECT_EQ(server.stats().acks, 1u);
  const Lease* lease = server.leases().by_address(*address);
  ASSERT_NE(lease, nullptr);
  EXPECT_EQ(lease->state, LeaseState::Bound);
  EXPECT_EQ(lease->host_name, "Brians-MBP");
  EXPECT_EQ(lease->expiry, 1000 + 3600);
}

TEST(Handshake, ObserverSeesBindWithHostName) {
  DhcpServer server = make_server();
  std::vector<std::string> bound_names;
  LeaseObserver obs;
  obs.on_bound = [&](const Lease& lease, util::SimTime) {
    bound_names.push_back(lease.host_name);
  };
  server.add_observer(std::move(obs));
  DhcpClient client{identity(2, "Brian's iPhone"), 8};
  ASSERT_TRUE(client.join(server, 0).has_value());
  ASSERT_EQ(bound_names.size(), 1u);
  EXPECT_EQ(bound_names[0], "Brian's iPhone");
}

TEST(Renewal, ExtendsLease) {
  DhcpServer server = make_server(1000);
  DhcpClient client{identity(3), 9};
  const auto address = client.join(server, 0);
  ASSERT_TRUE(address.has_value());
  EXPECT_EQ(client.renewal_due(), 500);
  EXPECT_TRUE(client.maybe_renew(server, 400));  // not due: no-op, still bound
  EXPECT_TRUE(client.maybe_renew(server, 600));  // renews
  EXPECT_EQ(server.leases().by_address(*address)->expiry, 1600);
  EXPECT_EQ(client.renewal_due(), 1100);
}

TEST(Renewal, NakAfterServerForgot) {
  DhcpServer server = make_server(100);
  DhcpClient client{identity(4), 10};
  ASSERT_TRUE(client.join(server, 0).has_value());
  // Let the lease expire server-side, then try to renew.
  server.tick(1000);
  EXPECT_FALSE(client.maybe_renew(server, 1001));
  EXPECT_EQ(client.state(), ClientState::Init);
  EXPECT_GE(server.stats().naks, 1u);
}

TEST(Release, CleanLeaveFiresEndEvent) {
  DhcpServer server = make_server();
  std::vector<LeaseEndReason> reasons;
  LeaseObserver obs;
  obs.on_end = [&](const Lease&, LeaseEndReason reason, util::SimTime) {
    reasons.push_back(reason);
  };
  server.add_observer(std::move(obs));
  DhcpClient client{identity(5), 11};
  const auto address = client.join(server, 0);
  ASSERT_TRUE(address.has_value());
  client.leave(server, 100, /*clean=*/true);
  ASSERT_EQ(reasons.size(), 1u);
  EXPECT_EQ(reasons[0], LeaseEndReason::Release);
  EXPECT_EQ(server.leases().by_address(*address), nullptr);
  // The address is back in the pool.
  EXPECT_EQ(server.pool().free_count(), server.pool().capacity());
}

TEST(Expiry, SilentLeaveExpiresAtLeaseEnd) {
  DhcpServer server = make_server(3600);
  std::vector<std::pair<LeaseEndReason, util::SimTime>> ends;
  LeaseObserver obs;
  obs.on_end = [&](const Lease&, LeaseEndReason reason, util::SimTime t) {
    ends.emplace_back(reason, t);
  };
  server.add_observer(std::move(obs));
  DhcpClient client{identity(6), 12};
  ASSERT_TRUE(client.join(server, 0).has_value());
  client.leave(server, 600, /*clean=*/false);  // vanishes without RELEASE
  server.tick(3599);
  EXPECT_TRUE(ends.empty());
  server.tick(3600);
  ASSERT_EQ(ends.size(), 1u);
  EXPECT_EQ(ends[0].first, LeaseEndReason::Expiry);
  EXPECT_EQ(ends[0].second, 3600);
}

TEST(Expiry, LapsedOfferDoesNotFireEndEvent) {
  DhcpServer server = make_server();
  int end_events = 0;
  LeaseObserver obs;
  obs.on_end = [&](const Lease&, LeaseEndReason, util::SimTime) { ++end_events; };
  server.add_observer(std::move(obs));
  // DISCOVER only; never REQUEST.
  const auto offer = server.handle(make_discover(77, identity(7)), 0);
  ASSERT_TRUE(offer.has_value());
  server.tick(10000);
  EXPECT_EQ(end_events, 0);
}

TEST(Server, ReOffersSameAddressToBoundClient) {
  DhcpServer server = make_server();
  DhcpClient client{identity(8), 13};
  const auto address = client.join(server, 0);
  ASSERT_TRUE(address.has_value());
  const auto offer = server.handle(make_discover(88, identity(8)), 10);
  ASSERT_TRUE(offer.has_value());
  EXPECT_EQ(offer->yiaddr, *address);
}

TEST(Server, NaksForeignRequest) {
  DhcpServer server = make_server();
  const auto response = server.handle(
      make_request(99, identity(9), net::Ipv4Addr::must_parse("10.0.0.5"),
                   net::Ipv4Addr::must_parse("10.0.0.0")),
      0);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->message_type(), MessageType::Nak);
}

TEST(Server, IgnoresRequestForOtherServer) {
  DhcpServer server = make_server();
  DhcpClient client{identity(10), 14};
  ASSERT_TRUE(client.join(server, 0).has_value());
  const auto response = server.handle(
      make_request(100, identity(11), net::Ipv4Addr::must_parse("10.0.0.1"),
                   net::Ipv4Addr::must_parse("192.0.2.1")),  // someone else's server-id
      0);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->message_type(), MessageType::Nak);
}

TEST(Server, SilentWhenPoolExhausted) {
  DhcpServerConfig config;
  config.server_id = net::Ipv4Addr::must_parse("10.0.0.0");
  AddressPool pool;
  pool.add_range(net::Ipv4Addr::must_parse("10.0.0.1"), net::Ipv4Addr::must_parse("10.0.0.1"));
  DhcpServer server{config, std::move(pool)};
  DhcpClient first{identity(12), 15};
  ASSERT_TRUE(first.join(server, 0).has_value());
  DhcpClient second{identity(13), 16};
  EXPECT_FALSE(second.join(server, 1).has_value());
  EXPECT_EQ(server.stats().pool_exhausted, 1u);
}

TEST(Server, DropsUndecodableDatagrams) {
  DhcpServer server = make_server();
  const std::vector<std::uint8_t> junk(300, 0xAB);
  EXPECT_FALSE(server.handle_wire(junk, 0).has_value());
}

TEST(Server, RequestIdentityOverridesDiscover) {
  // Some clients send the Host Name only on REQUEST; the lease must carry
  // the freshest identity.
  DhcpServer server = make_server();
  ClientIdentity bare = identity(14, "");
  const auto offer = server.handle(make_discover(1, bare), 0);
  ASSERT_TRUE(offer.has_value());
  ClientIdentity named = bare;
  named.host_name = "Emmas-Galaxy-S21";
  const auto ack =
      server.handle(make_request(1, named, offer->yiaddr, *offer->server_identifier()), 1);
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->message_type(), MessageType::Ack);
  EXPECT_EQ(server.leases().by_address(offer->yiaddr)->host_name, "Emmas-Galaxy-S21");
}

}  // namespace
}  // namespace rdns::dhcp
