/// Tests for the DNS cache and caching resolver — including the property
/// the paper's methodology rests on: cached lookups serve STALE reverse
/// state for up to a TTL after the authoritative zone changed.

#include "dns/cache.hpp"

#include <gtest/gtest.h>

#include "dns/update.hpp"
#include "net/arpa.hpp"

namespace rdns::dns {
namespace {

SoaRdata test_soa() {
  SoaRdata soa;
  soa.mname = DnsName::must_parse("ns1.x.edu");
  soa.rname = DnsName::must_parse("hostmaster.x.edu");
  return soa;
}

DnsName owner(const char* ip) {
  return DnsName::must_parse(net::to_arpa(net::Ipv4Addr::must_parse(ip)));
}

TEST(DnsCache, PositiveHitUntilTtl) {
  DnsCache cache;
  cache.insert_positive(owner("10.128.0.1"), RrType::PTR,
                        {make_ptr(owner("10.128.0.1"), DnsName::must_parse("h.x.edu"), 60)},
                        /*now=*/1000);
  EXPECT_TRUE(cache.lookup(owner("10.128.0.1"), RrType::PTR, 1059).has_value());
  EXPECT_FALSE(cache.lookup(owner("10.128.0.1"), RrType::PTR, 1060).has_value());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(DnsCache, NegativeEntries) {
  DnsCache cache;
  cache.insert_negative(owner("10.128.0.2"), RrType::PTR, LookupStatus::NxDomain, 300, 0);
  const auto entry = cache.lookup(owner("10.128.0.2"), RrType::PTR, 299);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->status, LookupStatus::NxDomain);
  EXPECT_EQ(cache.stats().negative_hits, 1u);
  EXPECT_FALSE(cache.lookup(owner("10.128.0.2"), RrType::PTR, 300).has_value());
}

TEST(DnsCache, KeyIncludesType) {
  DnsCache cache;
  cache.insert_positive(owner("10.128.0.1"), RrType::PTR,
                        {make_ptr(owner("10.128.0.1"), DnsName::must_parse("h.x.edu"), 60)}, 0);
  EXPECT_FALSE(cache.lookup(owner("10.128.0.1"), RrType::A, 10).has_value());
}

TEST(DnsCache, LruEvictionAtCapacity) {
  DnsCache cache{3};
  for (int i = 0; i < 3; ++i) {
    const auto name = owner(("10.128.0." + std::to_string(i + 1)).c_str());
    cache.insert_positive(name, RrType::PTR, {make_ptr(name, DnsName::must_parse("h.x.edu"), 600)},
                          0);
  }
  // Touch the first entry so the second becomes LRU.
  (void)cache.lookup(owner("10.128.0.1"), RrType::PTR, 1);
  const auto fourth = owner("10.128.0.4");
  cache.insert_positive(fourth, RrType::PTR, {make_ptr(fourth, DnsName::must_parse("h.x.edu"), 600)},
                        1);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(cache.lookup(owner("10.128.0.1"), RrType::PTR, 2).has_value());
  EXPECT_FALSE(cache.lookup(owner("10.128.0.2"), RrType::PTR, 2).has_value());  // evicted
}

TEST(DnsCache, FlushEmpties) {
  DnsCache cache;
  cache.insert_positive(owner("10.128.0.1"), RrType::PTR,
                        {make_ptr(owner("10.128.0.1"), DnsName::must_parse("h.x.edu"), 600)}, 0);
  cache.flush();
  EXPECT_EQ(cache.size(), 0u);
}

class CachingResolverFixture : public ::testing::Test {
 protected:
  CachingResolverFixture()
      : zone_(server_.add_zone(DnsName::must_parse("128.10.in-addr.arpa"), test_soa())),
        transport_(server_),
        resolver_(transport_, 1000, /*default_negative_ttl=*/300) {
    zone_.add(make_ptr(owner("10.128.1.7"), DnsName::must_parse("brians-mbp.x.edu"), 300));
  }

  AuthoritativeServer server_;
  Zone& zone_;
  LoopbackTransport transport_;
  CachingResolver resolver_;
};

TEST_F(CachingResolverFixture, SecondLookupServedFromCache) {
  const auto a = net::Ipv4Addr::must_parse("10.128.1.7");
  const auto first = resolver_.lookup_ptr(a, 0);
  EXPECT_EQ(first.status, LookupStatus::Ok);
  const auto queries_after_first = server_.stats().queries;
  const auto second = resolver_.lookup_ptr(a, 10);
  EXPECT_EQ(second.status, LookupStatus::Ok);
  EXPECT_EQ(second.ptr->to_canonical_string(), "brians-mbp.x.edu");
  EXPECT_EQ(server_.stats().queries, queries_after_first);  // no upstream query
  EXPECT_EQ(resolver_.cache_stats().hits, 1u);
}

TEST_F(CachingResolverFixture, ServesStaleAnswerAfterRemoval) {
  // THE methodological point (§6.1): through a cache, the PTR looks alive
  // for up to its TTL after the authoritative record was removed.
  const auto a = net::Ipv4Addr::must_parse("10.128.1.7");
  ASSERT_EQ(resolver_.lookup_ptr(a, 0).status, LookupStatus::Ok);

  // The DHCP lease ends and the bridge removes the PTR at t=60.
  (void)server_.handle(make_ptr_delete(1, DnsName::must_parse("128.10.in-addr.arpa"), a));

  // Direct (paper-style) measurement sees the removal immediately...
  StubResolver direct{transport_};
  EXPECT_EQ(direct.lookup_ptr(a, 61).status, LookupStatus::NxDomain);
  // ...while the cached path still claims the client is there.
  EXPECT_EQ(resolver_.lookup_ptr(a, 61).status, LookupStatus::Ok);
  EXPECT_EQ(resolver_.lookup_ptr(a, 299).status, LookupStatus::Ok);
  // Only after the TTL does the cache learn the truth.
  EXPECT_EQ(resolver_.lookup_ptr(a, 301).status, LookupStatus::NxDomain);
}

TEST_F(CachingResolverFixture, NegativeCachingHidesNewClients) {
  // The phase-1 mirror image: an NXDOMAIN cached before the client joined
  // hides the new PTR for the negative TTL.
  const auto a = net::Ipv4Addr::must_parse("10.128.1.8");
  ASSERT_EQ(resolver_.lookup_ptr(a, 0).status, LookupStatus::NxDomain);

  zone_.add(make_ptr(owner("10.128.1.8"), DnsName::must_parse("emmas-ipad.x.edu"), 300));
  EXPECT_EQ(resolver_.lookup_ptr(a, 100).status, LookupStatus::NxDomain);  // stale negative
  EXPECT_EQ(resolver_.lookup_ptr(a, 301).status, LookupStatus::Ok);
}

TEST_F(CachingResolverFixture, TransientErrorsNotCached) {
  server_.set_faults(FaultPolicy{1.0, 0.0});  // always SERVFAIL
  const auto a = net::Ipv4Addr::must_parse("10.128.1.7");
  EXPECT_EQ(resolver_.lookup_ptr(a, 1000).status, LookupStatus::ServFail);
  server_.set_faults(FaultPolicy::none());
  EXPECT_EQ(resolver_.lookup_ptr(a, 1001).status, LookupStatus::Ok);  // retried upstream
}

TEST_F(CachingResolverFixture, FlushForcesRefetch) {
  const auto a = net::Ipv4Addr::must_parse("10.128.1.7");
  ASSERT_EQ(resolver_.lookup_ptr(a, 0).status, LookupStatus::Ok);
  (void)server_.handle(make_ptr_delete(2, DnsName::must_parse("128.10.in-addr.arpa"), a));
  resolver_.flush();
  EXPECT_EQ(resolver_.lookup_ptr(a, 1).status, LookupStatus::NxDomain);
}

}  // namespace
}  // namespace rdns::dns
