/// Tests for dns/name.hpp: parsing, validation, case-insensitive
/// comparison, canonical ordering and registered-domain extraction (the
/// paper's TLD+1 network index).

#include "dns/name.hpp"

#include <gtest/gtest.h>

namespace rdns::dns {
namespace {

TEST(DnsName, ParseBasics) {
  const DnsName n = DnsName::must_parse("www.Example.COM");
  EXPECT_EQ(n.label_count(), 3u);
  EXPECT_EQ(n.to_string(), "www.Example.COM");          // case preserved
  EXPECT_EQ(n.to_canonical_string(), "www.example.com"); // canonical lowercase
}

TEST(DnsName, RootForms) {
  EXPECT_TRUE(DnsName::must_parse("").is_root());
  EXPECT_TRUE(DnsName::must_parse(".").is_root());
  EXPECT_EQ(DnsName{}.to_string(), ".");
  EXPECT_EQ(DnsName{}.wire_length(), 1u);
}

TEST(DnsName, TrailingDotTolerated) {
  EXPECT_EQ(DnsName::must_parse("example.com."), DnsName::must_parse("example.com"));
}

TEST(DnsName, RejectsMalformed) {
  EXPECT_FALSE(DnsName::parse("a..b").has_value());
  EXPECT_FALSE(DnsName::parse(std::string(64, 'x') + ".com").has_value());  // label > 63
  EXPECT_FALSE(DnsName::parse("bad char.com").has_value());
  // Total name > 255 octets.
  std::string long_name;
  for (int i = 0; i < 50; ++i) long_name += "abcdef.";
  long_name += "com";
  EXPECT_FALSE(DnsName::parse(long_name).has_value());
}

TEST(DnsName, UnderscoreTolerated) {
  // Real-world PTR data contains underscores.
  EXPECT_TRUE(DnsName::parse("_dmarc.example.com").has_value());
}

TEST(DnsName, CaseInsensitiveEquality) {
  EXPECT_EQ(DnsName::must_parse("BRIANS-IPHONE.X.EDU"),
            DnsName::must_parse("brians-iphone.x.edu"));
  EXPECT_FALSE(DnsName::must_parse("a.x.edu") == DnsName::must_parse("b.x.edu"));
}

TEST(DnsName, EndsWith) {
  const DnsName n = DnsName::must_parse("host.cs.uni.edu");
  EXPECT_TRUE(n.ends_with(DnsName::must_parse("uni.edu")));
  EXPECT_TRUE(n.ends_with(DnsName::must_parse("UNI.EDU")));
  EXPECT_TRUE(n.ends_with(DnsName{}));  // every name ends with the root
  EXPECT_FALSE(n.ends_with(DnsName::must_parse("other.edu")));
  EXPECT_FALSE(DnsName::must_parse("edu").ends_with(n));
}

TEST(DnsName, PrependConcatSuffix) {
  const DnsName base = DnsName::must_parse("wifi.x.edu");
  EXPECT_EQ(base.prepend("brians-ipad").to_string(), "brians-ipad.wifi.x.edu");
  EXPECT_EQ(DnsName::must_parse("a.b").concat(DnsName::must_parse("c.d")).to_string(),
            "a.b.c.d");
  EXPECT_EQ(base.suffix(1).to_string(), "x.edu");
  EXPECT_EQ(base.suffix(3).to_string(), ".");
  EXPECT_THROW((void)base.suffix(4), std::out_of_range);
}

TEST(DnsName, CanonicalOrderingGroupsChildren) {
  // Right-to-left label ordering: children sort adjacent to their parent.
  const DnsName apex = DnsName::must_parse("x.edu");
  const DnsName child = DnsName::must_parse("a.x.edu");
  const DnsName other = DnsName::must_parse("y.edu");
  EXPECT_LT(apex, child);
  EXPECT_LT(child, other);
}

/// registered_domain drives the paper's per-suffix (TLD+1) indexing.
struct RegDomainCase {
  const char* input;
  const char* expected;
};

class RegisteredDomain : public ::testing::TestWithParam<RegDomainCase> {};

TEST_P(RegisteredDomain, Extracts) {
  EXPECT_EQ(DnsName::must_parse(GetParam().input).registered_domain().to_canonical_string(),
            GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, RegisteredDomain,
    ::testing::Values(RegDomainCase{"brians-iphone.wifi.uni.edu", "uni.edu"},
                      RegDomainCase{"uni.edu", "uni.edu"},
                      RegDomainCase{"edu", "edu"},
                      RegDomainCase{"host.dept.college.ac.uk", "college.ac.uk"},
                      RegDomainCase{"a.b.c.someisp.com", "someisp.com"},
                      RegDomainCase{"x.co.jp", "x.co.jp"}));

TEST(DnsName, WireLength) {
  // 3www7example3com0 -> 1+3 + 1+7 + 1+3 + 1 = 17.
  EXPECT_EQ(DnsName::must_parse("www.example.com").wire_length(), 17u);
}

TEST(IsValidLabel, Rules) {
  EXPECT_TRUE(is_valid_label("abc-123"));
  EXPECT_TRUE(is_valid_label("a"));
  EXPECT_FALSE(is_valid_label(""));
  EXPECT_FALSE(is_valid_label(std::string(64, 'a')));
  EXPECT_FALSE(is_valid_label("has space"));
  EXPECT_FALSE(is_valid_label("quote'"));
}

TEST(DnsName, HashConsistentWithEquality) {
  const std::hash<DnsName> h;
  EXPECT_EQ(h(DnsName::must_parse("A.B.C")), h(DnsName::must_parse("a.b.c")));
}

}  // namespace
}  // namespace rdns::dns
