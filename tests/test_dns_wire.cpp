/// Tests for the RFC 1035 wire codec: round trips across record types,
/// name compression, and robustness against malformed input.

#include "dns/wire.hpp"

#include <gtest/gtest.h>

#include "net/arpa.hpp"
#include "util/rng.hpp"

namespace rdns::dns {
namespace {

Message sample_ptr_response() {
  Message query = make_ptr_query(0x1234, net::Ipv4Addr::must_parse("10.10.128.7"));
  Message response = make_response(query, Rcode::NoError);
  response.answers.push_back(make_ptr(query.questions[0].qname,
                                      DnsName::must_parse("brians-iphone.wifi.x.edu"), 300));
  return response;
}

TEST(Wire, HeaderRoundTrip) {
  Message m;
  m.id = 0xBEEF;
  m.flags.qr = true;
  m.flags.aa = true;
  m.flags.rd = true;
  m.flags.ra = true;
  m.flags.opcode = Opcode::Update;
  m.flags.rcode = Rcode::NxDomain;
  const Message decoded = decode(encode(m));
  EXPECT_EQ(decoded, m);
}

TEST(Wire, PtrQueryRoundTrip) {
  const Message query = make_ptr_query(7, net::Ipv4Addr::must_parse("93.184.216.34"));
  const Message decoded = decode(encode(query));
  EXPECT_EQ(decoded, query);
  EXPECT_EQ(decoded.questions[0].qname.to_canonical_string(),
            "34.216.184.93.in-addr.arpa");
  EXPECT_EQ(decoded.questions[0].qtype, RrType::PTR);
}

TEST(Wire, FullResponseRoundTrip) {
  const Message m = sample_ptr_response();
  EXPECT_EQ(decode(encode(m)), m);
}

TEST(Wire, AllRdataTypesRoundTrip) {
  const DnsName owner = DnsName::must_parse("x.example.com");
  Message m;
  m.id = 1;
  m.answers.push_back(make_a(owner, net::Ipv4Addr::must_parse("192.0.2.1"), 60));
  m.answers.push_back(make_ns(owner, DnsName::must_parse("ns1.example.com")));
  m.answers.push_back(
      ResourceRecord{owner, RrClass::IN, 60, CnameRdata{DnsName::must_parse("y.example.com")}});
  m.answers.push_back(make_soa(owner, SoaRdata{DnsName::must_parse("ns1.example.com"),
                                               DnsName::must_parse("hostmaster.example.com"),
                                               2021, 7200, 900, 1209600, 300}));
  m.answers.push_back(make_ptr(owner, DnsName::must_parse("target.example.com")));
  m.answers.push_back(make_txt(owner, {"hello", "world"}));
  m.answers.push_back(ResourceRecord{owner, RrClass::IN, 60, RawRdata{999, {1, 2, 3}}});
  EXPECT_EQ(decode(encode(m)), m);
}

TEST(Wire, CompressionShrinksRepeatedSuffixes) {
  Message m;
  m.id = 2;
  const DnsName suffix = DnsName::must_parse("very-long-domain-name.example.edu");
  for (int i = 0; i < 10; ++i) {
    m.answers.push_back(make_ptr(suffix.prepend("h" + std::to_string(i)), suffix));
  }
  const auto wire = encode(m);
  // Without compression each of the 20 names would re-encode the 35-octet
  // suffix; with compression the total must be far smaller.
  std::size_t uncompressed_estimate = 12;
  for (const auto& rr : m.answers) {
    uncompressed_estimate += rr.name.wire_length() + 10 +
                             std::get<PtrRdata>(rr.rdata).ptrdname.wire_length();
  }
  EXPECT_LT(wire.size(), uncompressed_estimate / 2);
  EXPECT_EQ(decode(wire), m);
}

TEST(Wire, CompressionPreservesCase) {
  Message m;
  m.id = 3;
  m.questions.push_back(Question{DnsName::must_parse("MiXeD.Example.COM"), RrType::A,
                                 RrClass::IN});
  m.answers.push_back(make_a(DnsName::must_parse("other.example.com"),
                             net::Ipv4Addr::must_parse("192.0.2.5")));
  const Message decoded = decode(encode(m));
  // The question keeps its case; the answer name may be compressed against
  // it but equality is case-insensitive anyway.
  EXPECT_EQ(decoded.questions[0].qname.to_string(), "MiXeD.Example.COM");
  EXPECT_EQ(decoded.answers[0].name, m.answers[0].name);
}

TEST(Wire, EmptyRdataTombstoneRoundTrip) {
  // RFC 2136 delete-RRset: class ANY, TTL 0, empty RDATA of the RRset type.
  Message m;
  m.id = 4;
  m.flags.opcode = Opcode::Update;
  m.questions.push_back(
      Question{DnsName::must_parse("128.10.in-addr.arpa"), RrType::SOA, RrClass::IN});
  ResourceRecord tombstone;
  tombstone.name = DnsName::must_parse("7.0.128.10.in-addr.arpa");
  tombstone.klass = RrClass::ANY;
  tombstone.ttl = 0;
  tombstone.rdata = RawRdata{static_cast<std::uint16_t>(RrType::PTR), {}};
  m.authority.push_back(tombstone);
  const Message decoded = decode(encode(m));
  ASSERT_EQ(decoded.authority.size(), 1u);
  EXPECT_EQ(decoded.authority[0].type(), RrType::PTR);
  EXPECT_EQ(decoded.authority[0].klass, RrClass::ANY);
  EXPECT_TRUE(std::get<RawRdata>(decoded.authority[0].rdata).data.empty());
}

TEST(Wire, RejectsTruncatedHeader) {
  const std::vector<std::uint8_t> short_wire{1, 2, 3};
  EXPECT_THROW((void)decode(short_wire), WireError);
}

TEST(Wire, RejectsTruncatedQuestion) {
  auto wire = encode(make_query(1, DnsName::must_parse("a.example.com"), RrType::A));
  wire.resize(wire.size() - 3);
  EXPECT_THROW((void)decode(wire), WireError);
}

TEST(Wire, RejectsCompressionLoop) {
  // Header claiming 1 question whose name is a pointer to itself.
  std::vector<std::uint8_t> wire(12, 0);
  wire[5] = 1;  // qdcount = 1
  wire.push_back(0xC0);
  wire.push_back(12);  // pointer to offset 12 (itself)
  wire.push_back(0);
  wire.push_back(1);
  wire.push_back(0);
  wire.push_back(1);
  EXPECT_THROW((void)decode(wire), WireError);
}

TEST(Wire, RejectsOutOfRangePointer) {
  std::vector<std::uint8_t> wire(12, 0);
  wire[5] = 1;
  wire.push_back(0xC3);  // pointer to offset 0x3FF (past the end)
  wire.push_back(0xFF);
  wire.push_back(0);
  wire.push_back(1);
  wire.push_back(0);
  wire.push_back(1);
  EXPECT_THROW((void)decode(wire), WireError);
}

TEST(Wire, RejectsBadARdataLength) {
  Message m;
  m.id = 9;
  m.answers.push_back(ResourceRecord{DnsName::must_parse("x.com"), RrClass::IN, 60,
                                     RawRdata{static_cast<std::uint16_t>(RrType::A), {1, 2}}});
  const auto wire = encode(m);
  EXPECT_THROW((void)decode(wire), WireError);
}

/// Fuzz-ish robustness: decoding arbitrary corruptions must either succeed
/// or throw WireError — never crash or loop.
class WireFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireFuzz, NeverCrashes) {
  auto wire = encode(sample_ptr_response());
  util::Rng rng{GetParam()};
  for (int i = 0; i < 200; ++i) {
    auto corrupted = wire;
    const std::size_t flips = 1 + rng.index(4);
    for (std::size_t f = 0; f < flips; ++f) {
      corrupted[rng.index(corrupted.size())] ^=
          static_cast<std::uint8_t>(1u << rng.index(8));
    }
    try {
      (void)decode(corrupted);
    } catch (const WireError&) {
      // acceptable
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzz, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(MessageText, RenderingContainsSections) {
  const std::string text = sample_ptr_response().to_string();
  EXPECT_NE(text.find("QUESTION"), std::string::npos);
  EXPECT_NE(text.find("ANSWER"), std::string::npos);
  EXPECT_NE(text.find("brians-iphone"), std::string::npos);
  EXPECT_NE(text.find("NOERROR"), std::string::npos);
}

}  // namespace
}  // namespace rdns::dns
