/// Tests for zones, the authoritative server (answers, negative responses,
/// fault injection), dynamic updates and the stub resolver.

#include <gtest/gtest.h>

#include "dns/resolver.hpp"
#include "dns/server.hpp"
#include "dns/update.hpp"
#include "dns/wire.hpp"
#include "net/arpa.hpp"

namespace rdns::dns {
namespace {

SoaRdata test_soa() {
  SoaRdata soa;
  soa.mname = DnsName::must_parse("ns1.x.edu");
  soa.rname = DnsName::must_parse("hostmaster.x.edu");
  soa.serial = 100;
  return soa;
}

DnsName arpa_of(const char* ip) {
  return DnsName::must_parse(net::to_arpa(net::Ipv4Addr::must_parse(ip)));
}

TEST(Zone, AddFindRemove) {
  Zone zone{DnsName::must_parse("128.10.in-addr.arpa"), test_soa()};
  const DnsName owner = arpa_of("10.128.1.7");
  zone.add(make_ptr(owner, DnsName::must_parse("brians-ipad.x.edu")));
  EXPECT_EQ(zone.find(owner, RrType::PTR).size(), 1u);
  EXPECT_TRUE(zone.has_name(owner));
  EXPECT_EQ(zone.remove(owner, RrType::PTR), 1u);
  EXPECT_TRUE(zone.find(owner, RrType::PTR).empty());
  EXPECT_FALSE(zone.has_name(owner));
}

TEST(Zone, DuplicateAddIgnored) {
  Zone zone{DnsName::must_parse("128.10.in-addr.arpa"), test_soa()};
  const auto rr = make_ptr(arpa_of("10.128.1.7"), DnsName::must_parse("h.x.edu"));
  zone.add(rr);
  const auto serial = zone.serial();
  zone.add(rr);
  EXPECT_EQ(zone.serial(), serial);  // no change, no serial bump
  EXPECT_EQ(zone.find(rr.name, RrType::PTR).size(), 1u);
}

TEST(Zone, SerialBumpsOnMutation) {
  Zone zone{DnsName::must_parse("128.10.in-addr.arpa"), test_soa()};
  const auto s0 = zone.serial();
  zone.add(make_ptr(arpa_of("10.128.1.7"), DnsName::must_parse("h.x.edu")));
  EXPECT_GT(zone.serial(), s0);
}

TEST(Zone, RejectsOutOfZoneOwner) {
  Zone zone{DnsName::must_parse("128.10.in-addr.arpa"), test_soa()};
  EXPECT_THROW(zone.add(make_ptr(arpa_of("10.99.1.7"), DnsName::must_parse("h.x.edu"))),
               std::invalid_argument);
}

TEST(Zone, RemoveExactAndAll) {
  Zone zone{DnsName::must_parse("128.10.in-addr.arpa"), test_soa()};
  const DnsName owner = arpa_of("10.128.1.7");
  const auto rr1 = make_ptr(owner, DnsName::must_parse("a.x.edu"));
  const auto rr2 = make_ptr(owner, DnsName::must_parse("b.x.edu"));
  zone.add(rr1);
  zone.add(rr2);
  EXPECT_TRUE(zone.remove_exact(rr1));
  EXPECT_FALSE(zone.remove_exact(rr1));
  EXPECT_EQ(zone.find(owner, RrType::PTR).size(), 1u);
  EXPECT_EQ(zone.remove_all(owner), 1u);
}

TEST(Zone, ApexSoaAlwaysFindable) {
  Zone zone{DnsName::must_parse("128.10.in-addr.arpa"), test_soa()};
  const auto soa = zone.find(zone.origin(), RrType::SOA);
  ASSERT_EQ(soa.size(), 1u);
  EXPECT_TRUE(zone.has_name(zone.origin()));
}

TEST(Zone, NamesWithTypeAndForEach) {
  Zone zone{DnsName::must_parse("128.10.in-addr.arpa"), test_soa()};
  zone.add(make_ptr(arpa_of("10.128.0.1"), DnsName::must_parse("a.x.edu")));
  zone.add(make_ptr(arpa_of("10.128.0.2"), DnsName::must_parse("b.x.edu")));
  EXPECT_EQ(zone.names_with_type(RrType::PTR).size(), 2u);
  std::size_t ptrs = 0;
  zone.for_each([&ptrs](const ResourceRecord& rr) { ptrs += rr.type() == RrType::PTR; });
  EXPECT_EQ(ptrs, 2u);
}

class ServerFixture : public ::testing::Test {
 protected:
  ServerFixture() : zone_(server_.add_zone(DnsName::must_parse("128.10.in-addr.arpa"), test_soa())) {
    zone_.add(make_ptr(arpa_of("10.128.1.7"), DnsName::must_parse("brians-mbp.x.edu"), 300));
  }

  AuthoritativeServer server_;
  Zone& zone_;
};

TEST_F(ServerFixture, AnswersPositive) {
  const auto response = server_.handle(make_ptr_query(1, net::Ipv4Addr::must_parse("10.128.1.7")));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->flags.rcode, Rcode::NoError);
  EXPECT_TRUE(response->flags.aa);
  ASSERT_EQ(response->answers.size(), 1u);
  EXPECT_EQ(std::get<PtrRdata>(response->answers[0].rdata).ptrdname.to_canonical_string(),
            "brians-mbp.x.edu");
  EXPECT_EQ(server_.stats().answered, 1u);
}

TEST_F(ServerFixture, NxDomainWithSoa) {
  const auto response = server_.handle(make_ptr_query(2, net::Ipv4Addr::must_parse("10.128.1.8")));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->flags.rcode, Rcode::NxDomain);
  ASSERT_EQ(response->authority.size(), 1u);
  EXPECT_EQ(response->authority[0].type(), RrType::SOA);
  EXPECT_EQ(server_.stats().nxdomain, 1u);
}

TEST_F(ServerFixture, NoDataForWrongType) {
  const auto response =
      server_.handle(make_query(3, arpa_of("10.128.1.7"), RrType::A));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->flags.rcode, Rcode::NoError);
  EXPECT_TRUE(response->answers.empty());
  EXPECT_EQ(server_.stats().nodata, 1u);
}

TEST_F(ServerFixture, RefusesOutOfZone) {
  const auto response = server_.handle(make_ptr_query(4, net::Ipv4Addr::must_parse("10.99.1.1")));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->flags.rcode, Rcode::Refused);
}

TEST_F(ServerFixture, UpdateAddAndDelete) {
  const auto owner_ip = net::Ipv4Addr::must_parse("10.128.2.2");
  const DnsName zone_origin = DnsName::must_parse("128.10.in-addr.arpa");
  const auto add = make_ptr_replace(10, zone_origin, owner_ip,
                                    DnsName::must_parse("emmas-galaxy.x.edu"), 300);
  const auto add_response = server_.handle(add);
  ASSERT_TRUE(add_response.has_value());
  EXPECT_EQ(add_response->flags.rcode, Rcode::NoError);
  EXPECT_EQ(zone_.find(arpa_of("10.128.2.2"), RrType::PTR).size(), 1u);

  const auto del = make_ptr_delete(11, zone_origin, owner_ip);
  ASSERT_TRUE(server_.handle(del).has_value());
  EXPECT_TRUE(zone_.find(arpa_of("10.128.2.2"), RrType::PTR).empty());
  EXPECT_EQ(server_.stats().updates, 2u);
}

TEST_F(ServerFixture, UpdateReplaceSwapsTarget) {
  const auto ip = net::Ipv4Addr::must_parse("10.128.1.7");
  const DnsName zone_origin = DnsName::must_parse("128.10.in-addr.arpa");
  (void)server_.handle(
      make_ptr_replace(12, zone_origin, ip, DnsName::must_parse("host-10-128-1-7.dyn.x.edu"), 300));
  const auto records = zone_.find(arpa_of("10.128.1.7"), RrType::PTR);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(std::get<PtrRdata>(records[0].rdata).ptrdname.to_canonical_string(),
            "host-10-128-1-7.dyn.x.edu");
}

TEST_F(ServerFixture, UpdateDeleteExact) {
  const DnsName owner = arpa_of("10.128.3.3");
  zone_.add(make_ptr(owner, DnsName::must_parse("a.x.edu")));
  zone_.add(make_ptr(owner, DnsName::must_parse("b.x.edu")));
  UpdateBuilder builder{13, DnsName::must_parse("128.10.in-addr.arpa")};
  builder.delete_exact(make_ptr(owner, DnsName::must_parse("a.x.edu")));
  ASSERT_TRUE(server_.handle(builder.build()).has_value());
  const auto left = zone_.find(owner, RrType::PTR);
  ASSERT_EQ(left.size(), 1u);
  EXPECT_EQ(std::get<PtrRdata>(left[0].rdata).ptrdname.to_canonical_string(), "b.x.edu");
}

TEST_F(ServerFixture, UpdateDeleteName) {
  const DnsName owner = arpa_of("10.128.4.4");
  zone_.add(make_ptr(owner, DnsName::must_parse("a.x.edu")));
  zone_.add(make_txt(owner, {"meta"}));
  UpdateBuilder builder{14, DnsName::must_parse("128.10.in-addr.arpa")};
  builder.delete_name(owner);
  ASSERT_TRUE(server_.handle(builder.build()).has_value());
  EXPECT_FALSE(zone_.has_name(owner));
}

TEST_F(ServerFixture, UpdateRejectsWrongZone) {
  const auto update = make_ptr_replace(15, DnsName::must_parse("99.10.in-addr.arpa"),
                                       net::Ipv4Addr::must_parse("10.99.0.1"),
                                       DnsName::must_parse("x.y"), 300);
  const auto response = server_.handle(update);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->flags.rcode, Rcode::NotZone);
}

TEST(ServerFaults, InjectsServFailAndTimeouts) {
  AuthoritativeServer server{FaultPolicy{0.5, 0.2}, 42};
  server.add_zone(DnsName::must_parse("128.10.in-addr.arpa"), test_soa());
  int servfail = 0, timeout = 0, other = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto r = server.handle(make_ptr_query(static_cast<std::uint16_t>(i),
                                                net::Ipv4Addr::must_parse("10.128.0.1")));
    if (!r) ++timeout;
    else if (r->flags.rcode == Rcode::ServFail) ++servfail;
    else ++other;
  }
  EXPECT_NEAR(timeout / 2000.0, 0.2, 0.05);
  EXPECT_NEAR(servfail / 2000.0, 0.5 * 0.8, 0.05);
  EXPECT_EQ(server.stats().timeouts_injected, static_cast<std::uint64_t>(timeout));
}

TEST(Resolver, PositiveLookupThroughWire) {
  AuthoritativeServer server;
  Zone& zone = server.add_zone(DnsName::must_parse("128.10.in-addr.arpa"), test_soa());
  zone.add(make_ptr(arpa_of("10.128.1.7"), DnsName::must_parse("brians-air.x.edu")));
  LoopbackTransport transport{server};
  StubResolver resolver{transport};
  const auto result = resolver.lookup_ptr(net::Ipv4Addr::must_parse("10.128.1.7"), 0);
  EXPECT_EQ(result.status, LookupStatus::Ok);
  ASSERT_TRUE(result.ptr.has_value());
  EXPECT_EQ(result.ptr->to_canonical_string(), "brians-air.x.edu");
  EXPECT_EQ(resolver.stats().ok, 1u);
}

TEST(Resolver, ClassifiesNegativeOutcomes) {
  AuthoritativeServer server;
  server.add_zone(DnsName::must_parse("128.10.in-addr.arpa"), test_soa());
  LoopbackTransport transport{server};
  StubResolver resolver{transport};
  EXPECT_EQ(resolver.lookup_ptr(net::Ipv4Addr::must_parse("10.128.1.1"), 0).status,
            LookupStatus::NxDomain);
  EXPECT_EQ(resolver.lookup_ptr(net::Ipv4Addr::must_parse("10.99.0.1"), 0).status,
            LookupStatus::Refused);
}

TEST(Resolver, RetriesOnTimeoutThenGivesUp) {
  AuthoritativeServer server{FaultPolicy{0.0, 1.0}};  // always times out
  server.add_zone(DnsName::must_parse("128.10.in-addr.arpa"), test_soa());
  LoopbackTransport transport{server};
  StubResolver resolver{transport, /*retries=*/2};
  const auto result = resolver.lookup_ptr(net::Ipv4Addr::must_parse("10.128.1.1"), 0);
  EXPECT_EQ(result.status, LookupStatus::Timeout);
  EXPECT_EQ(result.attempts, 3);
  EXPECT_EQ(resolver.stats().timeout, 1u);
  EXPECT_EQ(resolver.stats().queries_sent, 3u);
}

TEST(Server, FindZonePicksMostSpecific) {
  AuthoritativeServer server;
  server.add_zone(DnsName::must_parse("10.in-addr.arpa"), test_soa());
  Zone& specific = server.add_zone(DnsName::must_parse("128.10.in-addr.arpa"), test_soa());
  EXPECT_EQ(server.find_zone(arpa_of("10.128.1.1")), &specific);
  EXPECT_EQ(server.zone_count(), 2u);
}

}  // namespace
}  // namespace rdns::dns
