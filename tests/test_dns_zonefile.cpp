/// Tests for the RFC 1035 master-file codec: serialization round trips,
/// directive handling, relative names, multi-line SOA, error reporting.

#include "dns/zonefile.hpp"

#include <gtest/gtest.h>

#include "net/arpa.hpp"

namespace rdns::dns {
namespace {

SoaRdata test_soa() {
  SoaRdata soa;
  soa.mname = DnsName::must_parse("ns1.x.edu");
  soa.rname = DnsName::must_parse("hostmaster.x.edu");
  soa.serial = 2021112901;
  return soa;
}

TEST(ZoneFile, SerializeContainsOriginAndRecords) {
  Zone zone{DnsName::must_parse("128.10.in-addr.arpa"), test_soa()};
  zone.add(make_ptr(DnsName::must_parse("7.1.128.10.in-addr.arpa"),
                    DnsName::must_parse("brians-iphone.wifi.x.edu"), 300));
  const std::string text = to_zone_file(zone);
  EXPECT_NE(text.find("$ORIGIN 128.10.in-addr.arpa."), std::string::npos);
  EXPECT_NE(text.find("SOA"), std::string::npos);
  EXPECT_NE(text.find("7.1"), std::string::npos);  // relative owner
  EXPECT_NE(text.find("brians-iphone.wifi.x.edu."), std::string::npos);
}

TEST(ZoneFile, RoundTripPreservesZone) {
  Zone zone{DnsName::must_parse("128.10.in-addr.arpa"), test_soa()};
  for (std::uint32_t i = 1; i <= 20; ++i) {
    zone.add(make_ptr(
        DnsName::must_parse(net::to_arpa(net::Ipv4Addr{0x0A800100u + i})),
        DnsName::must_parse("host-" + std::to_string(i) + ".wifi.x.edu"), 300));
  }
  zone.add(make_txt(DnsName::must_parse("128.10.in-addr.arpa"), {"managed by", "ipam"}));

  const Zone reparsed = parse_zone(to_zone_file(zone));
  EXPECT_EQ(reparsed.origin(), zone.origin());
  EXPECT_EQ(reparsed.soa().serial, zone.soa().serial);
  EXPECT_EQ(reparsed.soa().minimum, zone.soa().minimum);
  // Every PTR survives with its target.
  for (std::uint32_t i = 1; i <= 20; ++i) {
    const auto records = reparsed.find(
        DnsName::must_parse(net::to_arpa(net::Ipv4Addr{0x0A800100u + i})), RrType::PTR);
    ASSERT_EQ(records.size(), 1u) << i;
    EXPECT_EQ(std::get<PtrRdata>(records[0].rdata).ptrdname.to_canonical_string(),
              "host-" + std::to_string(i) + ".wifi.x.edu");
  }
  const auto txt = reparsed.find(reparsed.origin(), RrType::TXT);
  ASSERT_EQ(txt.size(), 1u);
  EXPECT_EQ(std::get<TxtRdata>(txt[0].rdata).strings,
            (std::vector<std::string>{"managed by", "ipam"}));
}

TEST(ZoneFile, ParsesHandWrittenFile) {
  const std::string text = R"(
$ORIGIN 128.10.in-addr.arpa.
$TTL 900
@   IN SOA ns1.x.edu. hostmaster.x.edu. (
        2021112901 ; serial
        7200       ; refresh
        900        ; retry
        1209600    ; expire
        300 )      ; minimum
    IN NS ns1.x.edu.
7.1 IN PTR brians-iphone.wifi.x.edu.
8.1 300 IN PTR emmas-ipad.wifi.x.edu.
9.1 IN 600 PTR host-9.dyn.x.edu.   ; class before TTL
)";
  const auto records = parse_zone_file(text);
  ASSERT_EQ(records.size(), 5u);
  EXPECT_EQ(records[0].type(), RrType::SOA);
  EXPECT_EQ(std::get<SoaRdata>(records[0].rdata).serial, 2021112901u);
  EXPECT_EQ(records[2].name.to_canonical_string(), "7.1.128.10.in-addr.arpa");
  EXPECT_EQ(records[2].ttl, 900u);   // $TTL default
  EXPECT_EQ(records[3].ttl, 300u);   // explicit TTL
  EXPECT_EQ(records[4].ttl, 600u);   // TTL after class
}

TEST(ZoneFile, BlankOwnerRepeatsPrevious) {
  const std::string text =
      "$ORIGIN x.edu.\n"
      "host1 IN A 192.0.2.1\n"
      "      IN TXT \"same owner\"\n";
  const auto records = parse_zone_file(text);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].name, records[0].name);
}

TEST(ZoneFile, AtSignIsOrigin) {
  const auto records = parse_zone_file("$ORIGIN x.edu.\n@ IN A 192.0.2.1\n");
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].name.to_canonical_string(), "x.edu");
}

TEST(ZoneFile, DefaultOriginParameter) {
  const auto records =
      parse_zone_file("www IN A 192.0.2.1\n", DnsName::must_parse("x.edu"));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].name.to_canonical_string(), "www.x.edu");
}

TEST(ZoneFile, ErrorsCarryLineNumbers) {
  try {
    (void)parse_zone_file("$ORIGIN x.edu.\nhost1 IN A not-an-ip\n");
    FAIL() << "expected ZoneFileError";
  } catch (const ZoneFileError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(ZoneFile, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_zone_file("$TTL abc\n"), ZoneFileError);
  EXPECT_THROW((void)parse_zone_file("$BOGUS x\n"), ZoneFileError);
  EXPECT_THROW((void)parse_zone_file("h IN WKS 1.2.3.4\n", DnsName::must_parse("x.edu")),
               ZoneFileError);
  EXPECT_THROW((void)parse_zone_file("h IN A\n", DnsName::must_parse("x.edu")), ZoneFileError);
  EXPECT_THROW((void)parse_zone_file("h IN TXT \"unterminated\n", DnsName::must_parse("x.edu")),
               ZoneFileError);
  EXPECT_THROW((void)parse_zone_file("h IN SOA a. b. (1 2 3 4\n", DnsName::must_parse("x.edu")),
               ZoneFileError);
  EXPECT_THROW((void)parse_zone_file("  IN A 192.0.2.1\n"), ZoneFileError);  // no owner yet
}

TEST(ZoneFile, ParseZoneRequiresExactlyOneSoa) {
  EXPECT_THROW((void)parse_zone("x IN A 192.0.2.1\n", DnsName::must_parse("x.edu")),
               ZoneFileError);
  const std::string two_soas =
      "$ORIGIN x.edu.\n"
      "@ IN SOA ns1.x.edu. h.x.edu. (1 2 3 4 5)\n"
      "@ IN SOA ns2.x.edu. h.x.edu. (1 2 3 4 5)\n";
  EXPECT_THROW((void)parse_zone(two_soas), ZoneFileError);
}

TEST(ZoneFile, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "; a reverse zone export\n"
      "\n"
      "$ORIGIN x.edu.\n"
      "h IN A 192.0.2.1 ; trailing comment\n";
  EXPECT_EQ(parse_zone_file(text).size(), 1u);
}

}  // namespace
}  // namespace rdns::dns
