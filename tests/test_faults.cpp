/// util::faults unit coverage plus end-to-end resilience guarantees: the
/// decision hash is pure and probability-faithful, chaos-profile sweeps are
/// byte-identical at every pool size (CSV and journal), the invariant
/// auditor accepts real faulted journals but catches hand-forged back-off
/// violations, broken-ddns departures surface as excused stale PTRs (the
/// Fig. 7 failure tail), and a blackout profile drives shards through the
/// budget-exhaustion → re-run → degraded-row path.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "core/journal_audit.hpp"
#include "core/timing.hpp"
#include "scan/csv_replay.hpp"
#include "scan/rdns_snapshot.hpp"
#include "scan/reactive.hpp"
#include "sim/world.hpp"
#include "util/faults.hpp"
#include "util/journal.hpp"
#include "util/thread_pool.hpp"

namespace rdns {
namespace {

using util::CivilDate;
using util::faults::Injector;
using util::faults::Profile;
using util::faults::Site;
using util::faults::roll;

/// Restores the zero-cost disabled state no matter how a test exits.
struct InjectorGuard {
  InjectorGuard() = default;
  ~InjectorGuard() { Injector::global().disable(); }
};

TEST(FaultRoll, IsPureAndEdgeExact) {
  for (int rep = 0; rep < 3; ++rep) {
    EXPECT_TRUE(roll(7, Site::DnsTimeout, 42, 0, 0.5) ==
                roll(7, Site::DnsTimeout, 42, 0, 0.5));
  }
  EXPECT_FALSE(roll(7, Site::DnsTimeout, 42, 0, 0.0));
  EXPECT_FALSE(roll(7, Site::DnsTimeout, 42, 0, -1.0));
  EXPECT_TRUE(roll(7, Site::DnsTimeout, 42, 0, 1.0));
}

TEST(FaultRoll, FrequencyTracksProbability) {
  constexpr int kDraws = 100000;
  for (const double p : {0.02, 0.1, 0.5}) {
    int hits = 0;
    for (std::uint64_t entity = 0; entity < kDraws; ++entity) {
      hits += roll(0xC0FFEE, Site::DnsServfail, entity, 0, p) ? 1 : 0;
    }
    const double rate = static_cast<double>(hits) / kDraws;
    // 100k Bernoulli draws: 6 sigma is well under 0.01 for these p.
    EXPECT_NEAR(rate, p, 0.01) << "p=" << p;
  }
}

TEST(FaultRoll, ArgumentsDecorrelate) {
  // Flipping any one argument must change some outcomes: if seed, site or
  // attempt were ignored, the two streams would agree everywhere.
  int seed_diff = 0, site_diff = 0, attempt_diff = 0;
  for (std::uint64_t entity = 0; entity < 2000; ++entity) {
    seed_diff += roll(1, Site::DnsTimeout, entity, 0, 0.5) !=
                 roll(2, Site::DnsTimeout, entity, 0, 0.5);
    site_diff += roll(1, Site::DnsTimeout, entity, 0, 0.5) !=
                 roll(1, Site::DnsServfail, entity, 0, 0.5);
    attempt_diff += roll(1, Site::DnsTimeout, entity, 0, 0.5) !=
                    roll(1, Site::DnsTimeout, entity, 1, 0.5);
  }
  EXPECT_GT(seed_diff, 500);
  EXPECT_GT(site_diff, 500);
  EXPECT_GT(attempt_diff, 500);
}

TEST(FaultProfiles, LookupAndNames) {
  const Profile* none = util::faults::find_profile("none");
  ASSERT_NE(none, nullptr);
  EXPECT_FALSE(none->any());
  for (const char* name : {"flaky-dns", "lossy-net", "broken-ddns", "degraded"}) {
    const Profile* p = util::faults::find_profile(name);
    ASSERT_NE(p, nullptr) << name;
    EXPECT_TRUE(p->any()) << name;
    EXPECT_NE(util::faults::profile_names().find(name), std::string::npos);
  }
  EXPECT_EQ(util::faults::find_profile("chaotic-evil"), nullptr);
}

TEST(FaultInjector, ArmsIffProfileHasProbability) {
  InjectorGuard guard;
  Injector& inj = Injector::global();
  inj.disable();
  EXPECT_EQ(util::faults::active(), nullptr);
  EXPECT_STREQ(inj.profile_name(), "none");

  inj.configure(*util::faults::find_profile("flaky-dns"));
  ASSERT_EQ(util::faults::active(), &inj);
  EXPECT_STREQ(inj.profile_name(), "flaky-dns");
  EXPECT_EQ(inj.profile().shard_retry_budget, 64u);

  // The all-zero profile disarms: configure() arms iff any() — and a
  // disarmed injector reports "none" whatever was installed last.
  inj.configure(*util::faults::find_profile("none"));
  EXPECT_EQ(util::faults::active(), nullptr);
  EXPECT_STREQ(inj.profile_name(), "none");
  EXPECT_FALSE(inj.should_fail(Site::DnsTimeout, 1));
}

/// Same single-org recipe as the journal-determinism tests.
sim::OrgSpec office_org() {
  sim::OrgSpec o;
  o.name = "Academic-T";
  o.type = sim::OrgType::Academic;
  o.suffix = dns::DnsName::must_parse("faults-test.edu");
  o.announced = {net::Prefix::must_parse("10.93.0.0/16")};
  o.measurement_targets = {net::Prefix::must_parse("10.93.64.0/24")};
  sim::SegmentSpec seg;
  seg.label = "wifi";
  seg.prefix = net::Prefix::must_parse("10.93.64.0/24");
  seg.schedule = sim::ScheduleKind::OfficeWorker;
  seg.user_count = 25;
  seg.lease_seconds = 3600;
  o.segments = {seg};
  o.seed = 4242;
  return o;
}

struct FaultedRun {
  std::string journal;
  std::string csv;
};

/// World evolved to mid-afternoon with the profile armed, then one wire
/// sweep on `threads` workers; returns journal + CSV bytes.
FaultedRun faulted_sweep(unsigned threads, const Profile& profile, const std::string& path) {
  Injector::global().configure(profile);
  auto& journal = util::journal::Journal::global();
  util::journal::RunManifest manifest;
  manifest.tool = "test.faults";
  manifest.version = util::journal::version_string();
  manifest.seed = 99;
  manifest.faults = Injector::global().profile_name();
  manifest.threads = threads;
  journal.set_manifest(manifest);
  EXPECT_TRUE(journal.open(path));

  auto world = std::make_unique<sim::World>();
  world->add_org(office_org());
  world->start(CivilDate{2021, 11, 1}, CivilDate{2021, 11, 5});
  world->run_until(util::to_sim_time(CivilDate{2021, 11, 3}) + 14 * util::kHour);

  util::ThreadPool pool{threads};
  std::ostringstream csv;
  scan::CsvSnapshotSink sink{csv};
  scan::sweep_wire(*world, CivilDate{2021, 11, 3}, sink, nullptr, &pool);

  journal.close();
  Injector::global().disable();
  std::ifstream in{path, std::ios::binary};
  std::ostringstream text;
  text << in.rdbuf();
  std::remove(path.c_str());
  return {text.str(), csv.str()};
}

TEST(FaultedSweep, ByteIdenticalAcrossPoolSizesUnderFlakyDns) {
  InjectorGuard guard;
  const Profile& flaky = *util::faults::find_profile("flaky-dns");
  const FaultedRun baseline = faulted_sweep(1, flaky, "test_faults_t1.events.jsonl");
  ASSERT_FALSE(baseline.journal.empty());
  EXPECT_NE(baseline.journal.find("\"type\":\"dns.retry\""), std::string::npos)
      << "flaky-dns sweep produced no retries — injection not reaching the resolver?";
  for (const unsigned threads : {4u, 8u}) {
    const std::string path = "test_faults_t" + std::to_string(threads) + ".events.jsonl";
    const FaultedRun run = faulted_sweep(threads, flaky, path);
    EXPECT_EQ(run.journal, baseline.journal) << threads << " threads";
    EXPECT_EQ(run.csv, baseline.csv) << threads << " threads";
  }
}

TEST(FaultedSweep, RealFaultedJournalPassesAudit) {
  InjectorGuard guard;
  const FaultedRun run = faulted_sweep(1, *util::faults::find_profile("flaky-dns"),
                                       "test_faults_audit.events.jsonl");
  const auto report = core::audit_journal_text(run.journal);
  EXPECT_TRUE(report.parsed);
  for (const auto& v : report.violations) {
    ADD_FAILURE() << "line " << v.line << ": " << v.invariant << ": " << v.detail;
  }
  EXPECT_GT(report.dns_retries, 0u);
  ASSERT_TRUE(report.manifest.has_value());
  EXPECT_EQ(report.manifest->faults, "flaky-dns");
}

/// Replace the value of `"key":<digits>` inside the first line containing
/// `marker`; returns false if absent.
bool tamper_number(std::string& text, const std::string& marker, const std::string& key,
                   const std::string& replacement) {
  const std::size_t at = text.find(marker);
  if (at == std::string::npos) return false;
  const std::size_t field = text.find("\"" + key + "\":", at);
  if (field == std::string::npos) return false;
  std::size_t start = field + key.size() + 3;
  std::size_t end = start;
  while (end < text.size() && (std::isdigit(static_cast<unsigned char>(text[end])) != 0)) ++end;
  text.replace(start, end - start, replacement);
  return true;
}

TEST(FaultedSweep, AuditCatchesForgedBackoffSchedule) {
  InjectorGuard guard;
  const FaultedRun run = faulted_sweep(1, *util::faults::find_profile("flaky-dns"),
                                       "test_faults_forge.events.jsonl");

  // A delay outside [base, 2*base) breaks the deterministic-jitter contract.
  std::string slow = run.journal;
  ASSERT_TRUE(tamper_number(slow, "\"type\":\"dns.retry\"", "delay_s", "999999"));
  auto report = core::audit_journal_text(slow);
  bool mismatch = false;
  for (const auto& v : report.violations) mismatch |= v.invariant == "retry-backoff-mismatch";
  EXPECT_TRUE(mismatch) << render_audit_report(report);

  // A chain entering at n=5 has no n=4 predecessor: the ladder is forged.
  std::string forged = run.journal;
  const std::size_t first = forged.find("\"type\":\"dns.retry\"");
  ASSERT_NE(first, std::string::npos);
  const std::size_t n_at = forged.find("\"n\":1", first);
  ASSERT_NE(n_at, std::string::npos);
  forged.replace(n_at, 5, "\"n\":5");
  report = core::audit_journal_text(forged);
  bool broken = false;
  for (const auto& v : report.violations) broken |= v.invariant == "retry-chain-broken";
  EXPECT_TRUE(broken) << render_audit_report(report);

  // Claiming exhaustion on a shard that was never re-run or degraded must
  // trip the degradation invariant at the sweep.pass boundary.
  std::string exhausted = run.journal;
  const std::size_t flag = exhausted.find("\"exhausted\":false");
  ASSERT_NE(flag, std::string::npos);
  exhausted.replace(flag, 17, "\"exhausted\":true ");
  report = core::audit_journal_text(exhausted);
  bool undegraded = false;
  for (const auto& v : report.violations) undegraded |= v.invariant == "exhausted-not-degraded";
  EXPECT_TRUE(undegraded) << render_audit_report(report);
}

TEST(FaultedCampaign, BrokenDdnsLeavesExcusedStalePtrs) {
  InjectorGuard guard;
  Injector::global().configure(*util::faults::find_profile("broken-ddns"));
  auto& journal = util::journal::Journal::global();
  util::journal::RunManifest manifest;
  manifest.tool = "test.faults";
  manifest.version = util::journal::version_string();
  manifest.seed = 99;
  manifest.faults = "broken-ddns";
  manifest.threads = 1;
  journal.set_manifest(manifest);
  const std::string path = "test_faults_ddns.events.jsonl";
  ASSERT_TRUE(journal.open(path));

  auto world = std::make_unique<sim::World>();
  world->add_org(office_org());
  world->start(CivilDate{2021, 11, 1}, CivilDate{2021, 11, 5});
  scan::ReactiveEngine::Config config;
  config.seed = 99;
  scan::ReactiveEngine engine{
      *world, {{"Academic-T", {net::Prefix::must_parse("10.93.64.0/24")}}}, config};
  engine.run(util::to_sim_time(CivilDate{2021, 11, 1}),
             util::to_sim_time(CivilDate{2021, 11, 4}));

  journal.close();
  Injector::global().disable();
  std::ifstream in{path, std::ios::binary};
  std::ostringstream text;
  text << in.rdbuf();
  std::remove(path.c_str());

  // Lost removals are excused and tallied — never "missing-ptr-remove".
  const auto report = core::audit_journal_text(text.str());
  for (const auto& v : report.violations) {
    ADD_FAILURE() << "line " << v.line << ": " << v.invariant << ": " << v.detail;
  }
  EXPECT_GT(report.faults_injected, 0u);
  EXPECT_GT(report.stale_ptrs, 0u);

  // The scanner side sees the same tail: departures whose PTR never left.
  const auto stale = core::stale_groups(engine.groups());
  EXPECT_FALSE(stale.empty());
  const auto usable = core::usable_groups(engine.groups());
  const double clean = core::fraction_within_minutes(usable, 60.0);
  const double with_tail = core::fraction_removed_within(usable, stale, 60.0);
  EXPECT_LT(with_tail, clean);  // the failure tail can only drag the CDF down
  EXPECT_GE(with_tail, 0.0);
}

TEST(FaultedSweep, BlackoutProfileDegradesShardsGracefully) {
  InjectorGuard guard;
  // Not a named profile: timeouts so dense and a budget so small that
  // every shard exhausts both attempts and lands in the degraded path.
  Profile blackout;
  blackout.name = "test-blackout";
  blackout.probability[static_cast<std::size_t>(Site::DnsTimeout)] = 0.9;
  blackout.shard_retry_budget = 4;

  const FaultedRun run = faulted_sweep(1, blackout, "test_faults_blackout.events.jsonl");
  EXPECT_NE(run.csv.find(scan::kDegradedSentinel), std::string::npos)
      << "no degraded sentinel rows in CSV";
  EXPECT_NE(run.journal.find("\"type\":\"sweep.shard_degraded\""), std::string::npos);

  // The auditor accepts the journal and tallies the degradation.
  const auto report = core::audit_journal_text(run.journal);
  for (const auto& v : report.violations) {
    ADD_FAILURE() << "line " << v.line << ": " << v.invariant << ": " << v.detail;
  }
  EXPECT_GT(report.degraded_shards, 0u);

  // Replay skips sentinel rows but accounts for them.
  struct NullSink final : scan::SnapshotSink {
    void on_row(const util::CivilDate&, net::Ipv4Addr, const dns::DnsName&) override {}
  } null_sink;
  const auto stats = scan::replay_csv_text(run.csv, null_sink);
  EXPECT_EQ(stats.degraded, report.degraded_shards);
  EXPECT_EQ(stats.skipped, 0u);
}

TEST(AuditRobustness, UnreadableAndTruncatedJournalsFailCleanly) {
  // Satellite bugfix regression: garbage inputs yield a named violation and
  // a non-ok report (rdns_tool verify exits 2), never a crash.
  const auto missing = core::audit_journal_file("no_such_journal.events.jsonl");
  EXPECT_FALSE(missing.parsed);
  EXPECT_FALSE(missing.ok());
  ASSERT_FALSE(missing.violations.empty());
  EXPECT_EQ(missing.violations.front().invariant, "io");

  const auto truncated = core::audit_journal_text("garbage\n{\"t\":1,\"type\":\"dns.look");
  EXPECT_FALSE(truncated.ok());
  bool malformed = false;
  for (const auto& v : truncated.violations) malformed |= v.invariant == "malformed-line";
  EXPECT_TRUE(malformed);
}

}  // namespace
}  // namespace rdns
