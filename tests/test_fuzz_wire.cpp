// Deterministic mutational fuzz over the serve path's wire defense
// (ISSUE 9 / DESIGN.md §15). A seeded splitmix64 drives >= 10k mutations of
// valid PTR queries — truncations, bit flips, compression-pointer loops,
// label bombs, length lies, section-count lies, splices — and checks the
// guard's contracts on every one:
//
//   * classify_query never throws, whatever the bytes;
//   * an Answer verdict guarantees decode() cannot throw downstream;
//   * error verdicts produce guard responses that always re-decode;
//   * decode() itself only ever fails by throwing WireError (no crashes —
//     the ASan CI leg turns memory bugs into hard failures here).
//
// A final socket-level blast feeds a slice of the corpus to a guarded
// UdpServerLoop and proves the worker still answers a clean query after.

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "dns/message.hpp"
#include "dns/serve_guard.hpp"
#include "dns/udp_server.hpp"
#include "dns/wire.hpp"
#include "net/ipv4.hpp"
#include "net/udp.hpp"

namespace rdns::dns {
namespace {

/// splitmix64: tiny, seedable, and identical everywhere — the corpus is a
/// pure function of kSeed, so a failure reproduces from the iteration index.
struct SplitMix64 {
  std::uint64_t state;
  explicit SplitMix64(std::uint64_t seed) : state(seed) {}
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }
  std::uint64_t below(std::uint64_t bound) { return bound == 0 ? 0 : next() % bound; }
};

constexpr std::uint64_t kSeed = 0x52444E5346555A41ULL;  // "RDNSFUZA"
constexpr int kMutations = 12000;

/// Append a minimal EDNS0 OPT RR (RFC 6891): root owner, type 41, the
/// advertised UDP payload size in the class field, zero TTL, `rdlen`
/// declared (the caller controls whether it matches the bytes appended).
void append_opt(std::vector<std::uint8_t>& wire, std::uint16_t udp_size,
                std::uint16_t rdlen, std::size_t actual_rdata = SIZE_MAX) {
  const std::uint16_t ar = static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(wire[10]) << 8 | wire[11]) + 1);
  wire[10] = static_cast<std::uint8_t>(ar >> 8);
  wire[11] = static_cast<std::uint8_t>(ar);
  wire.push_back(0x00);  // root owner
  wire.push_back(0x00);
  wire.push_back(41);  // TYPE = OPT
  wire.push_back(static_cast<std::uint8_t>(udp_size >> 8));
  wire.push_back(static_cast<std::uint8_t>(udp_size));
  for (int i = 0; i < 4; ++i) wire.push_back(0x00);  // TTL = ext-rcode/flags
  wire.push_back(static_cast<std::uint8_t>(rdlen >> 8));
  wire.push_back(static_cast<std::uint8_t>(rdlen));
  const std::size_t pad = actual_rdata == SIZE_MAX ? rdlen : actual_rdata;
  for (std::size_t i = 0; i < pad; ++i) wire.push_back(0x00);
}

std::vector<std::vector<std::uint8_t>> base_corpus() {
  std::vector<std::vector<std::uint8_t>> corpus;
  corpus.push_back(encode(make_ptr_query(0x0001, net::Ipv4Addr{10, 1, 2, 3})));
  corpus.push_back(encode(make_ptr_query(0xFFFF, net::Ipv4Addr{192, 168, 250, 251})));
  corpus.push_back(encode(make_ptr_query(0x00A5, net::Ipv4Addr{1, 0, 0, 1})));
  {
    Message chaos = make_query(0x0002, DnsName::must_parse("stats.bind"), RrType::TXT);
    chaos.questions[0].qclass = RrClass::CH;
    corpus.push_back(encode(chaos));
  }
  {
    Message extra = make_ptr_query(0x0003, net::Ipv4Addr{172, 16, 0, 9});
    ResourceRecord rr;
    rr.name = DnsName::must_parse("pad.example");
    rr.klass = RrClass::IN;
    rr.ttl = 1;
    rr.rdata = TxtRdata{{"padding"}};
    extra.additional.push_back(rr);
    corpus.push_back(encode(extra));
  }
  {
    // EDNS PTR query with a minimal well-formed OPT — the serve_guard
    // inline fast path's exact shape (RFC 6891).
    auto edns = encode(make_ptr_query(0x0004, net::Ipv4Addr{10, 80, 1, 7}));
    append_opt(edns, 1232, 0);
    corpus.push_back(std::move(edns));
  }
  {
    // EDNS with a non-empty RDATA (an option blob) and an absurd payload
    // size — still well-formed, still fast-path eligible.
    auto edns = encode(make_ptr_query(0x0005, net::Ipv4Addr{100, 64, 3, 2}));
    append_opt(edns, 0xFFFF, 8);
    corpus.push_back(std::move(edns));
  }
  return corpus;
}

/// One seeded mutation of `base`. Nine strategies weighted toward the
/// shapes the classifier's branches care about.
std::vector<std::uint8_t> mutate(const std::vector<std::uint8_t>& base, SplitMix64& rng) {
  std::vector<std::uint8_t> m = base;
  switch (rng.below(10)) {
    case 0:  // truncation: cut anywhere, including mid-header
      m.resize(rng.below(m.size() + 1));
      break;
    case 1: {  // bit flips: 1..8 random single-bit corruptions
      const std::uint64_t flips = 1 + rng.below(8);
      for (std::uint64_t i = 0; i < flips && !m.empty(); ++i) {
        m[rng.below(m.size())] ^= static_cast<std::uint8_t>(1u << rng.below(8));
      }
      break;
    }
    case 2: {  // length lie: overwrite a label-length byte in the qname
      if (m.size() > 13) m[12 + rng.below(m.size() - 13)] = static_cast<std::uint8_t>(rng.next());
      break;
    }
    case 3: {  // compression pointer, possibly a self-loop
      if (m.size() > 14) {
        const std::size_t at = 12 + rng.below(m.size() - 14);
        const std::uint16_t target = static_cast<std::uint16_t>(rng.below(m.size() + 4));
        m[at] = static_cast<std::uint8_t>(0xC0 | ((target >> 8) & 0x3F));
        m[at + 1] = static_cast<std::uint8_t>(target);
      }
      break;
    }
    case 4: {  // label bomb: a long chain of 1-octet labels, no terminator
      m.resize(12);
      const std::uint64_t labels = 1 + rng.below(200);
      for (std::uint64_t i = 0; i < labels; ++i) {
        m.push_back(1);
        m.push_back(static_cast<std::uint8_t>('a' + rng.below(26)));
      }
      if (rng.below(2) == 0) {
        m.push_back(0);
        for (int i = 0; i < 4; ++i) m.push_back(static_cast<std::uint8_t>(rng.next()));
      }
      break;
    }
    case 5: {  // section-count lies in the header
      const std::size_t at = 4 + 2 * rng.below(4);
      m[at] = static_cast<std::uint8_t>(rng.next());
      m[at + 1] = static_cast<std::uint8_t>(rng.next());
      break;
    }
    case 6: {  // flags scramble: random QR/opcode/rcode combinations
      m[2] = static_cast<std::uint8_t>(rng.next());
      m[3] = static_cast<std::uint8_t>(rng.next());
      break;
    }
    case 7: {  // splice: random tail from pure noise
      const std::uint64_t keep = rng.below(m.size() + 1);
      m.resize(keep);
      const std::uint64_t add = rng.below(64);
      for (std::uint64_t i = 0; i < add; ++i) m.push_back(static_cast<std::uint8_t>(rng.next()));
      break;
    }
    case 8: {  // qtype/qclass corruption at the question's tail
      if (m.size() >= 4) {
        m[m.size() - 4 + rng.below(4)] = static_cast<std::uint8_t>(rng.next());
      }
      break;
    }
    default: {  // EDNS OPT abuse: bolt a (possibly lying) OPT onto the tail
      switch (rng.below(4)) {
        case 0:  // lying RDLEN: declared length != bytes actually present
          append_opt(m, 1232, static_cast<std::uint16_t>(rng.below(0x10000)),
                     rng.below(16));
          break;
        case 1:  // absurd advertised payload sizes (0, 1, 0xFFFF, ...)
          append_opt(m, static_cast<std::uint16_t>(rng.below(0x10000)), 0);
          break;
        case 2:  // duplicate OPT records (RFC 6891 forbids more than one)
          append_opt(m, 512, 0);
          append_opt(m, 4096, 0);
          break;
        default:  // non-root owner: OPT must sit at the root name
          append_opt(m, 1232, 0);
          m[m.size() - 11] = static_cast<std::uint8_t>(1 + rng.below(63));
          break;
      }
      break;
    }
  }
  return m;
}

TEST(FuzzWire, ClassifierAndCodecSurviveSeededMutations) {
  const auto corpus = base_corpus();
  SplitMix64 rng{kSeed};

  std::uint64_t verdicts[5] = {0, 0, 0, 0, 0};
  for (int iteration = 0; iteration < kMutations; ++iteration) {
    const auto& base = corpus[static_cast<std::size_t>(iteration) % corpus.size()];
    const std::vector<std::uint8_t> wire = mutate(base, rng);
    SCOPED_TRACE(::testing::Message() << "iteration " << iteration);

    // Contract 1: classification is total — no throw on any input.
    Classified c;
    ASSERT_NO_THROW(c = classify_query(wire, /*restrict_ptr=*/true));
    verdicts[static_cast<std::size_t>(c.verdict)]++;

    // Contract 2: decode only ever fails by throwing WireError.
    bool decodable = false;
    try {
      (void)decode(wire);
      decodable = true;
    } catch (const WireError&) {
      decodable = false;
    }

    switch (c.verdict) {
      case WireVerdict::Answer:
        // Contract 3: an Answer verdict means the handler's decode is safe.
        ASSERT_TRUE(decodable) << "classified Answer but decode() threw";
        break;
      case WireVerdict::FormErr:
      case WireVerdict::NotImp:
      case WireVerdict::Refused: {
        // Contract 4: every guard error response re-decodes cleanly.
        const Rcode rcode = c.verdict == WireVerdict::FormErr ? Rcode::FormErr
                            : c.verdict == WireVerdict::NotImp ? Rcode::NotImp
                                                               : Rcode::Refused;
        std::vector<std::uint8_t> reply;
        ASSERT_NO_THROW(reply = make_guard_response(wire, c.question_end, rcode,
                                                    /*tc=*/false));
        ASSERT_GE(reply.size(), 12u);
        ASSERT_NO_THROW((void)decode(reply)) << "guard response does not re-decode";
        break;
      }
      case WireVerdict::SilentDrop:
        break;
    }
  }

  // The corpus must actually exercise every branch; a mutator regression
  // that collapses the distribution should fail loudly, not fuzz nothing.
  EXPECT_GT(verdicts[static_cast<std::size_t>(WireVerdict::Answer)], 0u);
  EXPECT_GT(verdicts[static_cast<std::size_t>(WireVerdict::SilentDrop)], 0u);
  EXPECT_GT(verdicts[static_cast<std::size_t>(WireVerdict::FormErr)], 0u);
  EXPECT_GT(verdicts[static_cast<std::size_t>(WireVerdict::NotImp)], 0u);
  EXPECT_GT(verdicts[static_cast<std::size_t>(WireVerdict::Refused)], 0u);
}

TEST(FuzzWire, EdnsOptFastPathAgreesWithTheDecoder) {
  // serve_guard keeps one EDNS shape on the allocation-free fast path: a
  // single well-formed OPT (root owner, type 41, RDLEN covering the tail
  // exactly). Everything else routes through the full decoder. The
  // equivalence contract for a PTR/IN question is therefore exact:
  // classify says Answer if and only if decode() succeeds — the fast path
  // may never accept a shape the codec rejects, nor reject one it accepts.
  const auto check = [](const std::vector<std::uint8_t>& wire, const char* what) {
    Classified c;
    ASSERT_NO_THROW(c = classify_query(wire, /*restrict_ptr=*/true)) << what;
    bool decodable = false;
    try {
      (void)decode(wire);
      decodable = true;
    } catch (const WireError&) {
    }
    if (decodable) {
      EXPECT_EQ(c.verdict, WireVerdict::Answer) << what;
    } else {
      EXPECT_NE(c.verdict, WireVerdict::Answer) << what;
    }
  };

  const auto base = encode(make_ptr_query(0x4242, net::Ipv4Addr{10, 80, 0, 7}));

  {  // Well-formed minimal OPT: the fast path must answer it inline.
    auto wire = base;
    append_opt(wire, 1232, 0);
    const Classified c = classify_query(wire, true);
    EXPECT_EQ(c.verdict, WireVerdict::Answer);
    // The verdict must match the bare question's (policy equivalence:
    // a valid OPT never changes what the policy layer sees).
    EXPECT_EQ(c.verdict, classify_query(base, true).verdict);
    EXPECT_EQ(c.question_end, classify_query(base, true).question_end);
    check(wire, "minimal OPT");
  }
  {  // Non-empty RDATA with a matching RDLEN is still well-formed.
    auto wire = base;
    append_opt(wire, 4096, 12);
    check(wire, "OPT with 12-byte rdata");
  }
  {  // Absurd advertised payload sizes are legal class values.
    for (const std::uint16_t size : {std::uint16_t{0}, std::uint16_t{1},
                                     std::uint16_t{512}, std::uint16_t{0xFFFF}}) {
      auto wire = base;
      append_opt(wire, size, 0);
      check(wire, "absurd payload size");
    }
  }
  {  // Lying RDLEN: declares 100 bytes, carries none. Must not be Answer.
    auto wire = base;
    append_opt(wire, 1232, 100, /*actual_rdata=*/0);
    check(wire, "RDLEN overruns the message");
    EXPECT_NE(classify_query(wire, true).verdict, WireVerdict::Answer);
  }
  {  // RDLEN under-declares: 4 trailing bytes the OPT does not cover.
    auto wire = base;
    append_opt(wire, 1232, 0, /*actual_rdata=*/4);
    check(wire, "trailing junk past the OPT");
  }
  {  // Duplicate OPT (ar=2): never fast-path; verdict must track decode().
    auto wire = base;
    append_opt(wire, 512, 0);
    append_opt(wire, 4096, 0);
    check(wire, "duplicate OPT");
  }
  {  // Non-root owner: OPT must sit at the root name.
    auto wire = base;
    append_opt(wire, 1232, 0);
    wire[wire.size() - 11] = 3;
    check(wire, "OPT with a non-root owner");
  }

  // Randomized sweep: arbitrary OPT trailers on a valid PTR/IN question.
  // The classify⇔decode equivalence must hold for every one of them.
  SplitMix64 rng{kSeed ^ 0x4544'4E53'304F'5054ULL};
  for (int iteration = 0; iteration < 2000; ++iteration) {
    auto wire = base;
    const auto rdlen = static_cast<std::uint16_t>(rng.below(64));
    const std::size_t actual = rng.below(64);
    append_opt(wire, static_cast<std::uint16_t>(rng.below(0x10000)), rdlen, actual);
    // Sometimes scribble over the OPT fixed fields too.
    if (rng.below(3) == 0 && wire.size() > base.size()) {
      wire[base.size() + rng.below(wire.size() - base.size())] =
          static_cast<std::uint8_t>(rng.next());
    }
    SCOPED_TRACE(::testing::Message() << "iteration " << iteration);
    check(wire, "random OPT trailer");
  }
}

TEST(FuzzWire, SlipResponsesAlwaysDecode) {
  // The RRL slip path stamps TC onto whatever question scanned; fuzz that
  // shape specifically (it reuses question_end from arbitrary input).
  const auto corpus = base_corpus();
  SplitMix64 rng{kSeed ^ 0xDEADBEEFULL};
  for (int iteration = 0; iteration < 2000; ++iteration) {
    const auto wire = mutate(corpus[static_cast<std::size_t>(iteration) % corpus.size()], rng);
    const Classified c = classify_query(wire, true);
    if (c.verdict != WireVerdict::Answer) continue;
    std::vector<std::uint8_t> slip;
    ASSERT_NO_THROW(slip = make_guard_response(wire, c.question_end, Rcode::NoError,
                                               /*tc=*/true));
    Message m;
    ASSERT_NO_THROW(m = decode(slip)) << "iteration " << iteration;
    EXPECT_TRUE(m.flags.tc);
  }
}

TEST(FuzzWire, GuardedLoopSurvivesGarbageBlast) {
  UdpServeOptions options;
  options.threads = 1;
  options.hardening.guard = true;
  UdpServerLoop loop{options, [](unsigned) {
    return [](std::span<const std::uint8_t> query)
               -> std::optional<std::vector<std::uint8_t>> {
      return encode(make_response(decode(query), Rcode::NoError));
    };
  }};
  ASSERT_TRUE(loop.start());

  auto client = net::UdpSocket::open();
  ASSERT_TRUE(client.has_value());
  const net::UdpEndpoint server = loop.endpoint();

  const auto corpus = base_corpus();
  SplitMix64 rng{kSeed ^ 0x5050505050505050ULL};
  constexpr int kBlast = 2048;
  int sent = 0;
  for (int i = 0; i < kBlast; ++i) {
    const auto wire = mutate(corpus[static_cast<std::size_t>(i) % corpus.size()], rng);
    if (client->send(wire, server)) ++sent;
    // Drain any replies as we go so the client buffer never backs up.
    std::vector<std::uint8_t> sink(2048);
    while (client->wait_readable(0)) (void)client->recv(sink);
  }

  // Let the worker chew through the backlog, then flush remaining replies.
  std::vector<std::uint8_t> sink(2048);
  while (client->wait_readable(200)) (void)client->recv(sink);

  // The worker must still be alive and answering clean queries.
  const auto probe = encode(make_ptr_query(0x7777, net::Ipv4Addr{10, 9, 8, 7}));
  ASSERT_TRUE(client->send(probe, server));
  ASSERT_TRUE(client->wait_readable(2000)) << "worker wedged after garbage blast";
  std::vector<std::uint8_t> buffer(2048);
  const auto n = client->recv(buffer);
  ASSERT_TRUE(n.has_value());
  buffer.resize(*n);
  const Message reply = decode(buffer);
  EXPECT_EQ(reply.id, 0x7777);

  loop.stop();
  const UdpServeStats& stats = loop.stats();
  // The blast is open-loop: the kernel may shed datagrams the worker never
  // saw, so received <= sent. What must hold is that everything the worker
  // DID see is accounted for — the serve.stop partition invariant.
  EXPECT_LE(stats.datagrams_received, static_cast<std::uint64_t>(sent) + 1);
  EXPECT_GT(stats.datagrams_received, 1u);
  EXPECT_EQ(stats.datagrams_received,
            stats.responses_sent + stats.send_failures + stats.truncated_queries +
                stats.dropped_total());
}

}  // namespace
}  // namespace rdns::dns
