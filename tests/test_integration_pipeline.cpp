/// End-to-end integration tests: a small synthetic Internet goes through
/// the full Section 4-5 identification pipeline, and the paper world's
/// structural guarantees are checked (the campaign networks, the Brians,
/// ICMP policies).

#include <gtest/gtest.h>

#include <sstream>

#include "core/pipeline.hpp"
#include "core/mitigation.hpp"
#include "scan/rdns_snapshot.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace rdns::core {
namespace {

using util::CivilDate;
using util::kHour;

TEST(Pipeline, FindsTheLeakerAndIgnoresTheQuietOrgs) {
  sim::World world;

  // One carry-over leaker.
  sim::OrgSpec leaker;
  leaker.name = "leaker";
  leaker.type = sim::OrgType::Academic;
  leaker.suffix = dns::DnsName::must_parse("leaky-university.edu");
  leaker.announced = {net::Prefix::must_parse("10.70.0.0/16")};
  sim::SegmentSpec seg;
  seg.label = "wifi";
  seg.prefix = net::Prefix::must_parse("10.70.64.0/23");
  seg.schedule = sim::ScheduleKind::OfficeWorker;
  seg.user_count = 120;
  seg.named_device_frac = 0.9;
  leaker.segments = {seg};
  leaker.seed = 1;
  world.add_org(std::move(leaker));

  // One static-generic org (dynamic DHCP, static rDNS: must NOT appear).
  sim::OrgSpec quiet;
  quiet.name = "quiet";
  quiet.type = sim::OrgType::Isp;
  quiet.suffix = dns::DnsName::must_parse("quiet-broadband.net");
  quiet.announced = {net::Prefix::must_parse("10.71.0.0/16")};
  sim::SegmentSpec qseg = seg;
  qseg.prefix = net::Prefix::must_parse("10.71.64.0/23");
  qseg.schedule = sim::ScheduleKind::HomeResident;
  qseg.ddns_policy = dhcp::DdnsPolicy::StaticGeneric;
  quiet.segments = {qseg};
  quiet.seed = 2;
  world.add_org(std::move(quiet));

  // One router-only transit org (the city-name decoy).
  sim::OrgSpec transit;
  transit.name = "transit";
  transit.type = sim::OrgType::Other;
  transit.suffix = dns::DnsName::must_parse("decoy-transit.org");
  transit.announced = {net::Prefix::must_parse("10.72.0.0/16")};
  transit.static_ranges = {{net::Prefix::must_parse("10.72.0.0/22"),
                            sim::StaticRangeSpec::Style::RouterNames, 0.5, 0.9}};
  transit.seed = 3;
  world.add_org(std::move(transit));

  world.start(CivilDate{2021, 1, 1}, CivilDate{2021, 1, 31});

  PipelineConfig config;
  config.from = CivilDate{2021, 1, 2};
  config.to = CivilDate{2021, 1, 30};
  config.dynamicity.min_days_over = 5;
  config.leak.min_unique_names = 20;
  const PipelineReport report = run_identification_pipeline(world, config);

  // The carry-over academic is identified; nothing else is.
  ASSERT_EQ(report.leaks.identified.size(), 1u);
  EXPECT_EQ(report.leaks.identified[0], "leaky-university.edu");
  EXPECT_EQ(report.types.counts.at(NetworkType::Academic), 1u);

  // Dynamic /24s exist and sit inside the leaker's announcement.
  EXPECT_GT(report.dynamicity.dynamic_count, 0u);
  for (const auto& block : report.dynamicity.dynamic_blocks()) {
    EXPECT_TRUE(net::Prefix::must_parse("10.70.64.0/23").contains(block))
        << block.to_string();
  }

  // Fig. 1 shape: the dynamic fraction of the announced /16 is small.
  for (const auto& rollup : report.rollup) {
    EXPECT_LE(rollup.fraction(), 0.05);
  }

  // Fig. 2 shape: filtering strictly reduces match counts.
  std::uint64_t all = 0, filtered = 0;
  for (const auto& [name, count] : report.leaks.matches_per_name) all += count;
  for (const auto& [name, count] : report.leaks.filtered_matches_per_name) filtered += count;
  EXPECT_GT(all, 0u);
  EXPECT_LE(filtered, all);

  // Fig. 3 shape: device terms co-occur with names in the identified net.
  EXPECT_GT(report.cooccurrence.total_filtered, 0u);
}

TEST(Pipeline, MitigationDefeatsIdentification) {
  // Same org twice, once carry-over and once hashed: the pipeline must
  // identify the former and not the latter.
  for (const auto policy :
       {dhcp::DdnsPolicy::CarryOverClientId, dhcp::DdnsPolicy::HashedClientId}) {
    sim::World world;
    sim::OrgSpec org;
    org.name = "subject";
    org.type = sim::OrgType::Academic;
    org.suffix = dns::DnsName::must_parse("subject-university.edu");
    org.announced = {net::Prefix::must_parse("10.73.0.0/16")};
    sim::SegmentSpec seg;
    seg.label = "wifi";
    seg.prefix = net::Prefix::must_parse("10.73.64.0/23");
    seg.schedule = sim::ScheduleKind::OfficeWorker;
    seg.user_count = 120;
    seg.named_device_frac = 0.9;
    seg.ddns_policy = policy;
    org.segments = {seg};
    org.seed = 4;
    world.add_org(std::move(org));
    world.start(CivilDate{2021, 1, 1}, CivilDate{2021, 1, 31});

    PipelineConfig config;
    config.from = CivilDate{2021, 1, 2};
    config.to = CivilDate{2021, 1, 30};
    config.dynamicity.min_days_over = 5;
    config.leak.min_unique_names = 20;
    const PipelineReport report = run_identification_pipeline(world, config);

    if (policy == dhcp::DdnsPolicy::CarryOverClientId) {
      EXPECT_EQ(report.leaks.identified.size(), 1u);
    } else {
      // Hashing: the network is still *dynamic* (churn visible) but leaks
      // no names, so the Section 5 filter rejects it.
      EXPECT_GT(report.dynamicity.dynamic_count, 0u);
      EXPECT_TRUE(report.leaks.identified.empty());
    }
  }
}

TEST(PaperWorld, HasTheNineCampaignNetworks) {
  auto world = make_paper_world(7, WorldScale{0.2});
  const std::vector<std::string> expected = {"Academic-A",   "Academic-B",   "Academic-C",
                                             "Enterprise-A", "Enterprise-B", "Enterprise-C",
                                             "ISP-A",        "ISP-B",        "ISP-C"};
  for (const auto& name : expected) {
    EXPECT_NE(world->org_by_name(name), nullptr) << name;
  }
  // Table 4 ICMP policies.
  EXPECT_FALSE(world->org_by_name("Academic-A")->spec().blocks_icmp);
  EXPECT_TRUE(world->org_by_name("Academic-B")->spec().blocks_icmp);
  EXPECT_TRUE(world->org_by_name("Enterprise-B")->spec().blocks_icmp);
  EXPECT_TRUE(world->org_by_name("Enterprise-C")->spec().blocks_icmp);
  // Academic-C uses longer leases (Fig. 7b's lingering difference).
  EXPECT_GT(world->org_by_name("Academic-C")->segments()[0].spec.lease_seconds,
            world->org_by_name("Academic-A")->segments()[0].spec.lease_seconds);
}

TEST(PaperWorld, BriansExistWithScriptedDevices) {
  auto world = make_paper_world(7, WorldScale{0.2});
  const sim::Organization* academic_a = world->org_by_name("Academic-A");
  ASSERT_NE(academic_a, nullptr);
  std::set<std::string> brian_hostnames;
  for (const auto& user : academic_a->users()) {
    if (user.given_name != "brian") continue;
    for (const auto& device : user.devices) brian_hostnames.insert(device->host_name());
  }
  // The five Fig. 8 devices.
  EXPECT_TRUE(brian_hostnames.count("Brian's Phone"));
  EXPECT_TRUE(brian_hostnames.count("Brians-MBP"));
  EXPECT_TRUE(brian_hostnames.count("Brians-Air"));
  EXPECT_TRUE(brian_hostnames.count("Brian's iPad"));
  EXPECT_TRUE(brian_hostnames.count("Brians-Galaxy-Note9"));
}

TEST(PaperWorld, GalaxyNote9DoesNotExistBeforeCyberMonday) {
  auto world = make_paper_world(7, WorldScale{0.2});
  const sim::Organization* academic_a = world->org_by_name("Academic-A");
  for (const auto& user : academic_a->users()) {
    for (const auto& device : user.devices) {
      if (device->host_name() == "Brians-Galaxy-Note9") {
        EXPECT_FALSE(device->exists_on(CivilDate{2021, 11, 28}));
        EXPECT_TRUE(device->exists_on(CivilDate{2021, 11, 29}));  // Cyber Monday
        return;
      }
    }
  }
  FAIL() << "scripted galaxy-note9 not found";
}

TEST(InternetWorld, PolicyMixIsStratified) {
  auto world = make_internet_world(11, 40, WorldScale{0.1});
  int carry = 0, generic = 0, router_only = 0;
  for (const auto& org : world->orgs()) {
    if (org->segments().empty()) {
      ++router_only;
    } else if (org->segments()[0].spec.ddns_policy == dhcp::DdnsPolicy::CarryOverClientId) {
      ++carry;
    } else {
      ++generic;
    }
  }
  EXPECT_GT(carry, 3);
  EXPECT_GT(generic, 3);
  EXPECT_GT(router_only, 0);
  EXPECT_EQ(carry + generic + router_only, 40);
}

TEST(InternetWorld, RejectsBadOrgCount) {
  EXPECT_THROW((void)make_internet_world(1, 0), std::invalid_argument);
  EXPECT_THROW((void)make_internet_world(1, 500), std::invalid_argument);
}

TEST(Observability, SweepCsvIsByteStableAcrossThreadsWithMetricsOn) {
  // The --metrics-out/--trace configuration must never perturb analysis
  // output: the same world swept at pool sizes 1 and 4 with full
  // observability enabled produces byte-identical CSV.
  util::metrics::set_collect_timing(true);
  util::trace::Tracer::global().set_enabled(true);

  const auto run_once = [](unsigned threads) {
    util::ThreadPool::set_global_size(threads);
    auto world = make_internet_world(7, 4, WorldScale{0.05});
    const CivilDate from{2021, 1, 2};
    const CivilDate to{2021, 1, 5};
    world->start(util::add_days(from, -1), util::add_days(to, 1));
    std::ostringstream csv;
    scan::CsvSnapshotSink sink{csv};
    scan::SweepDriver driver{*world, 14, 1, /*second_hour=*/21};
    driver.run(from, to, sink);
    return csv.str();
  };
  const std::string serial = run_once(1);
  const std::string parallel = run_once(4);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
  util::ThreadPool::set_global_size(0);

  // Driving a world end-to-end populates every instrumented subsystem; the
  // combined snapshot document carries counters and histograms for each.
  std::ostringstream snap;
  util::trace::write_snapshot_json(snap, util::metrics::Registry::global(),
                                   util::trace::Tracer::global());
  const std::string doc = snap.str();
  for (const char* needle :
       {"\"schema\": \"rdns.observability.v1\"", "dns.server.queries",
        "dns.server.update_rrs", "dhcp.server.acks", "dhcp.lease.bound_seconds",
        "thread_pool.regions", "thread_pool.chunks_per_region", "sweep.rows",
        "sweep.org_rows", "\"spans\"", "\"day\"", "\"bulk_pass\""}) {
    EXPECT_NE(doc.find(needle), std::string::npos) << needle;
  }

  util::metrics::set_collect_timing(false);
  util::trace::Tracer::global().set_enabled(false);
  util::trace::Tracer::global().reset();
}

}  // namespace
}  // namespace rdns::core
