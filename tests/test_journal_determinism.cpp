/// End-to-end journal guarantees: the event stream of a campaign + wire
/// sweep is byte-identical at every pool size, a clean journal passes the
/// invariant auditor, and targeted corruptions (a dropped ACK, a forged
/// overlapping lease) are caught by name.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/journal_audit.hpp"
#include "scan/rdns_snapshot.hpp"
#include "scan/reactive.hpp"
#include "sim/world.hpp"
#include "util/journal.hpp"
#include "util/thread_pool.hpp"

namespace rdns {
namespace {

using util::CivilDate;

/// Same recipe as the reactive-engine tests: office-schedule clients on one
/// measured /24, deterministic seeds everywhere.
sim::OrgSpec office_org() {
  sim::OrgSpec o;
  o.name = "Academic-T";
  o.type = sim::OrgType::Academic;
  o.suffix = dns::DnsName::must_parse("reactive-test.edu");
  o.announced = {net::Prefix::must_parse("10.91.0.0/16")};
  o.measurement_targets = {net::Prefix::must_parse("10.91.64.0/24")};
  sim::SegmentSpec seg;
  seg.label = "wifi";
  seg.prefix = net::Prefix::must_parse("10.91.64.0/24");
  seg.schedule = sim::ScheduleKind::OfficeWorker;
  seg.user_count = 25;
  seg.lease_seconds = 3600;
  o.segments = {seg};
  o.seed = 4242;
  return o;
}

/// Run the full producer set (DHCP/DDNS via the world, the reactive
/// campaign, one parallel wire sweep) with the global journal armed and
/// `threads` workers; returns the journal bytes.
std::string journaled_run(unsigned threads, const std::string& path) {
  auto& journal = util::journal::Journal::global();
  util::journal::RunManifest manifest;
  manifest.tool = "test.journal_determinism";
  manifest.version = util::journal::version_string();
  manifest.seed = 99;
  manifest.threads = threads;
  journal.set_manifest(manifest);
  EXPECT_TRUE(journal.open(path));

  auto world = std::make_unique<sim::World>();
  world->add_org(office_org());
  world->start(CivilDate{2021, 11, 1}, CivilDate{2021, 11, 5});

  scan::ReactiveEngine::Config config;
  config.seed = 99;
  scan::ReactiveEngine engine{
      *world, {{"Academic-T", {net::Prefix::must_parse("10.91.64.0/24")}}}, config};
  engine.run(util::to_sim_time(CivilDate{2021, 11, 1}),
             util::to_sim_time(CivilDate{2021, 11, 4}));

  util::ThreadPool pool{threads};
  std::ostringstream csv;
  scan::CsvSnapshotSink sink{csv};
  scan::sweep_wire(*world, CivilDate{2021, 11, 4}, sink, nullptr, &pool);

  journal.close();
  std::ifstream in{path, std::ios::binary};
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

class JournalDeterminism : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const std::string path = "test_journal_determinism.events.jsonl";
    baseline_ = new std::string{journaled_run(1, path)};
    std::remove(path.c_str());
  }
  static void TearDownTestSuite() {
    delete baseline_;
    baseline_ = nullptr;
  }

  static const std::string& baseline() { return *baseline_; }

 private:
  static std::string* baseline_;
};

std::string* JournalDeterminism::baseline_ = nullptr;

TEST_F(JournalDeterminism, ByteIdenticalAcrossPoolSizes) {
  ASSERT_FALSE(baseline().empty());
  for (const unsigned threads : {4u, 8u}) {
    const std::string path = "test_journal_determinism_" + std::to_string(threads) +
                             ".events.jsonl";
    const std::string journal = journaled_run(threads, path);
    EXPECT_EQ(journal, baseline()) << threads << " threads";
    std::remove(path.c_str());
  }
}

TEST_F(JournalDeterminism, CleanJournalPassesAudit) {
  const auto report = core::audit_journal_text(baseline());
  EXPECT_TRUE(report.parsed);
  for (const auto& v : report.violations) {
    ADD_FAILURE() << "line " << v.line << ": " << v.invariant << ": " << v.detail;
  }
  EXPECT_TRUE(report.ok());
  ASSERT_TRUE(report.manifest.has_value());
  EXPECT_EQ(report.manifest->seed, 99u);
  EXPECT_GT(report.leases_started, 0u);
  EXPECT_EQ(report.ptr_added, report.leases_started);
  EXPECT_GT(report.timing.usable_groups, 0u);
  // Fig. 7 cross-check: the event-derived linger CDF agrees with the one
  // core/timing computes over the group summaries.
  EXPECT_NEAR(report.timing.fraction_within_60min,
              report.timing.summary_fraction_within_60min, 1e-9);
}

/// First line matching `needle`, as [start, end) byte offsets including the
/// trailing newline; npos when absent.
std::pair<std::size_t, std::size_t> find_line(const std::string& text,
                                              const std::string& needle) {
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return {std::string::npos, std::string::npos};
  const std::size_t start = text.rfind('\n', at) + 1;  // 0 when on line one
  const std::size_t end = text.find('\n', at) + 1;
  return {start, end};
}

TEST_F(JournalDeterminism, AuditCatchesDanglingPtrAdd) {
  // Drop the first new-lease ACK: the bridge's PTR add for that address now
  // has no bound lease behind it.
  const auto [start, end] = find_line(baseline(), "\"renew\":false");
  ASSERT_NE(start, std::string::npos);
  std::string corrupted = baseline();
  corrupted.erase(start, end - start);

  const auto report = core::audit_journal_text(corrupted);
  EXPECT_FALSE(report.ok());
  bool found = false;
  for (const auto& v : report.violations) found |= v.invariant == "ptr-add-without-ack";
  EXPECT_TRUE(found) << render_audit_report(report);
}

TEST_F(JournalDeterminism, AuditCatchesOverlappingLeases) {
  // Forge a second new-lease ACK for the same address from a different
  // client while the first lease is still live.
  const auto [start, end] = find_line(baseline(), "\"renew\":false");
  ASSERT_NE(start, std::string::npos);
  std::string ack = baseline().substr(start, end - start);
  const std::size_t mac = ack.find("\"mac\":\"");
  ASSERT_NE(mac, std::string::npos);
  ack.replace(mac + 7, 17, "02:00:00:00:00:01");
  std::string corrupted = baseline();
  corrupted.insert(end, ack);

  const auto report = core::audit_journal_text(corrupted);
  EXPECT_FALSE(report.ok());
  bool found = false;
  for (const auto& v : report.violations) found |= v.invariant == "overlapping-leases";
  EXPECT_TRUE(found) << render_audit_report(report);
}

}  // namespace
}  // namespace rdns
