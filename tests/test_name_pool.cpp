/// Tests for the arena-backed string interner behind the compact PTR
/// stores: dense stable ids, dedup, view stability across chunk growth.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/name_pool.hpp"

namespace rdns::util {
namespace {

TEST(NamePool, DenseIdsAndDedup) {
  NamePool pool;
  const auto a = pool.intern("host-10-1-2-3.dynamic.example.net");
  const auto b = pool.intern("static.example.net");
  const auto a2 = pool.intern("host-10-1-2-3.dynamic.example.net");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(a2, a);
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.view(a), "host-10-1-2-3.dynamic.example.net");
  EXPECT_EQ(pool.view(b), "static.example.net");
}

TEST(NamePool, EmptyStringInternable) {
  NamePool pool;
  const auto id = pool.intern("");
  EXPECT_EQ(pool.view(id), "");
  EXPECT_EQ(pool.intern(""), id);
}

TEST(NamePool, ViewsStableAcrossChunkGrowth) {
  NamePool pool;
  // Force several 1 MiB chunks; early views must not move.
  std::vector<NamePool::Id> ids;
  std::vector<std::string> texts;
  for (int i = 0; i < 8000; ++i) {
    texts.push_back("name-" + std::to_string(i) + std::string(500, 'x'));
    ids.push_back(pool.intern(texts.back()));
  }
  EXPECT_GT(pool.arena_bytes(), std::size_t{3} << 20);  // > 3 chunks' worth
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(pool.view(ids[i]), texts[i]);
  }
}

TEST(NamePool, OversizedStringGetsDedicatedChunk) {
  NamePool pool;
  const std::string big(3u << 20, 'b');
  const auto small_id = pool.intern("small");
  const auto big_id = pool.intern(big);
  const auto after = pool.intern("after");
  EXPECT_EQ(pool.view(big_id), big);
  EXPECT_EQ(pool.view(small_id), "small");
  EXPECT_EQ(pool.view(after), "after");
  EXPECT_EQ(pool.size(), 3u);
}

TEST(NamePool, FootprintCoversArena) {
  NamePool pool;
  for (int i = 0; i < 100; ++i) (void)pool.intern("n" + std::to_string(i));
  EXPECT_GE(pool.footprint_bytes(), pool.arena_bytes());
}

}  // namespace
}  // namespace rdns::util
