/// Tests for the net module: IPv4 addresses, CIDR prefixes, prefix sets,
/// MAC addresses and in-addr.arpa conversion.

#include <gtest/gtest.h>

#include "net/arpa.hpp"
#include "net/ipv4.hpp"
#include "net/mac.hpp"
#include "net/prefix.hpp"
#include "net/prefix_set.hpp"
#include "util/rng.hpp"

namespace rdns::net {
namespace {

TEST(Ipv4, ParseAndFormat) {
  const auto a = Ipv4Addr::parse("93.184.216.34");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->to_string(), "93.184.216.34");
  EXPECT_EQ(a->octet(0), 93);
  EXPECT_EQ(a->octet(3), 34);
  EXPECT_EQ(a->value(), 0x5DB8D822u);
}

TEST(Ipv4, ParseRejectsMalformed) {
  for (const char* bad : {"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "1.2.3.x", "1..2.3",
                          ".1.2.3", "1.2.3.4.", "01.2.3.4567"}) {
    EXPECT_FALSE(Ipv4Addr::parse(bad).has_value()) << bad;
  }
}

TEST(Ipv4, MustParseThrows) {
  EXPECT_THROW((void)Ipv4Addr::must_parse("nope"), std::invalid_argument);
  EXPECT_EQ(Ipv4Addr::must_parse("0.0.0.0").value(), 0u);
  EXPECT_EQ(Ipv4Addr::must_parse("255.255.255.255").value(), 0xFFFFFFFFu);
}

/// Format/parse round trip over a spread of the address space.
class Ipv4RoundTrip : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(Ipv4RoundTrip, Survives) {
  const Ipv4Addr a{GetParam()};
  EXPECT_EQ(Ipv4Addr::parse(a.to_string()), a);
}

INSTANTIATE_TEST_SUITE_P(Sweep, Ipv4RoundTrip,
                         ::testing::Values(0u, 1u, 0xFFu, 0x0A0A8001u, 0x7F000001u,
                                           0xC0A80101u, 0xFFFFFFFFu, 0x5DB8D822u));

TEST(Ipv4, ArithmeticAndSlash24) {
  const Ipv4Addr a = Ipv4Addr::must_parse("10.1.2.3");
  EXPECT_EQ((a + 1).to_string(), "10.1.2.4");
  EXPECT_EQ((a - 4).to_string(), "10.1.1.255");
  EXPECT_EQ(slash24_of(a).to_string(), "10.1.2.0");
}

TEST(Prefix, BasicProperties) {
  const Prefix p = Prefix::must_parse("10.20.0.0/16");
  EXPECT_EQ(p.length(), 16);
  EXPECT_EQ(p.size(), 65536u);
  EXPECT_EQ(p.first().to_string(), "10.20.0.0");
  EXPECT_EQ(p.last().to_string(), "10.20.255.255");
  EXPECT_EQ(p.slash24_count(), 256u);
  EXPECT_EQ(p.to_string(), "10.20.0.0/16");
}

TEST(Prefix, HostBitsZeroed) {
  const Prefix p{Ipv4Addr::must_parse("10.1.2.3"), 24};
  EXPECT_EQ(p.network().to_string(), "10.1.2.0");
}

TEST(Prefix, Contains) {
  const Prefix p = Prefix::must_parse("192.168.4.0/22");
  EXPECT_TRUE(p.contains(Ipv4Addr::must_parse("192.168.7.255")));
  EXPECT_FALSE(p.contains(Ipv4Addr::must_parse("192.168.8.0")));
  EXPECT_TRUE(p.contains(Prefix::must_parse("192.168.5.0/24")));
  EXPECT_FALSE(p.contains(Prefix::must_parse("192.168.0.0/21")));
}

TEST(Prefix, SplitAndSlash24s) {
  const Prefix p = Prefix::must_parse("10.0.0.0/23");
  const auto [lo, hi] = p.split();
  EXPECT_EQ(lo.to_string(), "10.0.0.0/24");
  EXPECT_EQ(hi.to_string(), "10.0.1.0/24");
  EXPECT_EQ(p.slash24s().size(), 2u);
  EXPECT_EQ(Prefix::must_parse("10.0.0.0/26").slash24s().size(), 1u);
  EXPECT_THROW((void)Prefix::must_parse("1.2.3.4/32").split(), std::logic_error);
}

TEST(Prefix, ParseRejectsMalformed) {
  for (const char* bad : {"10.0.0.0", "10.0.0.0/33", "10.0.0.0/-1", "10.0.0.0/x", "x/24"}) {
    EXPECT_FALSE(Prefix::parse(bad).has_value()) << bad;
  }
  EXPECT_TRUE(Prefix::parse("0.0.0.0/0").has_value());
}

TEST(PrefixSet, MembershipAndMerge) {
  PrefixSet set;
  set.add(Prefix::must_parse("10.0.0.0/24"));
  set.add(Prefix::must_parse("10.0.1.0/24"));  // adjacent: must coalesce
  EXPECT_EQ(set.range_count(), 1u);
  EXPECT_TRUE(set.contains(Ipv4Addr::must_parse("10.0.0.0")));
  EXPECT_TRUE(set.contains(Ipv4Addr::must_parse("10.0.1.255")));
  EXPECT_FALSE(set.contains(Ipv4Addr::must_parse("10.0.2.0")));
  EXPECT_EQ(set.address_count(), 512u);
}

TEST(PrefixSet, OverlappingInserts) {
  PrefixSet set;
  set.add(Prefix::must_parse("10.0.0.0/22"));
  set.add(Prefix::must_parse("10.0.1.0/24"));  // inside existing
  EXPECT_EQ(set.range_count(), 1u);
  EXPECT_EQ(set.address_count(), 1024u);
  set.add(Prefix::must_parse("10.0.2.0/23"));  // overlapping the tail
  EXPECT_EQ(set.address_count(), 1024u);
}

TEST(PrefixSet, Overlaps) {
  PrefixSet set;
  set.add(Prefix::must_parse("172.16.4.0/24"));
  EXPECT_TRUE(set.overlaps(Prefix::must_parse("172.16.4.128/25")));
  EXPECT_TRUE(set.overlaps(Prefix::must_parse("172.16.0.0/16")));
  EXPECT_FALSE(set.overlaps(Prefix::must_parse("172.16.5.0/24")));
}

TEST(PrefixSet, EdgeOfAddressSpace) {
  PrefixSet set;
  set.add(Prefix::must_parse("255.255.255.0/24"));
  EXPECT_TRUE(set.contains(Ipv4Addr::must_parse("255.255.255.255")));
  set.add(Prefix::must_parse("0.0.0.0/24"));
  EXPECT_TRUE(set.contains(Ipv4Addr{0}));
  EXPECT_EQ(set.range_count(), 2u);
}

TEST(MostSpecificMatcher, LongestPrefixWins) {
  MostSpecificMatcher m;
  m.add(Prefix::must_parse("10.0.0.0/8"));
  m.add(Prefix::must_parse("10.20.0.0/16"));
  m.add(Prefix::must_parse("10.20.30.0/24"));
  EXPECT_EQ(m.match(Ipv4Addr::must_parse("10.20.30.1"))->length(), 24);
  EXPECT_EQ(m.match(Ipv4Addr::must_parse("10.20.99.1"))->length(), 16);
  EXPECT_EQ(m.match(Ipv4Addr::must_parse("10.99.0.1"))->length(), 8);
  EXPECT_FALSE(m.match(Ipv4Addr::must_parse("11.0.0.1")).has_value());
  EXPECT_EQ(m.size(), 3u);
}

TEST(MostSpecificMatcher, PrefixQueryNeedsFullCoverage) {
  MostSpecificMatcher m;
  m.add(Prefix::must_parse("10.20.30.0/24"));
  m.add(Prefix::must_parse("10.20.0.0/16"));
  // A /24 inside the /16 but not inside the /24 matches the /16.
  EXPECT_EQ(m.match(Prefix::must_parse("10.20.31.0/24"))->length(), 16);
  EXPECT_EQ(m.match(Prefix::must_parse("10.20.30.0/24"))->length(), 24);
}

TEST(Mac, FormatAndParse) {
  const auto m = Mac::parse("f0:18:98:ab:cd:ef");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->to_string(), "f0:18:98:ab:cd:ef");
  EXPECT_EQ(m->vendor(), MacVendor::Apple);
  EXPECT_FALSE(m->locally_administered());
}

TEST(Mac, ParseRejectsMalformed) {
  for (const char* bad : {"", "f0:18:98:ab:cd", "f0:18:98:ab:cd:ef:00", "g0:18:98:ab:cd:ef",
                          "f0-18-98-ab-cd-ef"}) {
    EXPECT_FALSE(Mac::parse(bad).has_value()) << bad;
  }
}

TEST(Mac, RandomVendorOui) {
  util::Rng rng{7};
  const Mac apple = Mac::random(MacVendor::Apple, rng);
  EXPECT_EQ(apple.vendor(), MacVendor::Apple);
  const Mac randomized = Mac::random(MacVendor::Randomized, rng);
  EXPECT_TRUE(randomized.locally_administered());
  EXPECT_EQ(randomized.vendor(), MacVendor::Randomized);
}

TEST(Mac, KeyIsStable) {
  util::Rng rng{9};
  const Mac m = Mac::random(MacVendor::Dell, rng);
  EXPECT_EQ(m.key(), Mac::parse(m.to_string())->key());
}

TEST(Arpa, PaperExample) {
  // Example 1 from the paper: 93.184.216.34.
  EXPECT_EQ(to_arpa(Ipv4Addr::must_parse("93.184.216.34")),
            "34.216.184.93.in-addr.arpa");
}

TEST(Arpa, ParseVariants) {
  const auto a = from_arpa("34.216.184.93.in-addr.arpa");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->to_string(), "93.184.216.34");
  EXPECT_TRUE(from_arpa("34.216.184.93.IN-ADDR.ARPA.").has_value());
  EXPECT_FALSE(from_arpa("216.184.93.in-addr.arpa").has_value());  // only 3 octets
  EXPECT_FALSE(from_arpa("256.1.1.1.in-addr.arpa").has_value());
  EXPECT_FALSE(from_arpa("host.example.com").has_value());
}

/// to_arpa / from_arpa round trip.
class ArpaRoundTrip : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ArpaRoundTrip, Survives) {
  const Ipv4Addr a{GetParam()};
  EXPECT_EQ(from_arpa(to_arpa(a)), a);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ArpaRoundTrip,
                         ::testing::Values(0u, 0x0A0A8001u, 0xFFFFFFFFu, 0x01020304u));

TEST(Arpa, ZoneCuts) {
  EXPECT_EQ(arpa_zone_for(Prefix::must_parse("192.0.2.0/24")), "2.0.192.in-addr.arpa");
  EXPECT_EQ(arpa_zone_for(Prefix::must_parse("10.131.0.0/16")), "131.10.in-addr.arpa");
  EXPECT_EQ(arpa_zone_for(Prefix::must_parse("10.0.0.0/8")), "10.in-addr.arpa");
  EXPECT_THROW((void)arpa_zone_for(Prefix::must_parse("10.0.0.0/20")),
               std::invalid_argument);
}

}  // namespace
}  // namespace rdns::net
