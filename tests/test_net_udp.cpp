// net::UdpSocket — the socket layer under the serving loop and the UDP
// transport. Everything here runs over loopback with kernel-assigned ports
// so tests stay parallel-safe and never touch a real network.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "net/udp.hpp"

namespace rdns::net {
namespace {

std::vector<std::uint8_t> bytes(std::initializer_list<std::uint8_t> values) {
  return std::vector<std::uint8_t>{values};
}

UdpSocket must_bind_loopback() {
  auto socket = UdpSocket::bind(UdpEndpoint{0x7f000001, 0}, /*reuse_port=*/false);
  EXPECT_TRUE(socket.has_value());
  return std::move(*socket);
}

TEST(UdpEndpoint, ParsesAndFormats) {
  const auto ep = UdpEndpoint::parse("127.0.0.1:5533");
  ASSERT_TRUE(ep.has_value());
  EXPECT_EQ(ep->address, 0x7f000001u);
  EXPECT_EQ(ep->port, 5533);
  EXPECT_EQ(ep->to_string(), "127.0.0.1:5533");

  EXPECT_FALSE(UdpEndpoint::parse("127.0.0.1").has_value());
  EXPECT_FALSE(UdpEndpoint::parse("127.0.0.1:").has_value());
  EXPECT_FALSE(UdpEndpoint::parse("127.0.0.1:99999").has_value());
  EXPECT_FALSE(UdpEndpoint::parse("not-an-ip:53").has_value());
  EXPECT_FALSE(UdpEndpoint::parse("").has_value());
}

TEST(UdpSocket, BindResolvesKernelAssignedPort) {
  auto socket = must_bind_loopback();
  const auto local = socket.local_endpoint();
  ASSERT_TRUE(local.has_value());
  EXPECT_EQ(local->address, 0x7f000001u);
  EXPECT_NE(local->port, 0);
}

TEST(UdpSocket, RoundTripSingleDatagram) {
  auto server = must_bind_loopback();
  auto client = UdpSocket::open();
  ASSERT_TRUE(client.has_value());
  const auto server_ep = server.local_endpoint();
  ASSERT_TRUE(server_ep.has_value());

  const auto payload = bytes({0xde, 0xad, 0xbe, 0xef});
  ASSERT_TRUE(client->send(payload, *server_ep));

  ASSERT_TRUE(server.wait_readable(2000));
  std::vector<std::uint8_t> buffer(64);
  UdpEndpoint peer{};
  const auto got = server.recv(buffer, &peer);
  ASSERT_TRUE(got.has_value());
  ASSERT_EQ(*got, payload.size());
  buffer.resize(*got);
  EXPECT_EQ(buffer, payload);
  EXPECT_EQ(peer.address, 0x7f000001u);

  // Reply to the observed source: the client sees its own payload echoed.
  ASSERT_TRUE(server.send(buffer, peer));
  ASSERT_TRUE(client->wait_readable(2000));
  std::vector<std::uint8_t> echo(64);
  const auto echoed = client->recv(echo);
  ASSERT_TRUE(echoed.has_value());
  EXPECT_EQ(*echoed, payload.size());
}

TEST(UdpSocket, ConnectedSendAndFilteredRecv) {
  auto server = must_bind_loopback();
  auto client = UdpSocket::open();
  ASSERT_TRUE(client.has_value());
  ASSERT_TRUE(client->connect(*server.local_endpoint()));

  const auto payload = bytes({1, 2, 3});
  ASSERT_TRUE(client->send(payload));
  ASSERT_TRUE(server.wait_readable(2000));
  std::vector<std::uint8_t> buffer(16);
  UdpEndpoint peer{};
  const auto got = server.recv(buffer, &peer);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload.size());
  ASSERT_TRUE(server.send(std::span<const std::uint8_t>{buffer.data(), *got}, peer));
  ASSERT_TRUE(client->wait_readable(2000));
  std::vector<std::uint8_t> reply(16);
  EXPECT_TRUE(client->recv(reply).has_value());
}

TEST(UdpSocket, RecvReportsTrueLengthOnTruncation) {
  auto server = must_bind_loopback();
  auto client = UdpSocket::open();
  ASSERT_TRUE(client.has_value());

  std::vector<std::uint8_t> big(512, 0xab);
  ASSERT_TRUE(client->send(big, *server.local_endpoint()));
  ASSERT_TRUE(server.wait_readable(2000));

  std::vector<std::uint8_t> small(16);
  const auto got = server.recv(small);
  ASSERT_TRUE(got.has_value());
  // True wire length, not the clamped buffer size (MSG_TRUNC semantics):
  // callers compare against buffer.size() to detect truncation.
  EXPECT_EQ(*got, big.size());
  EXPECT_TRUE(std::all_of(small.begin(), small.end(),
                          [](std::uint8_t b) { return b == 0xab; }));
}

TEST(UdpSocket, BatchSendAndBatchRecv) {
  auto server = must_bind_loopback();
  auto client = UdpSocket::open();
  ASSERT_TRUE(client.has_value());
  const auto server_ep = *server.local_endpoint();

  constexpr std::size_t kCount = 10;
  std::vector<UdpDatagram> outbound(kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    outbound[i].payload = bytes({static_cast<std::uint8_t>(i), 0x55});
    outbound[i].peer = server_ep;
  }
  EXPECT_EQ(client->send_batch(outbound.data(), outbound.size()), kCount);

  std::vector<UdpDatagram> inbound;
  std::size_t received = 0;
  while (received < kCount && server.wait_readable(2000)) {
    received += server.recv_batch(inbound, kCount - received);
  }
  ASSERT_EQ(received, kCount);
  // Loopback preserves order, so the batch arrives as sent.
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(inbound[i].payload.size(), 2u);
    EXPECT_EQ(inbound[i].payload[0], static_cast<std::uint8_t>(i));
    EXPECT_FALSE(inbound[i].truncated);
  }
}

TEST(UdpSocket, BatchRecvMarksTruncatedDatagrams) {
  auto server = must_bind_loopback();
  auto client = UdpSocket::open();
  ASSERT_TRUE(client.has_value());
  const auto server_ep = *server.local_endpoint();

  std::vector<std::uint8_t> big(256, 0xcd);
  ASSERT_TRUE(client->send(big, server_ep));
  ASSERT_TRUE(client->send(bytes({0x01}), server_ep));
  ASSERT_TRUE(server.wait_readable(2000));

  std::vector<UdpDatagram> inbound;
  std::size_t received = 0;
  while (received < 2 && server.wait_readable(2000)) {
    received += server.recv_batch(inbound, 2, /*max_payload=*/32);
  }
  ASSERT_EQ(received, 2u);
  EXPECT_TRUE(inbound[0].truncated);
  EXPECT_EQ(inbound[0].payload.size(), 32u);
  EXPECT_FALSE(inbound[1].truncated);
  EXPECT_EQ(inbound[1].payload.size(), 1u);
}

TEST(UdpSocket, ReusePortAllowsTwoBindsOnOnePort) {
  auto first = UdpSocket::bind(UdpEndpoint{0x7f000001, 0}, /*reuse_port=*/true);
  ASSERT_TRUE(first.has_value());
  const auto ep = *first->local_endpoint();
  auto second = UdpSocket::bind(ep, /*reuse_port=*/true);
  EXPECT_TRUE(second.has_value());
  // Without SO_REUSEPORT the same bind must fail.
  std::string error;
  auto third = UdpSocket::bind(ep, /*reuse_port=*/false, &error);
  EXPECT_FALSE(third.has_value());
  EXPECT_FALSE(error.empty());
}

TEST(UdpSocket, RecvOnEmptySocketReturnsNulloptNotBlock) {
  auto socket = must_bind_loopback();
  std::vector<std::uint8_t> buffer(16);
  EXPECT_FALSE(socket.recv(buffer).has_value());
  EXPECT_FALSE(socket.wait_readable(0));
}

TEST(UdpSocket, MoveTransfersOwnership) {
  auto socket = must_bind_loopback();
  const int fd = socket.fd();
  UdpSocket moved{std::move(socket)};
  EXPECT_EQ(moved.fd(), fd);
  EXPECT_FALSE(socket.valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(moved.valid());
}

}  // namespace
}  // namespace rdns::net
