/// End-to-end determinism of the parallel engine: the wire sweep, CSV
/// replay and the analysis stages must produce byte-identical output at
/// every pool size. DNS faults are enabled so the hash-based (order- and
/// thread-independent) fault injection path is exercised too.

#include <gtest/gtest.h>

#include <sstream>

#include "core/dynamicity.hpp"
#include "core/names.hpp"
#include "core/terms.hpp"
#include "scan/csv_replay.hpp"
#include "scan/rdns_snapshot.hpp"
#include "sim/world.hpp"
#include "util/thread_pool.hpp"

namespace rdns {
namespace {

using util::CivilDate;

std::unique_ptr<sim::World> scan_world() {
  auto world = std::make_unique<sim::World>();
  sim::OrgSpec o;
  o.name = "det-target";
  o.type = sim::OrgType::Academic;
  o.suffix = dns::DnsName::must_parse("det.edu");
  o.announced = {net::Prefix::must_parse("10.90.0.0/20")};
  sim::SegmentSpec wifi;
  wifi.label = "wifi";
  wifi.prefix = net::Prefix::must_parse("10.90.4.0/24");
  wifi.schedule = sim::ScheduleKind::AlwaysOn;
  wifi.user_count = 0;
  wifi.always_on_count = 25;
  sim::SegmentSpec lab;
  lab.label = "lab";
  lab.prefix = net::Prefix::must_parse("10.90.5.0/24");
  lab.schedule = sim::ScheduleKind::AlwaysOn;
  lab.user_count = 0;
  lab.always_on_count = 10;
  o.segments = {wifi, lab};
  o.static_ranges = {{net::Prefix::must_parse("10.90.0.0/26"),
                      sim::StaticRangeSpec::Style::GenericNames, 1.0, 1.0}};
  o.seed = 4242;
  world->add_org(std::move(o));
  // Transient faults: decisions must hash (seed, id, qname), never shared
  // RNG state, or parallel runs would diverge from serial ones.
  world->orgs().front()->dns().set_faults(dns::FaultPolicy{0.01, 0.005});
  world->start(CivilDate{2021, 11, 1}, CivilDate{2021, 11, 2});
  world->run_until(util::to_sim_time(CivilDate{2021, 11, 1}) + 12 * util::kHour);
  return world;
}

TEST(ParallelDeterminism, WireSweepIsByteIdenticalAcrossPoolSizes) {
  auto world = scan_world();

  std::string serial_csv;
  std::uint64_t serial_rows = 0;
  dns::ResolverStats serial_stats;
  for (const unsigned threads : {1u, 2u, 4u}) {
    util::ThreadPool pool{threads};
    std::ostringstream out;
    scan::CsvSnapshotSink sink{out};
    dns::ResolverStats stats;
    const auto rows = scan::sweep_wire(*world, CivilDate{2021, 11, 1}, sink, &stats, &pool);
    if (threads == 1) {
      serial_csv = out.str();
      serial_rows = rows;
      serial_stats = stats;
      EXPECT_GT(rows, 0u);
      continue;
    }
    EXPECT_EQ(rows, serial_rows) << threads << " threads";
    EXPECT_EQ(out.str(), serial_csv) << threads << " threads";
    // Per-shard resolver streams are seeded by shard index, so even the
    // aggregate query/outcome counters match the serial run exactly.
    EXPECT_EQ(stats.queries_sent, serial_stats.queries_sent) << threads << " threads";
    EXPECT_EQ(stats.ok, serial_stats.ok) << threads << " threads";
    EXPECT_EQ(stats.nxdomain, serial_stats.nxdomain) << threads << " threads";
    EXPECT_EQ(stats.servfail, serial_stats.servfail) << threads << " threads";
    EXPECT_EQ(stats.timeout, serial_stats.timeout) << threads << " threads";
  }
}

TEST(ParallelDeterminism, WireSweepAgreesWithBulkUnderParallelism) {
  auto world = scan_world();
  struct CollectSink final : scan::SnapshotSink {
    std::map<std::string, std::string> rows;
    void on_row(const CivilDate&, net::Ipv4Addr a, const dns::DnsName& ptr) override {
      rows[a.to_string()] = ptr.to_canonical_string();
    }
  };
  CollectSink bulk;
  scan::sweep_bulk(*world, CivilDate{2021, 11, 1}, bulk);

  util::ThreadPool pool{4};
  CollectSink wire;
  dns::ResolverStats stats;
  scan::sweep_wire(*world, CivilDate{2021, 11, 1}, wire, &stats, &pool);
  // Faults are enabled, so the wire path may miss a few records (timeouts
  // after retries) but must never invent rows the zones do not hold.
  EXPECT_LE(wire.rows.size(), bulk.rows.size());
  EXPECT_GT(wire.rows.size(), bulk.rows.size() / 2);
  for (const auto& [address, ptr] : wire.rows) {
    ASSERT_TRUE(bulk.rows.count(address) > 0) << address;
    EXPECT_EQ(bulk.rows.at(address), ptr) << address;
  }
}

/// Synthetic multi-day CSV: a few /24s with varying daily coverage, plus
/// hostname rows that exercise the term/name stages.
std::string synthetic_campaign_csv() {
  std::ostringstream csv;
  const char* names[] = {"brians-iphone", "emmas-laptop", "static-gw", "core-rtr",
                         "michaels-ipad"};
  for (int day = 1; day <= 14; ++day) {
    for (int block = 0; block < 6; ++block) {
      // Coverage oscillates per block/day so some blocks cross the
      // dynamicity thresholds and others stay quiet.
      const int addresses = 4 + ((day * 7 + block * 13) % 40);
      for (int host = 1; host <= addresses; ++host) {
        csv << "2021-11-" << (day < 10 ? "0" : "") << day << ",10.7." << block << '.' << host
            << ',' << names[(host + block) % 5] << '-' << host << ".pool" << block
            << ".det.edu\n";
      }
    }
  }
  return csv.str();
}

TEST(ParallelDeterminism, CsvReplayIsByteIdenticalAcrossPoolSizes) {
  const std::string csv = synthetic_campaign_csv();
  std::string serial_out;
  scan::ReplayStats serial_stats;
  for (const unsigned threads : {1u, 2u, 4u}) {
    util::ThreadPool pool{threads};
    std::ostringstream out;
    scan::CsvSnapshotSink sink{out};
    const auto stats = scan::replay_csv_text(csv, sink, &pool);
    if (threads == 1) {
      serial_out = out.str();
      serial_stats = stats;
      EXPECT_GT(stats.rows, 0u);
      EXPECT_EQ(stats.sweeps, 14u);
      continue;
    }
    EXPECT_EQ(out.str(), serial_out) << threads << " threads";
    EXPECT_EQ(stats.rows, serial_stats.rows);
    EXPECT_EQ(stats.sweeps, serial_stats.sweeps);
    EXPECT_EQ(stats.skipped, serial_stats.skipped);
  }
}

TEST(ParallelDeterminism, AnalysisStagesMatchSerialAcrossPoolSizes) {
  core::DynamicityDetector detector;
  core::PtrCorpus corpus;
  struct Tee final : scan::SnapshotSink {
    std::vector<scan::SnapshotSink*> sinks;
    void on_row(const CivilDate& d, net::Ipv4Addr a, const dns::DnsName& n) override {
      for (auto* s : sinks) s->on_row(d, a, n);
    }
    void on_sweep_end(const CivilDate& d) override {
      for (auto* s : sinks) s->on_sweep_end(d);
    }
  } tee;
  tee.sinks = {&detector, &corpus};
  scan::replay_csv_text(synthetic_campaign_csv(), tee);

  core::DynamicityConfig config;
  config.min_days_over = 3;
  core::LeakConfig leak;
  leak.min_unique_names = 2;

  util::ThreadPool serial{1};
  const auto base_dyn = detector.analyze(config, &serial);
  const auto base_terms = corpus.term_frequencies(&serial);
  const auto base_names = core::count_name_matches(corpus, &serial);
  const auto base_leaks = core::identify_leaking_networks(corpus, leak, &serial);
  EXPECT_GT(base_dyn.blocks.size(), 0u);
  EXPECT_GT(base_terms.total(), 0);

  for (const unsigned threads : {2u, 4u}) {
    util::ThreadPool pool{threads};

    const auto dyn = detector.analyze(config, &pool);
    EXPECT_EQ(dyn.dynamic_count, base_dyn.dynamic_count);
    ASSERT_EQ(dyn.blocks.size(), base_dyn.blocks.size());
    for (std::size_t i = 0; i < dyn.blocks.size(); ++i) {
      EXPECT_EQ(dyn.blocks[i].block, base_dyn.blocks[i].block);
      EXPECT_EQ(dyn.blocks[i].max_daily, base_dyn.blocks[i].max_daily);
      EXPECT_EQ(dyn.blocks[i].days_over_threshold, base_dyn.blocks[i].days_over_threshold);
      EXPECT_EQ(dyn.blocks[i].dynamic, base_dyn.blocks[i].dynamic);
    }

    EXPECT_EQ(corpus.term_frequencies(&pool).items(), base_terms.items());
    EXPECT_EQ(core::count_name_matches(corpus, &pool), base_names);

    const auto leaks = core::identify_leaking_networks(corpus, leak, &pool);
    EXPECT_EQ(leaks.identified, base_leaks.identified);
    EXPECT_EQ(leaks.matches_per_name, base_leaks.matches_per_name);
    EXPECT_EQ(leaks.filtered_matches_per_name, base_leaks.filtered_matches_per_name);
    ASSERT_EQ(leaks.suffixes.size(), base_leaks.suffixes.size());
    for (const auto& [suffix, stats] : leaks.suffixes) {
      const auto& base = base_leaks.suffixes.at(suffix);
      EXPECT_EQ(stats.records, base.records);
      EXPECT_EQ(stats.unique_names, base.unique_names);
      EXPECT_EQ(stats.identified, base.identified);
    }
  }
}

}  // namespace
}  // namespace rdns
