/// Model-based property tests: long random operation sequences checked
/// against simple reference models — PrefixSet vs a std::set of addresses,
/// AddressPool vs exhaustive invariants, LeaseDb vs a map model, and DNS
/// wire round trips over randomly generated messages.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "dhcp/ddns.hpp"
#include "dhcp/lease.hpp"
#include "dhcp/pool.hpp"
#include "dns/wire.hpp"
#include "dns/zonefile.hpp"
#include "net/arpa.hpp"
#include "net/prefix_set.hpp"
#include "util/rng.hpp"

namespace rdns {
namespace {

// ------------------------------------------------------------- PrefixSet --

class PrefixSetModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrefixSetModel, MatchesNaiveSetOverRandomInserts) {
  util::Rng rng{GetParam()};
  net::PrefixSet set;
  std::set<std::uint32_t> model;

  // Work inside a small universe so collisions/merges are frequent.
  constexpr std::uint32_t kBase = 0x0A000000;
  for (int op = 0; op < 120; ++op) {
    const int length = static_cast<int>(rng.uniform_int(24, 30));
    const std::uint32_t offset = static_cast<std::uint32_t>(rng.uniform_int(0, 4096));
    const net::Prefix p{net::Ipv4Addr{kBase + offset * 4}, length};
    set.add(p);
    for (std::uint64_t v = p.first().value(); v <= p.last().value(); ++v) {
      model.insert(static_cast<std::uint32_t>(v));
    }
  }
  EXPECT_EQ(set.address_count(), model.size());
  // Membership agrees on a sample of addresses in and around the universe.
  for (int i = 0; i < 3000; ++i) {
    const std::uint32_t v = kBase + static_cast<std::uint32_t>(rng.uniform_int(0, 20000));
    EXPECT_EQ(set.contains(net::Ipv4Addr{v}), model.count(v) > 0) << v;
  }
  // Ranges are disjoint, sorted and non-adjacent.
  const auto ranges = set.ranges();
  for (std::size_t i = 1; i < ranges.size(); ++i) {
    EXPECT_GT(ranges[i].first.value(), ranges[i - 1].second.value() + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrefixSetModel, ::testing::Values(1, 2, 3, 4, 5));

// ------------------------------------------------------------------ Pool --

class PoolModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PoolModel, NeverDoubleAllocatesUnderChurn) {
  util::Rng rng{GetParam()};
  dhcp::AddressPool pool;
  pool.add_prefix(net::Prefix::must_parse("10.0.0.0/26"));  // 62 usable

  std::map<std::uint64_t, net::Ipv4Addr> held;  // mac key -> address
  std::vector<net::Mac> macs;
  for (int i = 0; i < 100; ++i) {
    macs.push_back(net::Mac::random(net::MacVendor::Apple, rng));
  }

  for (int op = 0; op < 2000; ++op) {
    const net::Mac& mac = macs[rng.index(macs.size())];
    const auto it = held.find(mac.key());
    if (it == held.end()) {
      const auto got = pool.allocate(mac);
      if (got) {
        // No other client may hold this address.
        for (const auto& [k, a] : held) EXPECT_NE(a, *got);
        held.emplace(mac.key(), *got);
      } else {
        EXPECT_EQ(held.size(), pool.capacity());  // only fails when full
      }
    } else {
      pool.release(it->second, mac);
      held.erase(it);
    }
    EXPECT_EQ(pool.allocated_count(), held.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PoolModel, ::testing::Values(11, 12, 13));

// --------------------------------------------------------------- LeaseDb --

class LeaseDbModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LeaseDbModel, ExpiryMatchesReferenceModel) {
  util::Rng rng{GetParam()};
  dhcp::LeaseDb db;
  // Reference: address -> (expiry, bound?) for live leases.
  std::map<std::uint32_t, std::pair<util::SimTime, bool>> model;

  util::SimTime now = 0;
  for (int op = 0; op < 3000; ++op) {
    now += rng.uniform_int(1, 50);
    const auto roll = rng.uniform();
    const std::uint32_t addr_v = 0x0A000000u + static_cast<std::uint32_t>(rng.uniform_int(0, 40));
    const net::Ipv4Addr addr{addr_v};
    if (roll < 0.45) {
      // Bind (fresh lease).
      dhcp::Lease lease;
      lease.address = addr;
      std::array<std::uint8_t, 6> b{2, 0, 0, 0, 0, static_cast<std::uint8_t>(addr_v & 0xFF)};
      lease.mac = net::Mac{b};
      lease.start = now;
      lease.expiry = now + rng.uniform_int(10, 400);
      lease.state = dhcp::LeaseState::Bound;
      db.upsert(lease);
      model[addr_v] = {lease.expiry, true};
    } else if (roll < 0.65) {
      // Renew if live.
      const auto it = model.find(addr_v);
      if (it != model.end() && it->second.second) {
        const util::SimTime new_expiry = now + rng.uniform_int(10, 400);
        EXPECT_TRUE(db.renew(addr, new_expiry));
        it->second.first = new_expiry;
      } else {
        EXPECT_FALSE(db.renew(addr, now + 100));
      }
    } else if (roll < 0.8) {
      // Release if bound.
      const auto it = model.find(addr_v);
      const bool expect_release = it != model.end() && it->second.second;
      EXPECT_EQ(db.release(addr).has_value(), expect_release);
      if (expect_release) {
        db.erase(addr);
        model.erase(it);
      }
    } else {
      // Advance the clock and expire.
      const auto expired = db.expire_due(now);
      std::set<std::uint32_t> expired_addrs;
      for (const auto& lease : expired) {
        expired_addrs.insert(lease.address.value());
        db.erase(lease.address);
      }
      std::set<std::uint32_t> model_expired;
      for (auto it = model.begin(); it != model.end();) {
        if (it->second.first <= now) {
          model_expired.insert(it->first);
          it = model.erase(it);
        } else {
          ++it;
        }
      }
      EXPECT_EQ(expired_addrs, model_expired) << "at t=" << now;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LeaseDbModel, ::testing::Values(21, 22, 23, 24));

// ------------------------------------------------------------- DNS wire --

dns::DnsName random_name(util::Rng& rng, int max_labels) {
  static const char* kLabels[] = {"brians-iphone", "wifi", "x",    "edu",  "in-addr",
                                  "arpa",          "10",   "128",  "host", "dyn",
                                  "a-very-long-label-with-dashes", "b"};
  std::vector<std::string> labels;
  const int n = 1 + static_cast<int>(rng.index(static_cast<std::size_t>(max_labels)));
  for (int i = 0; i < n; ++i) labels.emplace_back(kLabels[rng.index(12)]);
  return dns::DnsName{std::move(labels)};
}

dns::ResourceRecord random_rr(util::Rng& rng) {
  dns::ResourceRecord rr;
  rr.name = random_name(rng, 5);
  rr.ttl = static_cast<std::uint32_t>(rng.uniform_int(0, 86400));
  switch (rng.index(6)) {
    case 0:
      rr.rdata = dns::ARdata{net::Ipv4Addr{static_cast<std::uint32_t>(rng.next())}};
      break;
    case 1: rr.rdata = dns::NsRdata{random_name(rng, 3)}; break;
    case 2: rr.rdata = dns::CnameRdata{random_name(rng, 4)}; break;
    case 3: {
      dns::SoaRdata soa;
      soa.mname = random_name(rng, 3);
      soa.rname = random_name(rng, 3);
      soa.serial = static_cast<std::uint32_t>(rng.next());
      rr.rdata = std::move(soa);
      break;
    }
    case 4: rr.rdata = dns::PtrRdata{random_name(rng, 5)}; break;
    default: {
      dns::TxtRdata txt;
      const auto parts = 1 + rng.index(3);
      for (std::size_t i = 0; i < parts; ++i) txt.strings.push_back("txt-part");
      rr.rdata = std::move(txt);
      break;
    }
  }
  return rr;
}

class WireRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireRoundTrip, RandomMessagesSurvive) {
  util::Rng rng{GetParam()};
  for (int iteration = 0; iteration < 60; ++iteration) {
    dns::Message m;
    m.id = static_cast<std::uint16_t>(rng.next());
    m.flags.qr = rng.chance(0.5);
    m.flags.aa = rng.chance(0.5);
    m.flags.rd = rng.chance(0.5);
    m.flags.rcode = rng.chance(0.3) ? dns::Rcode::NxDomain : dns::Rcode::NoError;
    const auto n_questions = rng.index(3);
    for (std::size_t i = 0; i < n_questions; ++i) {
      m.questions.push_back(
          dns::Question{random_name(rng, 5), dns::RrType::PTR, dns::RrClass::IN});
    }
    const auto n_answers = rng.index(6);
    for (std::size_t i = 0; i < n_answers; ++i) m.answers.push_back(random_rr(rng));
    const auto n_auth = rng.index(3);
    for (std::size_t i = 0; i < n_auth; ++i) m.authority.push_back(random_rr(rng));

    const auto wire = dns::encode(m);
    const dns::Message decoded = dns::decode(wire);
    ASSERT_EQ(decoded, m);
    // Encoding the decoded message must also round trip (idempotence at
    // the message level, even if compression differs).
    ASSERT_EQ(dns::decode(dns::encode(decoded)), m);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireRoundTrip, ::testing::Values(31, 32, 33, 34, 35, 36));

}  // namespace
}  // namespace rdns

// ----------------------------------------------------- zone file / labels --

namespace rdns {
namespace {

class ZoneFileRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ZoneFileRoundTrip, RandomZonesSurvive) {
  util::Rng rng{GetParam()};
  dns::SoaRdata soa;
  soa.mname = dns::DnsName::must_parse("ns1.x.edu");
  soa.rname = dns::DnsName::must_parse("hostmaster.x.edu");
  soa.serial = static_cast<std::uint32_t>(rng.next());
  dns::Zone zone{dns::DnsName::must_parse("128.10.in-addr.arpa"), soa};

  static const char* kTargets[] = {"brians-iphone.wifi.x.edu", "emmas-ipad.wifi.x.edu",
                                   "host-1.dyn.x.edu",         "srv.x.edu"};
  const int n = 5 + static_cast<int>(rng.index(40));
  for (int i = 0; i < n; ++i) {
    const net::Ipv4Addr a{0x0A800000u + static_cast<std::uint32_t>(rng.uniform_int(1, 4000))};
    const auto owner = dns::DnsName::must_parse(net::to_arpa(a));
    switch (rng.index(3)) {
      case 0:
        zone.add(dns::make_ptr(owner, dns::DnsName::must_parse(kTargets[rng.index(4)]),
                               static_cast<std::uint32_t>(rng.uniform_int(60, 86400))));
        break;
      case 1:
        zone.add(dns::make_txt(owner, {"note", "x"}));
        break;
      default:
        zone.add(dns::make_ns(owner, dns::DnsName::must_parse("ns2.x.edu")));
        break;
    }
  }

  const dns::Zone reparsed = dns::parse_zone(dns::to_zone_file(zone));
  EXPECT_EQ(reparsed.origin(), zone.origin());
  EXPECT_EQ(reparsed.serial(), zone.serial());
  EXPECT_EQ(reparsed.record_count(), zone.record_count());
  // Every record survives exactly.
  zone.for_each([&reparsed](const dns::ResourceRecord& rr) {
    const auto found = reparsed.find(rr.name, rr.type());
    EXPECT_NE(std::find(found.begin(), found.end(), rr), found.end())
        << rr.to_string();
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZoneFileRoundTrip, ::testing::Values(41, 42, 43, 44));

/// Whatever a device announces as its Host Name, the sanitizer must emit
/// something publishable: a valid DNS label or the empty string.
class SanitizerTotal : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SanitizerTotal, AlwaysYieldsValidLabelOrEmpty) {
  util::Rng rng{GetParam()};
  for (int i = 0; i < 500; ++i) {
    std::string raw;
    const auto len = rng.index(80);
    for (std::size_t c = 0; c < len; ++c) {
      raw.push_back(static_cast<char>(rng.uniform_int(1, 255)));
    }
    const std::string label = rdns::dhcp::sanitize_hostname(raw);
    EXPECT_TRUE(label.empty() || dns::is_valid_label(label))
        << "input bytes produced invalid label: " << label;
    if (!label.empty()) {
      EXPECT_NE(label.front(), '-');
      EXPECT_NE(label.back(), '-');
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SanitizerTotal, ::testing::Values(51, 52, 53));

}  // namespace
}  // namespace rdns
