/// Tests for the compact PTR store and the two-tier zone storage built on
/// it: canonical-order rank tables, sparse/dense shapes, generic-name
/// compression, and — the load-bearing guarantee — observable equivalence
/// between compact and legacy zone representations, up to byte-identical
/// sweep CSV output at any thread count.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "dns/ptr_store.hpp"
#include "dns/zone.hpp"
#include "net/arpa.hpp"
#include "scan/rdns_snapshot.hpp"
#include "util/name_pool.hpp"
#include "util/thread_pool.hpp"

namespace rdns::dns {
namespace {

/// Restores the process-wide zone storage default on scope exit (tests in
/// this binary share the process).
struct StorageGuard {
  ZoneStorage saved = Zone::default_storage();
  ~StorageGuard() { Zone::set_default_storage(saved); }
};

SoaRdata test_soa() {
  SoaRdata soa;
  soa.mname = DnsName::must_parse("ns1.x.edu");
  soa.rname = DnsName::must_parse("hostmaster.x.edu");
  soa.serial = 100;
  return soa;
}

DnsName arpa_of(const char* ip) {
  return DnsName::must_parse(net::to_arpa(net::Ipv4Addr::must_parse(ip)));
}

// ------------------------------------------------------------ rank tables --

TEST(PtrStoreRank, TablesAreInverseBijections) {
  const auto& rank = CompactPtrStore::octet_rank();
  const auto& at = CompactPtrStore::octet_at_rank();
  for (int v = 0; v < 256; ++v) {
    EXPECT_EQ(at[rank[v]], v);
    EXPECT_EQ(rank[at[v]], v);
  }
}

TEST(PtrStoreRank, RankOrderIsDecimalStringOrder) {
  const auto& at = CompactPtrStore::octet_at_rank();
  for (int r = 0; r + 1 < 256; ++r) {
    EXPECT_LT(std::to_string(at[r]), std::to_string(at[r + 1]))
        << "rank " << r << " -> " << int(at[r]) << ", rank " << r + 1 << " -> " << int(at[r + 1]);
  }
}

// ------------------------------------------------------------------ store --

TEST(PtrStore, AddFindRemove) {
  util::NamePool pool;
  CompactPtrStore store{&pool, net::Ipv4Addr::must_parse("10.128.0.0").value()};
  const DnsName target = DnsName::must_parse("Brians-iPad.x.edu");
  EXPECT_TRUE(store.add(0x0107, target, 3600));
  EXPECT_TRUE(store.has(0x0107));
  std::vector<CompactPtrStore::Found> found;
  store.find(0x0107, found);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].target, "Brians-iPad.x.edu");  // case preserved
  EXPECT_EQ(found[0].ttl, 3600u);
  // Duplicate (case-insensitive target, same ttl) is rejected ...
  EXPECT_FALSE(store.add(0x0107, DnsName::must_parse("brians-ipad.x.edu"), 3600));
  // ... but a different ttl is a distinct record (RR equality).
  EXPECT_TRUE(store.add(0x0107, target, 7200));
  EXPECT_EQ(store.record_count(), 2u);
  EXPECT_EQ(store.owner_count(), 1u);
  EXPECT_TRUE(store.remove_exact(0x0107, target, 7200));
  EXPECT_FALSE(store.remove_exact(0x0107, target, 7200));
  EXPECT_EQ(store.remove_owner(0x0107), 1u);
  EXPECT_FALSE(store.has(0x0107));
  EXPECT_TRUE(store.empty());
}

TEST(PtrStore, GenericNamesInternOnlyTheSuffix) {
  util::NamePool pool;
  CompactPtrStore store{&pool, net::Ipv4Addr::must_parse("10.3.0.0").value()};
  const std::size_t added = store.add_generic_range(1, 2000, "dynamic.example.net", 300);
  EXPECT_EQ(added, 2000u);
  EXPECT_EQ(store.record_count(), 2000u);
  // 2000 distinct target strings, one interned suffix.
  EXPECT_LE(pool.size(), 1u);
  std::vector<CompactPtrStore::Found> found;
  store.find(0x0102, found);  // 10.3.1.2
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].target, "host-10-3-1-2.dynamic.example.net");
  EXPECT_EQ(found[0].ttl, 300u);
  // A generic-form add through the slow path dedups against the range fill.
  EXPECT_FALSE(store.add(0x0102, DnsName::must_parse("host-10-3-1-2.dynamic.example.net"), 300));
  // Same shape but wrong address octets is NOT generic for this owner.
  EXPECT_TRUE(store.add(0x0102, DnsName::must_parse("host-10-3-9-9.dynamic.example.net"), 300));
  store.find(0x0102, found);
  EXPECT_EQ(found.size(), 3u);  // find() appends
}

TEST(PtrStore, CursorWalksCanonicalOwnerOrder) {
  util::NamePool pool;
  CompactPtrStore store{&pool, net::Ipv4Addr::must_parse("10.7.0.0").value()};
  const std::vector<std::uint16_t> offsets = {0x0000, 0x00FF, 0x0A0A, 0x1400, 0x0107,
                                              0x6400, 0x0B02, 0xFF01, 0x0201, 0x1E1E};
  for (const auto off : offsets) {
    EXPECT_TRUE(store.add(off, DnsName::must_parse("h" + std::to_string(off) + ".x.edu"), 60));
  }
  // Reference order: lexicographic (third octet string, fourth octet string).
  auto sorted = offsets;
  std::sort(sorted.begin(), sorted.end(), [](std::uint16_t a, std::uint16_t b) {
    const auto ka = std::make_pair(std::to_string(a >> 8), std::to_string(a & 0xFF));
    const auto kb = std::make_pair(std::to_string(b >> 8), std::to_string(b & 0xFF));
    return ka < kb;
  });
  std::vector<std::uint16_t> walked;
  auto cur = store.cursor();
  while (cur.next()) walked.push_back(cur.offset());
  EXPECT_EQ(walked, sorted);
}

TEST(PtrStore, DenseCrossoverPreservesEverything) {
  util::NamePool pool;
  CompactPtrStore store{&pool, net::Ipv4Addr::must_parse("10.9.0.0").value()};
  // 6000 owners crosses the 4096 sorted-array threshold mid-loop.
  for (std::uint32_t off = 0; off < 6000; ++off) {
    EXPECT_TRUE(store.add(static_cast<std::uint16_t>(off),
                          DnsName::must_parse("n" + std::to_string(off) + ".x.edu"), 60));
  }
  // Second record at one owner exercises the dense overflow list.
  EXPECT_TRUE(store.add(17, DnsName::must_parse("extra.x.edu"), 60));
  EXPECT_EQ(store.record_count(), 6001u);
  EXPECT_EQ(store.owner_count(), 6000u);
  std::vector<CompactPtrStore::Found> found;
  store.find(17, found);
  ASSERT_EQ(found.size(), 2u);
  EXPECT_EQ(found[0].target, "n17.x.edu");  // insertion order within owner
  EXPECT_EQ(found[1].target, "extra.x.edu");
  // Cursor yields exactly record_count() rows, in nondecreasing canonical
  // key order.
  std::size_t rows = 0;
  int last_key = -1;
  const auto& rank = CompactPtrStore::octet_rank();
  auto cur = store.cursor();
  while (cur.next()) {
    const int key = (rank[cur.offset() >> 8] << 8) | rank[cur.offset() & 0xFF];
    EXPECT_GE(key, last_key);
    last_key = key;
    ++rows;
  }
  EXPECT_EQ(rows, 6001u);
  EXPECT_TRUE(store.remove_exact(17, DnsName::must_parse("N17.X.EDU"), 60));
  store.find(17, found);
  EXPECT_EQ(found.size(), 3u);  // 2 from before + the remaining record
  EXPECT_EQ(found[2].target, "extra.x.edu");
}

// ------------------------------------------- compact/legacy zone parity --

/// Apply the same mutation script to a compact and a legacy zone and
/// assert every observable agrees.
void expect_zones_agree(const Zone& a, const Zone& b) {
  EXPECT_EQ(a.serial(), b.serial());
  EXPECT_EQ(a.record_count(), b.record_count());
  EXPECT_EQ(a.name_count(), b.name_count());
  EXPECT_EQ(a.ptr_count(), b.ptr_count());
  const auto da = a.dump();
  const auto db = b.dump();
  ASSERT_EQ(da.size(), db.size());
  for (std::size_t i = 0; i < da.size(); ++i) {
    EXPECT_EQ(da[i], db[i]) << "dump row " << i;
    // RR equality is case-insensitive; targets must also match byte-wise.
    EXPECT_EQ(da[i].name.to_string(), db[i].name.to_string()) << "dump row " << i;
  }
}

template <typename Fn>
void run_on_both(Fn&& mutate, const std::function<void(const Zone&, const Zone&)>& check =
                                  expect_zones_agree) {
  StorageGuard guard;
  Zone::set_default_storage(ZoneStorage::Compact);
  Zone compact{DnsName::must_parse("128.10.in-addr.arpa"), test_soa()};
  ASSERT_TRUE(compact.compact());
  Zone::set_default_storage(ZoneStorage::Legacy);
  Zone legacy{DnsName::must_parse("128.10.in-addr.arpa"), test_soa()};
  ASSERT_FALSE(legacy.compact());
  mutate(compact);
  mutate(legacy);
  check(compact, legacy);
}

TEST(ZoneParity, MixedAddsDump) {
  run_on_both([](Zone& z) {
    z.add(make_ptr(arpa_of("10.128.1.7"), DnsName::must_parse("Brians-iPad.x.edu")));
    z.add(make_ptr(arpa_of("10.128.1.7"), DnsName::must_parse("second.x.edu")));
    z.add(make_ptr(arpa_of("10.128.0.1"), DnsName::must_parse("host-10-128-0-1.dyn.x.edu"), 300));
    z.add(make_ptr(arpa_of("10.128.255.255"), DnsName::must_parse("edge.x.edu")));
    z.add(make_ptr(arpa_of("10.128.10.2"), DnsName::must_parse("mid.x.edu")));
    // Non-PTR at a PTR owner, and non-address owners: both stay in the map
    // and must interleave identically.
    z.add(make_txt(arpa_of("10.128.1.7"), {"marker"}));
    z.add(make_txt(DnsName::must_parse("_meta.128.10.in-addr.arpa"), {"zone-note"}));
    // Leading-zero octet label: a different owner name than 7.1.*, must not
    // be folded into the compact store.
    z.add(make_ptr(DnsName::must_parse("07.1.128.10.in-addr.arpa"),
                   DnsName::must_parse("zeropad.x.edu")));
  });
}

TEST(ZoneParity, SerialAndRemovalSemantics) {
  run_on_both([](Zone& z) {
    const auto rr = make_ptr(arpa_of("10.128.3.9"), DnsName::must_parse("a.x.edu"));
    z.add(rr);
    z.add(rr);  // dup: no serial bump
    z.add(make_ptr(arpa_of("10.128.3.9"), DnsName::must_parse("b.x.edu")));
    z.add(make_ptr(arpa_of("10.128.4.1"), DnsName::must_parse("c.x.edu")));
    EXPECT_TRUE(z.remove_exact(rr));
    EXPECT_FALSE(z.remove_exact(rr));
    EXPECT_EQ(z.remove(arpa_of("10.128.4.1"), RrType::PTR), 1u);
    EXPECT_EQ(z.remove_all(arpa_of("10.128.3.9")), 1u);
  });
}

TEST(ZoneParity, FindAndNegativeAnswers) {
  run_on_both(
      [](Zone& z) {
        z.add(make_ptr(arpa_of("10.128.1.7"), DnsName::must_parse("CasePreserved.X.edu")));
        z.add(make_txt(arpa_of("10.128.1.7"), {"t"}));
      },
      [](const Zone& a, const Zone& b) {
        expect_zones_agree(a, b);
        const auto owner = arpa_of("10.128.1.7");
        for (const Zone* z : {&a, &b}) {
          const auto ptrs = z->find(owner, RrType::PTR);
          ASSERT_EQ(ptrs.size(), 1u);
          EXPECT_EQ(std::get<PtrRdata>(ptrs[0].rdata).ptrdname.to_string(),
                    "CasePreserved.X.edu");
          EXPECT_EQ(z->find(owner, RrType::ANY).size(), 2u);
          EXPECT_TRUE(z->find(arpa_of("10.128.1.8"), RrType::PTR).empty());
          EXPECT_TRUE(z->has_name(owner));
          EXPECT_FALSE(z->has_name(arpa_of("10.128.1.8")));
          // Query by a differently-cased owner still matches.
          EXPECT_TRUE(z->has_name(DnsName::must_parse("7.1.128.10.IN-ADDR.ARPA")));
        }
      });
}

TEST(ZoneParity, PopulateGenericMatchesPerRecordAdds) {
  run_on_both([](Zone& z) {
    const auto inserted =
        z.populate_generic(net::Ipv4Addr::must_parse("10.128.2.1"),
                           net::Ipv4Addr::must_parse("10.128.3.50"),
                           DnsName::must_parse("dynamic.x.edu"), 300);
    EXPECT_EQ(inserted, 306u);  // 2.1..2.255 (255) + 3.0..3.50 (51)
    // Overlapping re-populate inserts nothing and bumps nothing.
    const auto serial = z.serial();
    EXPECT_EQ(z.populate_generic(net::Ipv4Addr::must_parse("10.128.2.10"),
                                 net::Ipv4Addr::must_parse("10.128.2.20"),
                                 DnsName::must_parse("dynamic.x.edu"), 300),
              0u);
    EXPECT_EQ(z.serial(), serial);
  });
}

TEST(ZoneParity, ForEachPtrTextMatchesDump) {
  run_on_both(
      [](Zone& z) {
        z.populate_generic(net::Ipv4Addr::must_parse("10.128.9.1"),
                           net::Ipv4Addr::must_parse("10.128.9.40"),
                           DnsName::must_parse("dyn.x.edu"), 300);
        z.add(make_ptr(arpa_of("10.128.9.5"), DnsName::must_parse("Named-Device.x.edu")));
      },
      [](const Zone& a, const Zone& b) {
        expect_zones_agree(a, b);
        for (const Zone* z : {&a, &b}) {
          std::vector<std::string> walked;
          z->for_each_ptr([&](net::Ipv4Addr addr, std::string_view target, std::uint32_t ttl) {
            walked.push_back(addr.to_string() + " " + std::string{target} + " " +
                             std::to_string(ttl));
          });
          std::vector<std::string> dumped;
          for (const auto& rr : z->dump()) {
            if (rr.type() != RrType::PTR) continue;
            dumped.push_back(net::from_arpa(rr.name.to_string())->to_string() + " " +
                             std::get<PtrRdata>(rr.rdata).ptrdname.to_string() + " " +
                             std::to_string(rr.ttl));
          }
          EXPECT_EQ(walked, dumped);
        }
      });
}

// ----------------------------------------------- world-level sweep parity --

TEST(WorldParity, SweepCsvByteIdenticalAcrossStorageAndThreads) {
  StorageGuard guard;
  const util::CivilDate date{2021, 10, 27};
  auto sweep_csv = [&](ZoneStorage mode, unsigned threads) {
    Zone::set_default_storage(mode);
    auto world = core::make_scale_world(/*seed=*/3, /*device_target=*/1);
    std::ostringstream out;
    scan::CsvSnapshotSink sink{out};
    util::ThreadPool pool{threads};
    scan::sweep_bulk(*world, date, sink, &pool);
    for (const auto& org : world->orgs()) {
      EXPECT_FALSE(org->population_materialized());
    }
    return out.str();
  };
  const std::string compact1 = sweep_csv(ZoneStorage::Compact, 1);
  const std::string compact4 = sweep_csv(ZoneStorage::Compact, 4);
  const std::string legacy1 = sweep_csv(ZoneStorage::Legacy, 1);
  EXPECT_GT(compact1.size(), 0u);
  EXPECT_EQ(compact1, compact4);
  EXPECT_EQ(compact1, legacy1);
}

TEST(WorldParity, LazyPopulationMaterializesOnDemand) {
  StorageGuard guard;
  Zone::set_default_storage(ZoneStorage::Compact);
  auto world = core::make_scale_world(/*seed=*/5, /*device_target=*/1);
  auto& org = *world->orgs().front();
  EXPECT_FALSE(org.population_materialized());
  const auto devices = org.device_count();  // touches users()
  EXPECT_TRUE(org.population_materialized());
  EXPECT_GT(devices, 0u);
}

}  // namespace
}  // namespace rdns::dns
