/// Tests for the reactive measurement engine (Section 6.1 mechanics): group
/// lifecycle, the PTR-reverted detection, linger timing, flap tolerance and
/// the aggregate counters the figures are built from.

#include <gtest/gtest.h>

#include "scan/campaign.hpp"
#include "scan/reactive.hpp"

namespace rdns::scan {
namespace {

using util::CivilDate;
using util::kHour;
using util::kMinute;

/// An org whose devices are reliably pingable and follow office schedules,
/// so the engine's phase machinery is exercised deterministically enough.
sim::OrgSpec office_org(double clean_release_override = -1.0) {
  sim::OrgSpec o;
  o.name = "Academic-T";
  o.type = sim::OrgType::Academic;
  o.suffix = dns::DnsName::must_parse("reactive-test.edu");
  o.announced = {net::Prefix::must_parse("10.91.0.0/16")};
  o.measurement_targets = {net::Prefix::must_parse("10.91.64.0/24")};
  sim::SegmentSpec seg;
  seg.label = "wifi";
  seg.prefix = net::Prefix::must_parse("10.91.64.0/24");
  seg.schedule = sim::ScheduleKind::OfficeWorker;
  seg.user_count = 25;
  seg.lease_seconds = 3600;
  o.segments = {seg};
  o.seed = 4242;
  (void)clean_release_override;
  return o;
}

class ReactiveFixture : public ::testing::Test {
 protected:
  ReactiveFixture() {
    world_ = std::make_unique<sim::World>();
    world_->add_org(office_org());
    world_->start(CivilDate{2021, 11, 1}, CivilDate{2021, 11, 5});
  }

  ReactiveEngine::Config config() {
    ReactiveEngine::Config c;
    c.seed = 99;
    return c;
  }

  std::unique_ptr<sim::World> world_;
};

TEST_F(ReactiveFixture, CampaignProducesUsableGroups) {
  ReactiveEngine engine{*world_,
                        {{"Academic-T", {net::Prefix::must_parse("10.91.64.0/24")}}},
                        config()};
  engine.run(util::to_sim_time(CivilDate{2021, 11, 1}),
             util::to_sim_time(CivilDate{2021, 11, 4}));

  ASSERT_GT(engine.groups().size(), 10u);

  std::size_t successful = 0, reverted = 0;
  for (const auto& g : engine.groups()) {
    EXPECT_EQ(g.network, "Academic-T");
    if (g.successful()) {
      ++successful;
      EXPECT_FALSE(g.first_ptr.empty());
      EXPECT_GT(g.ptr_observed_gone, g.started);
      EXPECT_GE(g.last_icmp_ok, g.started);
    }
    reverted += g.reverted;
  }
  EXPECT_GT(successful, 0u);
  EXPECT_GE(reverted, successful);  // reverted is implied by successful here

  // The engine observed real hostnames from the DDNS coupling.
  const auto& obs = engine.networks().at("Academic-T");
  EXPECT_GT(obs.unique_ptrs.size(), 5u);
  EXPECT_EQ(obs.target_addresses, 256u);
  EXPECT_GT(obs.icmp_responsive.size(), 0u);
}

TEST_F(ReactiveFixture, LingerMinutesBoundedByLeaseMechanics) {
  ReactiveEngine engine{*world_,
                        {{"Academic-T", {net::Prefix::must_parse("10.91.64.0/24")}}},
                        config()};
  engine.run(util::to_sim_time(CivilDate{2021, 11, 1}),
             util::to_sim_time(CivilDate{2021, 11, 4}));
  for (const auto& g : engine.groups()) {
    if (!g.successful() || !g.reverted) continue;
    const double linger = g.linger_minutes();
    EXPECT_GE(linger, 0.0);
    // With 1h leases, removal can trail the last ICMP response by at most
    // ~1h of lease remainder plus ~1h of probe gap plus slack.
    EXPECT_LE(linger, 150.0) << "group " << g.group_id;
  }
}

TEST_F(ReactiveFixture, HourlyActivityFollowsDiurnalPattern) {
  ReactiveEngine engine{*world_,
                        {{"Academic-T", {net::Prefix::must_parse("10.91.64.0/24")}}},
                        config()};
  const util::SimTime from = util::to_sim_time(CivilDate{2021, 11, 1});
  engine.run(from, util::to_sim_time(CivilDate{2021, 11, 4}));

  // Office network: 4 AM quieter than 1 PM (summed across days).
  std::uint64_t night = 0, day = 0;
  for (const auto& [hour, activity] : engine.hourly_activity()) {
    const util::SimTime t = hour * kHour;
    const int hod = static_cast<int>((t % util::kDay) / kHour);
    if (hod == 4) night += activity.icmp_ok;
    if (hod == 13) day += activity.icmp_ok;
  }
  EXPECT_GT(day, night);
}

TEST_F(ReactiveFixture, DailyErrorCountersTrackLookups) {
  ReactiveEngine engine{*world_,
                        {{"Academic-T", {net::Prefix::must_parse("10.91.64.0/24")}}},
                        config()};
  engine.run(util::to_sim_time(CivilDate{2021, 11, 1}),
             util::to_sim_time(CivilDate{2021, 11, 3}));
  std::uint64_t lookups = 0;
  for (const auto& [day, counts] : engine.daily_errors()) lookups += counts.lookups;
  EXPECT_EQ(lookups, engine.rdns_lookups());
  EXPECT_GT(lookups, 0u);
}

TEST(Reactive, FaultyServersShowUpInErrorCounters) {
  sim::World world;
  sim::OrgSpec o = office_org();
  o.dns_faults = dns::FaultPolicy{0.10, 0.05};
  world.add_org(std::move(o));
  world.start(CivilDate{2021, 11, 1}, CivilDate{2021, 11, 3});

  ReactiveEngine::Config c;
  c.seed = 77;
  ReactiveEngine engine{world, {{"Academic-T", {net::Prefix::must_parse("10.91.64.0/24")}}}, c};
  engine.run(util::to_sim_time(CivilDate{2021, 11, 1}),
             util::to_sim_time(CivilDate{2021, 11, 3}));
  std::uint64_t servfail = 0, timeout = 0;
  for (const auto& [day, counts] : engine.daily_errors()) {
    servfail += counts.servfail;
    timeout += counts.timeout;
  }
  EXPECT_GT(servfail, 0u);
  EXPECT_GT(timeout, 0u);
}

TEST(Reactive, PingBlockedNetworkYieldsNoGroups) {
  sim::World world;
  sim::OrgSpec o = office_org();
  o.name = "Enterprise-T";
  o.blocks_icmp = true;
  world.add_org(std::move(o));
  world.start(CivilDate{2021, 11, 1}, CivilDate{2021, 11, 3});

  ReactiveEngine engine{world, {{"Enterprise-T", {net::Prefix::must_parse("10.91.64.0/24")}}}};
  // Stop the campaign mid-afternoon so clients are still on the network.
  engine.run(util::to_sim_time(CivilDate{2021, 11, 1}),
             util::to_sim_time(CivilDate{2021, 11, 2}) + 14 * kHour);
  EXPECT_TRUE(engine.groups().empty());
  EXPECT_EQ(engine.icmp_responses(), 0u);
  // ... yet the PTR records are still there for anyone who queries rDNS
  // (the paper's key observation about Enterprise-B/C).
  std::size_t ptrs = 0;
  world.snapshot_ptrs([&](net::Ipv4Addr, const dns::DnsName&) { ++ptrs; });
  EXPECT_GT(ptrs, 0u);
}

TEST(Campaign, PaperTargetsFilterByName) {
  sim::World world;
  world.add_org(office_org());  // named Academic-T: matches "Academic-"
  sim::OrgSpec other = office_org();
  other.name = "background-org";
  other.announced = {net::Prefix::must_parse("10.92.0.0/16")};
  other.measurement_targets.clear();
  other.segments[0].prefix = net::Prefix::must_parse("10.92.64.0/24");
  world.add_org(std::move(other));
  const auto targets = paper_targets(world);
  ASSERT_EQ(targets.size(), 1u);
  EXPECT_EQ(targets[0].network, "Academic-T");
  // measurement_targets (not announced) drive the probing.
  ASSERT_EQ(targets[0].prefixes.size(), 1u);
  EXPECT_EQ(targets[0].prefixes[0].to_string(), "10.91.64.0/24");
}

TEST(Campaign, TotalsAndRowsConsistent) {
  sim::World world;
  world.add_org(office_org());
  world.start(CivilDate{2021, 11, 1}, CivilDate{2021, 11, 3});
  CampaignWindow window;
  window.from = CivilDate{2021, 11, 1};
  window.to = CivilDate{2021, 11, 2};
  SupplementalCampaign campaign{world, paper_targets(world), window};
  campaign.run();
  const auto totals = campaign.totals();
  EXPECT_GT(totals.icmp_responses, 0u);
  EXPECT_GT(totals.rdns_unique_ptrs, 0u);
  const auto rows = campaign.network_rows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].name, "Academic-T");
  EXPECT_EQ(rows[0].type, "academic");
  EXPECT_GT(rows[0].percent_observed, 0.0);
  EXPECT_LE(rows[0].percent_observed, 100.0);
}

}  // namespace
}  // namespace rdns::scan
