/// Tests for the scanning substrate: the ZMap-style permutation, the ICMP
/// sweep scanner with blocklisting, the Table 2 back-off schedule, and the
/// full-space snapshot drivers.

#include <gtest/gtest.h>

#include <set>

#include "scan/icmp.hpp"
#include "scan/permutation.hpp"
#include "scan/rdns_snapshot.hpp"
#include "scan/reactive.hpp"

namespace rdns::scan {
namespace {

using util::CivilDate;
using util::kHour;
using util::kMinute;

/// Full-coverage property: every index appears exactly once per cycle.
class PermutationCoverage : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PermutationCoverage, VisitsEachIndexOnce) {
  const std::uint64_t n = GetParam();
  ScanPermutation perm{n, 0xBADC0FFEE};
  std::set<std::uint64_t> seen;
  while (const auto v = perm.next()) {
    EXPECT_LT(*v, n);
    EXPECT_TRUE(seen.insert(*v).second) << "duplicate " << *v;
  }
  EXPECT_EQ(seen.size(), n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PermutationCoverage,
                         ::testing::Values(1, 2, 3, 7, 64, 100, 255, 256, 1000, 65536));

TEST(Permutation, OrderVariesWithSeed) {
  ScanPermutation a{1000, 1}, b{1000, 2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += (*a.next() == *b.next());
  }
  EXPECT_LT(same, 20);
}

TEST(Permutation, OrderIsNotSequential) {
  ScanPermutation perm{4096, 99};
  int sequential = 0;
  auto prev = *perm.next();
  for (int i = 0; i < 500; ++i) {
    const auto v = *perm.next();
    sequential += (v == prev + 1);
    prev = v;
  }
  EXPECT_LT(sequential, 25);  // random-looking order, unlike a linear sweep
}

TEST(Permutation, ResetReplaysSameOrder) {
  ScanPermutation perm{100, 5};
  std::vector<std::uint64_t> first;
  while (const auto v = perm.next()) first.push_back(*v);
  perm.reset();
  std::vector<std::uint64_t> second;
  while (const auto v = perm.next()) second.push_back(*v);
  EXPECT_EQ(first, second);
}

TEST(Permutation, RejectsZero) {
  EXPECT_THROW(ScanPermutation(0, 1), std::invalid_argument);
}

/// Table 2, verbatim.
TEST(Backoff, MatchesTable2) {
  // 12 probes at 5-minute intervals (1st hour).
  for (int i = 0; i < 12; ++i) EXPECT_EQ(BackoffSchedule::interval_after(i), 5 * kMinute);
  // 6 at 10 minutes (2nd hour).
  for (int i = 12; i < 18; ++i) EXPECT_EQ(BackoffSchedule::interval_after(i), 10 * kMinute);
  // 3 at 20 minutes (3rd hour).
  for (int i = 18; i < 21; ++i) EXPECT_EQ(BackoffSchedule::interval_after(i), 20 * kMinute);
  // 2 at 30 minutes (4th hour).
  for (int i = 21; i < 23; ++i) EXPECT_EQ(BackoffSchedule::interval_after(i), 30 * kMinute);
  // Then hourly.
  EXPECT_EQ(BackoffSchedule::interval_after(23), 60 * kMinute);
  EXPECT_EQ(BackoffSchedule::interval_after(100), 60 * kMinute);
}

TEST(Backoff, HourBoundariesLineUp) {
  EXPECT_EQ(BackoffSchedule::offset_of(12), 1 * kHour);
  EXPECT_EQ(BackoffSchedule::offset_of(18), 2 * kHour);
  EXPECT_EQ(BackoffSchedule::offset_of(21), 3 * kHour);
  EXPECT_EQ(BackoffSchedule::offset_of(23), 4 * kHour);
}

sim::OrgSpec tiny_org() {
  sim::OrgSpec o;
  o.name = "scan-target";
  o.type = sim::OrgType::Academic;
  o.suffix = dns::DnsName::must_parse("scan.edu");
  o.announced = {net::Prefix::must_parse("10.90.0.0/16")};
  sim::SegmentSpec seg;
  seg.label = "wifi";
  seg.prefix = net::Prefix::must_parse("10.90.64.0/25");
  seg.schedule = sim::ScheduleKind::AlwaysOn;  // deterministic presence
  seg.user_count = 0;
  seg.always_on_count = 10;
  o.segments = {seg};
  o.static_ranges = {{net::Prefix::must_parse("10.90.0.0/28"),
                      sim::StaticRangeSpec::Style::GenericNames, 1.0, 1.0}};
  o.seed = 777;
  return o;
}

TEST(IcmpScanner, FindsStaticHosts) {
  sim::World world;
  world.add_org(tiny_org());
  world.start(CivilDate{2021, 11, 1}, CivilDate{2021, 11, 2});
  world.run_until(util::to_sim_time(CivilDate{2021, 11, 1}) + 12 * kHour);

  IcmpScanner scanner{world};
  const auto result = scanner.sweep({net::Prefix::must_parse("10.90.0.0/24")});
  EXPECT_EQ(result.probes_sent, 256u);
  EXPECT_GE(result.responsive.size(), 10u);  // 14 static hosts, ~99.5% reliable
  EXPECT_GT(result.duration, 0);
}

TEST(IcmpScanner, BlocklistHonoursOptOut) {
  sim::World world;
  world.add_org(tiny_org());
  world.start(CivilDate{2021, 11, 1}, CivilDate{2021, 11, 2});
  world.run_until(util::to_sim_time(CivilDate{2021, 11, 1}) + 12 * kHour);

  IcmpScanner scanner{world};
  scanner.blocklist(net::Prefix::must_parse("10.90.0.0/28"));
  const auto result = scanner.sweep({net::Prefix::must_parse("10.90.0.0/24")});
  EXPECT_EQ(result.blocklisted_skipped, 16u);
  EXPECT_EQ(result.probes_sent, 240u);
  for (const auto addr : result.responsive) {
    EXPECT_FALSE(net::Prefix::must_parse("10.90.0.0/28").contains(addr));
  }
}

TEST(SnapshotSweep, BulkAndWireAgree) {
  sim::World world;
  world.add_org(tiny_org());
  world.start(CivilDate{2021, 11, 1}, CivilDate{2021, 11, 2});
  world.run_until(util::to_sim_time(CivilDate{2021, 11, 1}) + 12 * kHour);

  struct CollectSink final : SnapshotSink {
    std::map<std::string, std::string> rows;
    void on_row(const CivilDate&, net::Ipv4Addr a, const dns::DnsName& ptr) override {
      rows[a.to_string()] = ptr.to_canonical_string();
    }
  };
  CollectSink bulk, wire;
  const auto bulk_rows = sweep_bulk(world, CivilDate{2021, 11, 1}, bulk);
  dns::ResolverStats stats;
  const auto wire_rows = sweep_wire(world, CivilDate{2021, 11, 1}, wire, &stats);
  EXPECT_EQ(bulk_rows, wire_rows);
  EXPECT_EQ(bulk.rows, wire.rows);
  EXPECT_GT(stats.queries_sent, 0u);
}

TEST(SweepDriver, DailyVersusWeeklyCadence) {
  sim::World world;
  world.add_org(tiny_org());
  world.start(CivilDate{2021, 11, 1}, CivilDate{2021, 11, 30});

  struct CountSink final : SnapshotSink {
    int sweeps = 0;
    void on_row(const CivilDate&, net::Ipv4Addr, const dns::DnsName&) override {}
    void on_sweep_end(const CivilDate&) override { ++sweeps; }
  };
  CountSink daily;
  SweepDriver daily_driver{world, 14, 1};
  const auto stats = daily_driver.run(CivilDate{2021, 11, 1}, CivilDate{2021, 11, 14}, daily);
  EXPECT_EQ(stats.sweeps, 14u);
  EXPECT_EQ(daily.sweeps, 14);

  CountSink weekly;
  SweepDriver weekly_driver{world, 15, 7};
  const auto wstats =
      weekly_driver.run(CivilDate{2021, 11, 15}, CivilDate{2021, 11, 29}, weekly);
  EXPECT_EQ(wstats.sweeps, 3u);
}

TEST(CsvSnapshotSink, WritesSchema) {
  std::ostringstream out;
  CsvSnapshotSink sink{out};
  sink.on_row(CivilDate{2021, 11, 1}, net::Ipv4Addr::must_parse("10.90.0.1"),
              dns::DnsName::must_parse("brians-mbp.wifi.scan.edu"));
  EXPECT_EQ(out.str(), "2021-11-01,10.90.0.1,brians-mbp.wifi.scan.edu\n");
}

}  // namespace
}  // namespace rdns::scan
