// Serve-path hardening: wire classification, minimal guard responses, RRL
// with slip-to-TC, the shed ladder, and the hardened UdpServerLoop end to
// end over loopback (guarded answers, REFUSED policy, drain accounting).

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "dns/message.hpp"
#include "dns/serve_guard.hpp"
#include "dns/udp_server.hpp"
#include "dns/wire.hpp"
#include "net/ipv4.hpp"
#include "net/udp.hpp"

namespace rdns::dns {
namespace {

std::vector<std::uint8_t> ptr_query_wire(std::uint16_t id = 0x1234) {
  return encode(make_ptr_query(id, net::Ipv4Addr{10, 1, 2, 3}));
}

std::vector<std::uint8_t> query_wire(RrType qtype, RrClass qclass,
                                     std::uint16_t id = 0x1234) {
  Message q = make_query(id, DnsName::must_parse("host.example.com"), qtype);
  q.questions[0].qclass = qclass;
  return encode(q);
}

// -- classify_query -----------------------------------------------------

TEST(ClassifyQuery, WellFormedPtrIsAnswer) {
  const auto wire = ptr_query_wire();
  const Classified c = classify_query(wire, /*restrict_ptr=*/true);
  EXPECT_EQ(c.verdict, WireVerdict::Answer);
  EXPECT_EQ(c.question_end, wire.size());
  EXPECT_FALSE(c.chaos);
}

TEST(ClassifyQuery, RuntDatagramIsSilentDrop) {
  const std::vector<std::uint8_t> runt(11, 0x00);
  EXPECT_EQ(classify_query(runt, true).verdict, WireVerdict::SilentDrop);
  EXPECT_EQ(classify_query({}, true).verdict, WireVerdict::SilentDrop);
}

TEST(ClassifyQuery, ResponseBitIsSilentDrop) {
  auto wire = ptr_query_wire();
  wire[2] |= 0x80;  // QR=1: a reflected response, never answer it
  EXPECT_EQ(classify_query(wire, true).verdict, WireVerdict::SilentDrop);
}

TEST(ClassifyQuery, UnsupportedOpcodeIsNotImp) {
  auto wire = ptr_query_wire();
  wire[2] = static_cast<std::uint8_t>((wire[2] & 0x87) | (5u << 3));  // UPDATE
  EXPECT_EQ(classify_query(wire, true).verdict, WireVerdict::NotImp);
}

TEST(ClassifyQuery, WrongQdcountIsFormErr) {
  auto wire = ptr_query_wire();
  wire[5] = 2;  // QDCOUNT=2
  EXPECT_EQ(classify_query(wire, true).verdict, WireVerdict::FormErr);
  wire[5] = 0;
  EXPECT_EQ(classify_query(wire, true).verdict, WireVerdict::FormErr);
}

TEST(ClassifyQuery, TruncatedQuestionIsFormErr) {
  const auto wire = ptr_query_wire();
  const std::span<const std::uint8_t> cut{wire.data(), wire.size() - 3};
  EXPECT_EQ(classify_query(cut, true).verdict, WireVerdict::FormErr);
}

TEST(ClassifyQuery, BadLabelIsFormErr) {
  auto wire = ptr_query_wire();
  wire[13] = '!';  // first label byte: not LDH
  EXPECT_EQ(classify_query(wire, true).verdict, WireVerdict::FormErr);
}

TEST(ClassifyQuery, LabelLengthLieIsFormErr) {
  auto wire = ptr_query_wire();
  wire[12] = 63;  // claims 63 bytes; the question is far shorter
  EXPECT_EQ(classify_query(wire, true).verdict, WireVerdict::FormErr);
}

TEST(ClassifyQuery, NonPtrUnderPolicyIsRefused) {
  EXPECT_EQ(classify_query(query_wire(RrType::A, RrClass::IN), true).verdict,
            WireVerdict::Refused);
  // Policy off: any IN qtype is answerable.
  EXPECT_EQ(classify_query(query_wire(RrType::A, RrClass::IN), false).verdict,
            WireVerdict::Answer);
}

TEST(ClassifyQuery, NonInClassIsRefused) {
  EXPECT_EQ(classify_query(query_wire(RrType::PTR, RrClass::CH), true).verdict,
            WireVerdict::Refused);
}

TEST(ClassifyQuery, ChaosTxtIsAnswerWithChaosFlag) {
  const Classified c = classify_query(query_wire(RrType::TXT, RrClass::CH), true);
  EXPECT_EQ(c.verdict, WireVerdict::Answer);
  EXPECT_TRUE(c.chaos);
}

TEST(ClassifyQuery, ExtraSectionsTakeSlowPath) {
  // A query with ARCOUNT=1 and a well-formed additional RR must still
  // classify Answer (the slow path decodes it fully).
  Message q = make_ptr_query(0x77, net::Ipv4Addr{10, 0, 0, 1});
  ResourceRecord rr;
  rr.name = DnsName::must_parse("extra.example.com");
  rr.klass = RrClass::IN;
  rr.ttl = 60;
  rr.rdata = TxtRdata{{"x"}};
  q.additional.push_back(rr);
  const auto wire = encode(q);
  EXPECT_EQ(classify_query(wire, true).verdict, WireVerdict::Answer);

  // The same message with a lying ARCOUNT and no RR bytes is FORMERR.
  auto lying = ptr_query_wire();
  lying[11] = 1;  // ARCOUNT=1, nothing follows the question
  EXPECT_EQ(classify_query(lying, true).verdict, WireVerdict::FormErr);
}

TEST(ClassifyQuery, CompressedQnameClassifiesViaDecoder) {
  // Craft a query whose qname is a single compression pointer to itself's
  // prefix — legal per the codec (forward pointers bounded by wire size).
  auto wire = ptr_query_wire();
  // Header + pointer(2) + qtype/qclass(4).
  std::vector<std::uint8_t> hacked(wire.begin(), wire.begin() + 12);
  hacked.push_back(0xC0);
  hacked.push_back(12);  // points at itself -> loops; must be FormErr
  hacked.push_back(0x00);
  hacked.push_back(12);  // PTR
  hacked.push_back(0x00);
  hacked.push_back(1);  // IN
  const Classified c = classify_query(hacked, true);
  EXPECT_EQ(c.verdict, WireVerdict::FormErr);
  EXPECT_EQ(c.question_end, 0u);  // compressed names never echo
}

// -- make_guard_response ------------------------------------------------

TEST(GuardResponse, EchoesQuestionAndSetsRcode) {
  const auto wire = ptr_query_wire(0xBEEF);
  const auto reply = make_guard_response(wire, wire.size(), Rcode::Refused, false);
  const Message m = decode(reply);
  EXPECT_EQ(m.id, 0xBEEF);
  EXPECT_TRUE(m.flags.qr);
  EXPECT_FALSE(m.flags.tc);
  EXPECT_EQ(m.flags.rcode, Rcode::Refused);
  ASSERT_EQ(m.questions.size(), 1u);
  EXPECT_EQ(m.questions[0].qtype, RrType::PTR);
  EXPECT_TRUE(m.answers.empty());
}

TEST(GuardResponse, TcBitForRrlSlip) {
  const auto wire = ptr_query_wire();
  const auto reply = make_guard_response(wire, wire.size(), Rcode::NoError, true);
  const Message m = decode(reply);
  EXPECT_TRUE(m.flags.tc);
  EXPECT_EQ(m.flags.rcode, Rcode::NoError);
}

TEST(GuardResponse, BareHeaderWhenQuestionDidNotScan) {
  const auto wire = ptr_query_wire(0x0102);
  const auto reply = make_guard_response(wire, /*question_end=*/0, Rcode::FormErr, false);
  ASSERT_GE(reply.size(), 12u);
  const Message m = decode(reply);
  EXPECT_EQ(m.id, 0x0102);
  EXPECT_EQ(m.flags.rcode, Rcode::FormErr);
  EXPECT_TRUE(m.questions.empty());
}

TEST(GuardResponse, SurvivesTinyInput) {
  // Even a runt input yields a decodable 12-byte header.
  const std::vector<std::uint8_t> runt{0xAB, 0xCD};
  const auto reply = make_guard_response(runt, 0, Rcode::FormErr, false);
  ASSERT_EQ(reply.size(), 12u);
  EXPECT_NO_THROW(decode(reply));
}

// -- ServeGuard: RRL ----------------------------------------------------

ServeHardeningOptions rrl_options(double rate, double burst = 0.0, unsigned slip = 2) {
  ServeHardeningOptions o;
  o.guard = true;
  o.rrl_rate = rate;
  o.rrl_burst = burst;
  o.rrl_slip = slip;
  return o;
}

TEST(ServeGuardRrl, BudgetThenDropAndSlip) {
  ServeGuard guard{rrl_options(2.0)};
  ASSERT_TRUE(guard.rrl_armed());
  const std::uint32_t client = 0x0A010203;
  // Burst defaults to the rate: two answers, then the slip cadence
  // (every 2nd over-limit query slips to TC).
  EXPECT_EQ(guard.rrl_check(client, 0), ServeGuard::RrlDecision::Answer);
  EXPECT_EQ(guard.rrl_check(client, 0), ServeGuard::RrlDecision::Answer);
  EXPECT_EQ(guard.rrl_check(client, 0), ServeGuard::RrlDecision::Drop);
  EXPECT_EQ(guard.rrl_check(client, 0), ServeGuard::RrlDecision::Slip);
  EXPECT_EQ(guard.rrl_check(client, 0), ServeGuard::RrlDecision::Drop);
  EXPECT_EQ(guard.rrl_check(client, 0), ServeGuard::RrlDecision::Slip);
}

TEST(ServeGuardRrl, BucketIsPerSlash24) {
  ServeGuard guard{rrl_options(1.0)};
  EXPECT_EQ(guard.rrl_check(0x0A010203, 0), ServeGuard::RrlDecision::Answer);
  // Same /24: shares the (now empty) bucket.
  EXPECT_NE(guard.rrl_check(0x0A0102FF, 0), ServeGuard::RrlDecision::Answer);
  // Different /24: fresh budget.
  EXPECT_EQ(guard.rrl_check(0x0A010303, 0), ServeGuard::RrlDecision::Answer);
  EXPECT_EQ(guard.table_size(), 2u);
}

TEST(ServeGuardRrl, RefillsWithWallClock) {
  ServeGuard guard{rrl_options(1.0)};
  const std::uint32_t client = 0xC0A80001;
  EXPECT_EQ(guard.rrl_check(client, 0), ServeGuard::RrlDecision::Answer);
  EXPECT_NE(guard.rrl_check(client, 0), ServeGuard::RrlDecision::Answer);
  EXPECT_EQ(guard.rrl_check(client, 1), ServeGuard::RrlDecision::Answer);
}

TEST(ServeGuardRrl, TableCapFlushesInsteadOfGrowing) {
  ServeHardeningOptions o = rrl_options(1.0);
  o.rrl_table_cap = 8;
  ServeGuard guard{o};
  for (std::uint32_t i = 0; i < 20; ++i) {
    (void)guard.rrl_check(i << 8, 0);  // 20 distinct /24s
  }
  EXPECT_LE(guard.table_size(), 8u);
  EXPECT_GE(guard.table_flushes(), 1u);
}

// -- ServeGuard: shed ladder ---------------------------------------------

TEST(ServeGuardShed, LadderClimbsAndDecays) {
  ServeHardeningOptions o;
  o.guard = true;
  o.shed_l1_batches = 2;
  o.shed_l2_batches = 4;
  o.shed_l3_batches = 8;
  ServeGuard guard{o};
  EXPECT_EQ(guard.on_batch(true), 0u);
  EXPECT_EQ(guard.on_batch(true), 1u);   // streak 2 -> L1
  EXPECT_EQ(guard.on_batch(true), 1u);
  EXPECT_EQ(guard.on_batch(true), 2u);   // streak 4 -> L2
  for (int i = 0; i < 4; ++i) (void)guard.on_batch(true);
  EXPECT_EQ(guard.shed_level(), 3u);     // streak 8 -> L3
  // A breather halves the streak: 8 -> 4 -> 2 -> 1 -> 0.
  EXPECT_EQ(guard.on_batch(false), 2u);
  EXPECT_EQ(guard.on_batch(false), 1u);
  EXPECT_EQ(guard.on_batch(false), 0u);
}

TEST(ServeGuardShed, AnswerShedIsOneInN) {
  ServeHardeningOptions o;
  o.guard = true;
  o.shed_answer_every = 4;
  ServeGuard guard{o};
  int shed = 0;
  for (int i = 0; i < 100; ++i) shed += guard.shed_answer() ? 1 : 0;
  EXPECT_EQ(shed, 25);
}

// -- hardened UdpServerLoop over loopback --------------------------------

/// Echo handler: answers any query with an empty NOERROR response.
UdpServerLoop::WireHandler echo_handler() {
  return [](std::span<const std::uint8_t> query)
             -> std::optional<std::vector<std::uint8_t>> {
    const Message q = decode(query);
    return encode(make_response(q, Rcode::NoError));
  };
}

struct LoopClient {
  net::UdpSocket socket;
  net::UdpEndpoint server;

  explicit LoopClient(const net::UdpEndpoint& endpoint)
      : socket(*net::UdpSocket::open()), server(endpoint) {}

  void send(const std::vector<std::uint8_t>& wire) {
    ASSERT_TRUE(socket.send(wire, server));
  }

  std::optional<Message> recv(int timeout_ms = 2000) {
    if (!socket.wait_readable(timeout_ms)) return std::nullopt;
    std::vector<std::uint8_t> buffer(1024);
    net::UdpEndpoint from;
    const auto n = socket.recv(buffer, &from);
    if (!n) return std::nullopt;
    buffer.resize(*n);
    return decode(buffer);
  }
};

TEST(HardenedLoop, GuardClassifiesOverRealSockets) {
  UdpServeOptions options;
  options.threads = 1;
  options.hardening.guard = true;
  UdpServerLoop loop{options, [](unsigned) { return echo_handler(); }};
  ASSERT_TRUE(loop.start());
  LoopClient client{loop.endpoint()};

  // Well-formed PTR: answered NOERROR.
  client.send(ptr_query_wire(0x0001));
  auto reply = client.recv();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->flags.rcode, Rcode::NoError);

  // Non-PTR under policy: REFUSED without touching the handler.
  client.send(query_wire(RrType::A, RrClass::IN, 0x0002));
  reply = client.recv();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->flags.rcode, Rcode::Refused);

  // UPDATE opcode: NOTIMP.
  auto update = ptr_query_wire(0x0003);
  update[2] = static_cast<std::uint8_t>((update[2] & 0x87) | (5u << 3));
  client.send(update);
  reply = client.recv();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->flags.rcode, Rcode::NotImp);

  // Garbage: silence (bounded wait, not a wedge — the next query answers).
  client.send({0xFF, 0x00, 0xAA});
  EXPECT_FALSE(client.recv(300).has_value());
  client.send(ptr_query_wire(0x0004));
  reply = client.recv();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->id, 0x0004);

  loop.stop();
  const UdpServeStats& stats = loop.stats();
  EXPECT_EQ(stats.datagrams_received, 5u);
  EXPECT_EQ(stats.responses_sent, 4u);
  EXPECT_EQ(stats.dropped_malformed, 1u);
  EXPECT_EQ(stats.refused_sent, 1u);
  EXPECT_EQ(stats.notimp_sent, 1u);
  // The partition invariant the schema checker enforces on serve.stop.
  EXPECT_EQ(stats.datagrams_received,
            stats.responses_sent + stats.send_failures + stats.truncated_queries +
                stats.dropped_total());
}

TEST(HardenedLoop, RrlSlipsToTcOverLoopback) {
  UdpServeOptions options;
  options.threads = 1;
  options.hardening.guard = true;
  options.hardening.rrl_rate = 2.0;
  options.hardening.rrl_slip = 2;
  UdpServerLoop loop{options, [](unsigned) { return echo_handler(); }};
  ASSERT_TRUE(loop.start());
  LoopClient client{loop.endpoint()};

  constexpr int kQueries = 12;
  for (int i = 0; i < kQueries; ++i) {
    client.send(ptr_query_wire(static_cast<std::uint16_t>(i)));
  }
  int answered = 0;
  int slipped = 0;
  while (auto reply = client.recv(500)) {
    if (reply->flags.tc) {
      ++slipped;
    } else {
      ++answered;
    }
  }
  loop.stop();
  const UdpServeStats& stats = loop.stats();
  EXPECT_EQ(stats.datagrams_received, static_cast<std::uint64_t>(kQueries));
  // Two tokens of burst, then alternating drop/slip. A wall-clock second
  // boundary crossing mid-test can refill a couple of tokens, so bound
  // rather than pin the answer count; the slip cadence stays exact.
  EXPECT_GE(answered, 2);
  EXPECT_LE(answered, 5);
  const int over_limit = kQueries - answered;
  EXPECT_EQ(slipped, over_limit / 2);
  EXPECT_EQ(stats.rrl_slipped, static_cast<std::uint64_t>(slipped));
  EXPECT_EQ(stats.rrl_dropped, static_cast<std::uint64_t>(over_limit - slipped));
  EXPECT_EQ(stats.dropped_policy, stats.rrl_dropped);
  EXPECT_EQ(stats.datagrams_received,
            stats.responses_sent + stats.send_failures + stats.truncated_queries +
                stats.dropped_total());
}

TEST(HardenedLoop, DrainConsumesBacklogThenStops) {
  UdpServeOptions options;
  options.threads = 1;
  options.hardening.guard = true;
  options.drain_deadline_ms = 5000;
  UdpServerLoop loop{options, [](unsigned) { return echo_handler(); }};
  ASSERT_TRUE(loop.start());
  LoopClient client{loop.endpoint()};

  constexpr int kQueries = 200;
  for (int i = 0; i < kQueries; ++i) {
    client.send(ptr_query_wire(static_cast<std::uint16_t>(i)));
  }
  // Drain immediately: everything loopback already queued must still be
  // answered — zero in-flight legitimate queries dropped.
  loop.request_drain();
  loop.stop();
  const UdpServeStats& stats = loop.stats();
  EXPECT_EQ(stats.datagrams_received, static_cast<std::uint64_t>(kQueries));
  EXPECT_EQ(stats.responses_sent + stats.send_failures,
            static_cast<std::uint64_t>(kQueries));

  int received = 0;
  while (client.recv(200).has_value()) ++received;
  EXPECT_EQ(received + static_cast<int>(stats.send_failures), kQueries);
}

TEST(HardenedLoop, GuardOffBehavesAsBefore) {
  UdpServeOptions options;
  options.threads = 1;  // hardening defaults: guard off
  UdpServerLoop loop{options, [](unsigned) { return echo_handler(); }};
  ASSERT_TRUE(loop.start());
  LoopClient client{loop.endpoint()};

  // Non-PTR reaches the handler (no policy), answered NOERROR.
  client.send(query_wire(RrType::A, RrClass::IN, 0x00AA));
  const auto reply = client.recv();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->flags.rcode, Rcode::NoError);
  loop.stop();
  EXPECT_EQ(loop.stats().responses_sent, 1u);
}

}  // namespace
}  // namespace rdns::dns
