/// Tests for the simulation primitives: event queue, name/device corpora,
/// schedules and the policy layers (holidays, COVID timeline).

#include <gtest/gtest.h>

#include "sim/event_queue.hpp"
#include "sim/namegen.hpp"
#include "sim/policy.hpp"
#include "sim/schedule.hpp"

namespace rdns::sim {
namespace {

using util::CivilDate;
using util::kHour;

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  q.run_until(25);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(q.now(), 25);
  q.run_until(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) q.schedule(10, [&order, i] { order.push_back(i); });
  q.run_until(10);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsMayScheduleEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule(10, [&] {
    ++fired;
    q.schedule(q.now() + 5, [&] { ++fired; });
  });
  q.run_until(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.executed(), 2u);
}

TEST(EventQueue, RejectsPastScheduling) {
  EventQueue q;
  q.run_until(100);
  EXPECT_THROW(q.schedule(50, [] {}), std::logic_error);
}

TEST(EventQueue, RepeatingUntilFalse) {
  EventQueue q;
  int ticks = 0;
  q.schedule_repeating(10, 10, [&] { return ++ticks < 3; });
  q.run_until(1000);
  EXPECT_EQ(ticks, 3);
}

TEST(EventQueue, WarpRequiresNoPendingEvents) {
  EventQueue q;
  q.schedule(10, [] {});
  EXPECT_THROW(q.warp_to(50), std::logic_error);
  q.run_until(10);
  q.warp_to(50);
  EXPECT_EQ(q.now(), 50);
}

TEST(NameGen, TopNamesIncludePaperExamples) {
  const auto& names = given_names();
  EXPECT_EQ(names.size(), 50u);
  EXPECT_EQ(names[0], "jacob");  // most popular 2000-2020
  EXPECT_GE(given_name_rank("brian"), 0);
  EXPECT_GE(given_name_rank("jackson"), 0);  // the city-collision name
  EXPECT_EQ(given_name_rank("notaname"), -1);
}

TEST(NameGen, ZipfSamplingFavoursTopNames) {
  util::Rng rng{3};
  std::map<std::string, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[sample_given_name(rng)];
  EXPECT_GT(counts["jacob"], counts["ava"]);
}

TEST(NameGen, HostNamesEmbedOwnerAndDevice) {
  util::Rng rng{4};
  EXPECT_EQ(make_host_name(DeviceKind::Iphone, "brian", true, rng), "Brian's iPhone");
  const std::string galaxy = make_host_name(DeviceKind::GalaxyPhone, "brian", true, rng);
  EXPECT_EQ(galaxy.rfind("Brians-Galaxy-", 0), 0u);
  const std::string desktop = make_host_name(DeviceKind::WindowsDesktop, "brian", false, rng);
  EXPECT_EQ(desktop.rfind("DESKTOP-", 0), 0u);
  EXPECT_EQ(desktop.find("rian"), std::string::npos);  // ownerless form
  const std::string anon = make_host_name(DeviceKind::Iphone, "brian", false, rng);
  EXPECT_EQ(anon.find("rian"), std::string::npos);
}

TEST(NameGen, DeviceTermsMatchFig3Vocabulary) {
  EXPECT_STREQ(device_term(DeviceKind::MacbookPro), "mbp");
  EXPECT_STREQ(device_term(DeviceKind::MacbookAir), "air");
  EXPECT_STREQ(device_term(DeviceKind::GalaxyPhone), "galaxy");
  EXPECT_STREQ(device_term(DeviceKind::Chromebook), "chrome");
}

TEST(NameGen, RouterNamesUseCitiesAndRoles) {
  util::Rng rng{5};
  bool found_known_term = false;
  for (int i = 0; i < 20; ++i) {
    const std::string name = make_router_name(rng);
    for (const auto& city : city_names()) {
      if (name.find(city) != std::string::npos) found_known_term = true;
    }
  }
  EXPECT_TRUE(found_known_term);
}

TEST(NameGen, ProfilesCoverAllWeightedKinds) {
  util::Rng rng{6};
  std::set<DeviceKind> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(sample_device_kind(rng));
  EXPECT_GE(seen.size(), 10u);
}

TEST(Holidays, ThanksgivingBreakWindow) {
  EXPECT_TRUE(HolidayCalendar::is_thanksgiving_break(CivilDate{2021, 11, 25}));
  EXPECT_TRUE(HolidayCalendar::is_thanksgiving_break(CivilDate{2021, 11, 28}));
  EXPECT_FALSE(HolidayCalendar::is_thanksgiving_break(CivilDate{2021, 11, 29}));  // Cyber Monday
  EXPECT_FALSE(HolidayCalendar::is_thanksgiving_break(CivilDate{2021, 11, 22}));
}

TEST(Holidays, ResidentsLeaveOverBreaks) {
  const double normal = HolidayCalendar::presence_factor(
      ScheduleKind::ResidentStudent, PresenceVenue::Housing, CivilDate{2021, 11, 15});
  const double thanksgiving = HolidayCalendar::presence_factor(
      ScheduleKind::ResidentStudent, PresenceVenue::Housing, CivilDate{2021, 11, 26});
  EXPECT_EQ(normal, 1.0);
  EXPECT_LT(thanksgiving, 0.3);
}

TEST(Holidays, ChristmasAndCarnaval) {
  EXPECT_TRUE(HolidayCalendar::is_christmas_break(CivilDate{2020, 12, 25}));
  EXPECT_TRUE(HolidayCalendar::is_christmas_break(CivilDate{2021, 1, 2}));
  EXPECT_FALSE(HolidayCalendar::is_christmas_break(CivilDate{2021, 1, 10}));
  EXPECT_TRUE(HolidayCalendar::is_carnaval(CivilDate{2020, 2, 24}));
  EXPECT_FALSE(HolidayCalendar::is_carnaval(CivilDate{2021, 2, 24}));  // 2020 only
}

TEST(Covid, StandardTimelineShapesCampusPresence) {
  const CovidTimeline timeline = CovidTimeline::standard();
  const double before = timeline.factor(PresenceVenue::Campus, CivilDate{2020, 2, 1});
  const double lockdown = timeline.factor(PresenceVenue::Campus, CivilDate{2020, 4, 1});
  const double autumn21 = timeline.factor(PresenceVenue::Campus, CivilDate{2021, 10, 1});
  EXPECT_EQ(before, 1.0);
  EXPECT_LT(lockdown, 0.25);
  EXPECT_GT(autumn21, 0.85);
}

TEST(Covid, HousingAndHomeBoostDuringLockdown) {
  const CovidTimeline timeline = CovidTimeline::standard();
  EXPECT_GT(timeline.factor(PresenceVenue::Housing, CivilDate{2020, 4, 1}), 1.0);
  EXPECT_GT(timeline.factor(PresenceVenue::Home, CivilDate{2020, 4, 1}), 1.0);
}

TEST(Covid, LaterPhaseOverridesEarlier) {
  CovidTimeline timeline = CovidTimeline::standard();
  timeline.add_phase({CivilDate{2020, 4, 1}, CivilDate{2020, 4, 10}, 0.9, 1.0, 1.0,
                      "campus-specific reopening overlay"});
  EXPECT_DOUBLE_EQ(timeline.factor(PresenceVenue::Campus, CivilDate{2020, 4, 5}), 0.9);
  EXPECT_LT(timeline.factor(PresenceVenue::Campus, CivilDate{2020, 4, 15}), 0.25);
}

TEST(Schedule, NormalizeMergesAndSorts) {
  const auto merged = normalize_intervals({{100, 200}, {150, 300}, {400, 350}, {500, 600}});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].start, 100);
  EXPECT_EQ(merged[0].end, 300);
  EXPECT_EQ(merged[1].start, 500);
}

/// Weekday office presence must dwarf weekend presence.
TEST(Schedule, OfficeWorkerWeekdayVsWeekend) {
  util::Rng rng{7};
  int weekday_present = 0, weekend_present = 0;
  const PlanContext ctx;
  for (int i = 0; i < 500; ++i) {
    // 2021-11-01 is a Monday, 2021-11-06 a Saturday.
    weekday_present += plan_day(ScheduleKind::OfficeWorker, CivilDate{2021, 11, 1}, ctx, rng)
                           .present();
    weekend_present += plan_day(ScheduleKind::OfficeWorker, CivilDate{2021, 11, 6}, ctx, rng)
                           .present();
  }
  EXPECT_GT(weekday_present, 400);
  EXPECT_LT(weekend_present, 50);
}

TEST(Schedule, OfficeHoursAreDaytime) {
  util::Rng rng{8};
  const PlanContext ctx;
  for (int i = 0; i < 200; ++i) {
    const auto plan = plan_day(ScheduleKind::OfficeWorker, CivilDate{2021, 11, 2}, ctx, rng);
    for (const auto& iv : plan.intervals) {
      EXPECT_GT(iv.start, 5 * kHour);
      EXPECT_LT(iv.end, 22 * kHour);
      EXPECT_GT(iv.duration(), 30 * util::kMinute);
    }
  }
}

TEST(Schedule, ResidentStudentStaysOvernight) {
  util::Rng rng{9};
  const PlanContext ctx;
  int overnight = 0;
  for (int i = 0; i < 300; ++i) {
    const auto plan =
        plan_day(ScheduleKind::ResidentStudent, CivilDate{2021, 11, 2}, ctx, rng);
    for (const auto& iv : plan.intervals) {
      if (iv.end > 24 * kHour) ++overnight;
    }
  }
  EXPECT_GT(overnight, 200);  // most nights are slept in the dorm
}

TEST(Schedule, CovidFactorSuppressesStudents) {
  util::Rng rng{10};
  PlanContext open, closed;
  closed.covid_factor = 0.1;
  int open_days = 0, closed_days = 0;
  for (int i = 0; i < 400; ++i) {
    open_days += plan_day(ScheduleKind::Student, CivilDate{2021, 11, 3}, open, rng).present();
    closed_days +=
        plan_day(ScheduleKind::Student, CivilDate{2021, 11, 3}, closed, rng).present();
  }
  EXPECT_GT(open_days, 4 * closed_days);
}

TEST(Schedule, HomeResidentWfhBlockUnderHighHomeFactor) {
  util::Rng rng{11};
  PlanContext wfh;
  wfh.covid_factor = 1.5;  // lockdown home boost
  int daytime_present = 0;
  for (int i = 0; i < 300; ++i) {
    const auto plan =
        plan_day(ScheduleKind::HomeResident, CivilDate{2021, 11, 3}, wfh, rng);
    for (const auto& iv : plan.intervals) {
      if (iv.start < 12 * kHour && iv.end > 12 * kHour) ++daytime_present;
    }
  }
  EXPECT_GT(daytime_present, 100);
}

TEST(Schedule, AlwaysOnCoversFullDay) {
  util::Rng rng{12};
  const auto plan = plan_day(ScheduleKind::AlwaysOn, CivilDate{2021, 11, 3}, PlanContext{}, rng);
  ASSERT_EQ(plan.intervals.size(), 1u);
  EXPECT_EQ(plan.intervals[0].start, 0);
  EXPECT_EQ(plan.intervals[0].end, 24 * kHour);
}

}  // namespace
}  // namespace rdns::sim
