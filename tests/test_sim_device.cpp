/// Tests for the device model: identity construction, activation dates,
/// participation/release decisions, and — at the world level — that a
/// device's PTR stays stable across DHCP renewals during one presence
/// interval (no mid-session flicker, which would corrupt Fig. 8).

#include <gtest/gtest.h>

#include "dns/resolver.hpp"
#include "sim/device.hpp"
#include "sim/world.hpp"

namespace rdns::sim {
namespace {

using util::CivilDate;
using util::kHour;

TEST(Device, InitCarriesIdentity) {
  util::Rng rng{1};
  Device::Init init = make_device_init(7, DeviceKind::Iphone, "brian", true, rng);
  EXPECT_EQ(init.id, 7u);
  EXPECT_EQ(init.owner_given_name, "brian");
  EXPECT_EQ(init.host_name, "Brian's iPhone");
  EXPECT_EQ(init.mac.vendor(), net::MacVendor::Apple);
  Device device{init};
  EXPECT_EQ(device.id(), 7u);
  EXPECT_EQ(device.owner(), "brian");
  EXPECT_EQ(device.host_name(), "Brian's iPhone");
}

TEST(Device, OwnerlessWhenNameUnused) {
  util::Rng rng{2};
  const Device::Init init = make_device_init(8, DeviceKind::Iphone, "brian", false, rng);
  EXPECT_TRUE(init.owner_given_name.empty());
  EXPECT_EQ(init.host_name.find("rian"), std::string::npos);
}

TEST(Device, PhonesParticipateMoreThanLaptops) {
  util::Rng rng{3};
  const auto phone = make_device_init(1, DeviceKind::Iphone, "a", true, rng);
  const auto laptop = make_device_init(2, DeviceKind::MacbookPro, "a", true, rng);
  EXPECT_GT(phone.participation, laptop.participation);
}

TEST(Device, ExistsOnRespectsFirstActive) {
  util::Rng rng{4};
  Device::Init init = make_device_init(9, DeviceKind::GalaxyPhone, "brian", true, rng);
  init.first_active = CivilDate{2021, 11, 29};
  const Device device{init};
  EXPECT_FALSE(device.exists_on(CivilDate{2021, 11, 28}));
  EXPECT_TRUE(device.exists_on(CivilDate{2021, 11, 29}));
  EXPECT_TRUE(device.exists_on(CivilDate{2021, 12, 1}));
}

TEST(Device, DecisionProbabilitiesAreRespected) {
  util::Rng rng{5};
  Device::Init init = make_device_init(10, DeviceKind::Iphone, "a", true, rng);
  init.clean_release = 1.0;
  init.participation = 0.0;
  const Device device{init};
  util::Rng decide{6};
  EXPECT_TRUE(device.decide_clean_release(decide));
  EXPECT_FALSE(device.decide_participation(decide));
}

TEST(Device, PingResponseDecidedOncePerDevice) {
  // With responds_to_ping = 1 every instance answers; with 0 none does.
  util::Rng rng{7};
  Device::Init yes = make_device_init(11, DeviceKind::WindowsDesktop, "a", false, rng);
  yes.probe_reliability = 1.0;
  yes.responds_to_ping = 1.0;
  EXPECT_TRUE(Device{yes}.responds_to_ping());
  Device::Init no = yes;
  no.responds_to_ping = 0.0;
  no.seed = rng.next();
  EXPECT_FALSE(Device{no}.responds_to_ping());
}

TEST(WorldRenewals, PtrStableAcrossOnePresenceInterval) {
  // A device present for many hours renews its lease repeatedly; its PTR
  // must stay identical throughout (the bridge only acts on bind/end).
  OrgSpec spec;
  spec.name = "renew-test";
  spec.type = OrgType::Academic;
  spec.suffix = dns::DnsName::must_parse("renew.edu");
  spec.announced = {net::Prefix::must_parse("10.83.0.0/16")};
  SegmentSpec seg;
  seg.label = "wifi";
  seg.prefix = net::Prefix::must_parse("10.83.64.0/24");
  seg.schedule = ScheduleKind::AlwaysOn;  // online all day => many renewals
  seg.user_count = 0;
  seg.always_on_count = 8;
  seg.lease_seconds = 3600;
  spec.segments = {seg};
  spec.seed = 3131;

  World world;
  world.add_org(std::move(spec));
  world.start(CivilDate{2021, 11, 1}, CivilDate{2021, 11, 3});
  world.run_until(util::to_sim_time(CivilDate{2021, 11, 1}) + 2 * kHour);

  // Capture each online device's PTR...
  dns::StubResolver resolver{world};
  std::map<std::string, std::string> before;
  world.snapshot_ptrs([&](net::Ipv4Addr a, const dns::DnsName& ptr) {
    before[a.to_string()] = ptr.to_canonical_string();
  });
  ASSERT_FALSE(before.empty());
  const auto renewals_before = world.stats().renewals;

  // ...ten hours (and many renewals) later, they are unchanged.
  world.run_until(util::to_sim_time(CivilDate{2021, 11, 1}) + 12 * kHour);
  EXPECT_GT(world.stats().renewals, renewals_before + 8);
  std::map<std::string, std::string> after;
  world.snapshot_ptrs([&](net::Ipv4Addr a, const dns::DnsName& ptr) {
    after[a.to_string()] = ptr.to_canonical_string();
  });
  EXPECT_EQ(before, after);
}

TEST(WorldStats, JoinsBalanceLeavesOverClosedInterval) {
  OrgSpec spec;
  spec.name = "balance-test";
  spec.type = OrgType::Enterprise;
  spec.suffix = dns::DnsName::must_parse("balance-corp.com");
  spec.announced = {net::Prefix::must_parse("10.84.0.0/16")};
  SegmentSpec seg;
  seg.label = "corp";
  seg.prefix = net::Prefix::must_parse("10.84.64.0/24");
  seg.schedule = ScheduleKind::OfficeWorker;
  seg.user_count = 25;
  spec.segments = {seg};
  spec.seed = 777;

  World world;
  world.add_org(std::move(spec));
  world.start(CivilDate{2021, 11, 1}, CivilDate{2021, 11, 5});
  // Run well past the last planned day: everything joined must have left.
  world.run_until(util::to_sim_time(CivilDate{2021, 11, 7}));
  EXPECT_GT(world.stats().joins, 0u);
  EXPECT_EQ(world.stats().joins, world.stats().leaves);
  // And no PTRs remain in the dynamic range.
  std::size_t dynamic_ptrs = 0;
  world.snapshot_ptrs([&](net::Ipv4Addr a, const dns::DnsName&) {
    dynamic_ptrs += net::Prefix::must_parse("10.84.64.0/24").contains(a);
  });
  EXPECT_EQ(dynamic_ptrs, 0u);
}

}  // namespace
}  // namespace rdns::sim
