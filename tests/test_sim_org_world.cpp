/// Integration tests for Organization and World: numbering plans, DNS/DHCP
/// wiring, the measurement surface (ping + PTR queries), and — crucially —
/// that a client joining a network makes its hostname appear in the global
/// reverse DNS and leaving makes it disappear (the paper's core mechanism).

#include <gtest/gtest.h>

#include "dns/resolver.hpp"
#include "net/arpa.hpp"
#include "sim/world.hpp"

namespace rdns::sim {
namespace {

using util::CivilDate;
using util::kDay;
using util::kHour;

OrgSpec small_academic(const char* slash16, dhcp::DdnsPolicy policy) {
  OrgSpec o;
  o.name = "test-academic";
  o.type = OrgType::Academic;
  o.suffix = dns::DnsName::must_parse("testu.edu");
  o.announced = {net::Prefix::must_parse(std::string{slash16} + ".0.0/16")};
  SegmentSpec seg;
  seg.label = "wifi";
  seg.venue = PresenceVenue::Campus;
  seg.prefix = net::Prefix::must_parse(std::string{slash16} + ".64.0/24");
  seg.schedule = ScheduleKind::OfficeWorker;
  seg.user_count = 20;
  seg.ddns_policy = policy;
  o.segments = {seg};
  o.static_ranges = {{net::Prefix::must_parse(std::string{slash16} + ".0.0/26"),
                      StaticRangeSpec::Style::GenericNames, 1.0, 1.0}};
  o.seed = 1234;
  return o;
}

TEST(Organization, BuildsZonesAndPopulation) {
  Organization org{small_academic("10.80", dhcp::DdnsPolicy::CarryOverClientId)};
  EXPECT_EQ(org.dns().zone_count(), 1u);
  EXPECT_EQ(org.users().size(), 20u);
  EXPECT_GE(org.device_count(), 20u);   // at least one device each
  EXPECT_GT(org.ptr_count(), 50u);      // static range pre-populated
}

TEST(Organization, StaticRangePingable) {
  Organization org{small_academic("10.80", dhcp::DdnsPolicy::CarryOverClientId)};
  EXPECT_TRUE(org.static_host_pingable(net::Ipv4Addr::must_parse("10.80.0.1")));
  EXPECT_FALSE(org.static_host_pingable(net::Ipv4Addr::must_parse("10.80.64.1")));
}

TEST(Organization, IcmpPolicy) {
  OrgSpec spec = small_academic("10.80", dhcp::DdnsPolicy::CarryOverClientId);
  spec.blocks_icmp = true;
  spec.icmp_allowlist = {net::Ipv4Addr::must_parse("10.80.0.1")};
  Organization org{std::move(spec)};
  EXPECT_TRUE(org.icmp_reaches(net::Ipv4Addr::must_parse("10.80.0.1")));
  EXPECT_FALSE(org.icmp_reaches(net::Ipv4Addr::must_parse("10.80.0.2")));
}

TEST(Organization, ScriptedUsersGetExactHostNames) {
  OrgSpec spec = small_academic("10.80", dhcp::DdnsPolicy::CarryOverClientId);
  ScriptedUser brian;
  brian.given_name = "brian";
  brian.segment = 0;
  brian.devices = {{DeviceKind::MacbookPro, "Brians-MBP", std::nullopt, 1.0}};
  spec.scripted_users = {brian};
  Organization org{std::move(spec)};
  // Scripted users come first.
  ASSERT_FALSE(org.users().empty());
  ASSERT_EQ(org.users()[0].devices.size(), 1u);
  EXPECT_EQ(org.users()[0].devices[0]->host_name(), "Brians-MBP");
}

TEST(Organization, RejectsBadSpecs) {
  OrgSpec spec = small_academic("10.80", dhcp::DdnsPolicy::CarryOverClientId);
  spec.segments[0].prefix = net::Prefix::must_parse("10.80.0.0/8");
  EXPECT_THROW(Organization{std::move(spec)}, std::invalid_argument);

  OrgSpec spec2 = small_academic("10.80", dhcp::DdnsPolicy::CarryOverClientId);
  ScriptedUser bad;
  bad.segment = 9;
  spec2.scripted_users = {bad};
  EXPECT_THROW(Organization{std::move(spec2)}, std::invalid_argument);
}

class WorldFixture : public ::testing::Test {
 protected:
  WorldFixture() {
    world_.add_org(small_academic("10.80", dhcp::DdnsPolicy::CarryOverClientId));
    world_.start(CivilDate{2021, 11, 1}, CivilDate{2021, 11, 14});
  }

  World world_;
};

TEST_F(WorldFixture, RoutesDnsByArpaName) {
  dns::StubResolver resolver{world_};
  // Static range address resolves.
  const auto result =
      resolver.lookup_ptr(net::Ipv4Addr::must_parse("10.80.0.5"), world_.now());
  EXPECT_EQ(result.status, dns::LookupStatus::Ok);
  // Unannounced space times out (no delegation).
  const auto nowhere =
      resolver.lookup_ptr(net::Ipv4Addr::must_parse("172.16.0.1"), world_.now());
  EXPECT_EQ(nowhere.status, dns::LookupStatus::Timeout);
}

TEST_F(WorldFixture, JoinPublishesPtrLeaveRemovesIt) {
  // Drive to midweek noon: office workers are in.
  const util::SimTime noon = util::to_sim_time(CivilDate{2021, 11, 3}) + 12 * kHour;
  world_.run_until(noon);
  ASSERT_GT(world_.stats().joins, 0u);

  // Find an online device via ground truth and check its PTR.
  dns::StubResolver resolver{world_};
  std::size_t online_with_ptr = 0;
  for (std::uint32_t low = 1; low < 255; ++low) {
    const net::Ipv4Addr a = net::Ipv4Addr::must_parse("10.80.64.0") + low;
    const Device* device = world_.device_at(a);
    if (device == nullptr) continue;
    const auto result = resolver.lookup_ptr(a, world_.now());
    ASSERT_EQ(result.status, dns::LookupStatus::Ok) << a.to_string();
    ++online_with_ptr;
  }
  EXPECT_GT(online_with_ptr, 0u);

  // Advance to 3am: everyone has left and leases expired; client PTRs gone.
  const util::SimTime night = util::to_sim_time(CivilDate{2021, 11, 4}) + 3 * kHour;
  world_.run_until(night);
  for (std::uint32_t low = 1; low < 255; ++low) {
    const net::Ipv4Addr a = net::Ipv4Addr::must_parse("10.80.64.0") + low;
    EXPECT_EQ(world_.device_at(a), nullptr);
    const auto result = resolver.lookup_ptr(a, world_.now());
    EXPECT_EQ(result.status, dns::LookupStatus::NxDomain) << a.to_string();
  }
}

TEST_F(WorldFixture, PingReflectsPresenceAndPolicy) {
  const util::SimTime noon = util::to_sim_time(CivilDate{2021, 11, 3}) + 12 * kHour;
  world_.run_until(noon);
  // Static hosts answer (highly reliably).
  int static_hits = 0;
  for (int i = 0; i < 20; ++i) {
    static_hits += world_.ping(net::Ipv4Addr::must_parse("10.80.0.5"), noon + i);
  }
  EXPECT_GT(static_hits, 15);
  // Unoccupied pool addresses never answer.
  EXPECT_FALSE(world_.ping(net::Ipv4Addr::must_parse("10.80.64.250"), noon));
  // Unannounced space never answers.
  EXPECT_FALSE(world_.ping(net::Ipv4Addr::must_parse("192.0.2.1"), noon));
}

TEST_F(WorldFixture, PingIsDeterministicInAddressAndTime) {
  const util::SimTime t = util::to_sim_time(CivilDate{2021, 11, 3}) + 12 * kHour;
  world_.run_until(t);
  const auto a = net::Ipv4Addr::must_parse("10.80.0.5");
  EXPECT_EQ(world_.ping(a, t), world_.ping(a, t));
}

TEST_F(WorldFixture, SnapshotMatchesWireSweep) {
  // The bulk snapshot fast path must agree with issuing one PTR query per
  // address through the full wire stack.
  const util::SimTime noon = util::to_sim_time(CivilDate{2021, 11, 3}) + 12 * kHour;
  world_.run_until(noon);

  std::map<std::string, std::string> bulk;
  world_.snapshot_ptrs([&](net::Ipv4Addr a, const dns::DnsName& ptr) {
    bulk[a.to_string()] = ptr.to_canonical_string();
  });

  dns::StubResolver resolver{world_};
  std::map<std::string, std::string> wire;
  for (const auto& prefix : world_.announced_prefixes()) {
    // Only the /24s that can have data (static /26 + the pool /24).
    for (const auto block :
         {net::Prefix::must_parse("10.80.0.0/24"), net::Prefix::must_parse("10.80.64.0/24")}) {
      (void)prefix;
      for (std::uint64_t v = block.first().value(); v <= block.last().value(); ++v) {
        const net::Ipv4Addr a{static_cast<std::uint32_t>(v)};
        const auto result = resolver.lookup_ptr(a, world_.now());
        if (result.status == dns::LookupStatus::Ok && result.ptr) {
          wire[a.to_string()] = result.ptr->to_canonical_string();
        }
      }
    }
    break;
  }
  EXPECT_EQ(bulk, wire);
}

TEST_F(WorldFixture, StickyAddressesAcrossDays) {
  // The same device should keep getting the same IP (pool affinity), which
  // is what makes Fig. 8's colour-coding per device meaningful.
  const CivilDate day1{2021, 11, 3};
  world_.run_until(util::to_sim_time(day1) + 12 * kHour);
  std::map<std::uint64_t, net::Ipv4Addr> day1_addresses;
  for (std::uint32_t low = 1; low < 255; ++low) {
    const net::Ipv4Addr a = net::Ipv4Addr::must_parse("10.80.64.0") + low;
    if (const Device* d = world_.device_at(a)) day1_addresses.emplace(d->id(), a);
  }
  ASSERT_FALSE(day1_addresses.empty());

  const CivilDate day2{2021, 11, 4};
  world_.run_until(util::to_sim_time(day2) + 12 * kHour);
  std::size_t matched = 0, total = 0;
  for (std::uint32_t low = 1; low < 255; ++low) {
    const net::Ipv4Addr a = net::Ipv4Addr::must_parse("10.80.64.0") + low;
    if (const Device* d = world_.device_at(a)) {
      const auto it = day1_addresses.find(d->id());
      if (it != day1_addresses.end()) {
        ++total;
        matched += (it->second == a);
      }
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_EQ(matched, total);  // all returning devices re-bound to their address
}

TEST(World, RejectsOverlappingOrgs) {
  World world;
  world.add_org(small_academic("10.80", dhcp::DdnsPolicy::CarryOverClientId));
  OrgSpec overlap = small_academic("10.80", dhcp::DdnsPolicy::StaticGeneric);
  overlap.name = "other";
  EXPECT_THROW(world.add_org(std::move(overlap)), std::invalid_argument);
}

TEST(World, OrgLookupHelpers) {
  World world;
  world.add_org(small_academic("10.80", dhcp::DdnsPolicy::CarryOverClientId));
  EXPECT_NE(world.org_of(net::Ipv4Addr::must_parse("10.80.1.1")), nullptr);
  EXPECT_EQ(world.org_of(net::Ipv4Addr::must_parse("10.81.1.1")), nullptr);
  EXPECT_NE(world.org_by_name("test-academic"), nullptr);
  EXPECT_EQ(world.org_by_name("nope"), nullptr);
}

TEST(World, StartTwiceThrows) {
  World world;
  world.add_org(small_academic("10.80", dhcp::DdnsPolicy::CarryOverClientId));
  world.start(CivilDate{2021, 1, 1}, CivilDate{2021, 1, 2});
  EXPECT_THROW(world.start(CivilDate{2021, 1, 1}, CivilDate{2021, 1, 2}), std::logic_error);
  EXPECT_THROW(world.add_org(small_academic("10.81", dhcp::DdnsPolicy::None)),
               std::logic_error);
}

TEST(World, HashedPolicyWorldLeaksNoNames) {
  World world;
  world.add_org(small_academic("10.80", dhcp::DdnsPolicy::HashedClientId));
  world.start(CivilDate{2021, 11, 1}, CivilDate{2021, 11, 5});
  world.run_until(util::to_sim_time(CivilDate{2021, 11, 3}) + 12 * kHour);
  world.snapshot_ptrs([](net::Ipv4Addr, const dns::DnsName& ptr) {
    const std::string name = ptr.to_canonical_string();
    // Dynamic entries are hashed; static entries are host-... generic.
    EXPECT_TRUE(name.rfind("h-", 0) == 0 || name.rfind("host-", 0) == 0) << name;
  });
}

}  // namespace
}  // namespace rdns::sim

namespace rdns::sim {
namespace {

TEST(ForwardDns, WorldRoutesForwardQueriesToOrgZones) {
  using util::CivilDate;
  OrgSpec spec;
  spec.name = "fwd-test";
  spec.type = OrgType::Academic;
  spec.suffix = dns::DnsName::must_parse("fwd-test.edu");
  spec.announced = {net::Prefix::must_parse("10.82.0.0/16")};
  SegmentSpec seg;
  seg.label = "wifi";
  seg.prefix = net::Prefix::must_parse("10.82.64.0/24");
  seg.schedule = ScheduleKind::OfficeWorker;
  seg.user_count = 15;
  seg.named_device_frac = 1.0;
  spec.segments = {seg};
  spec.forward_updates = true;
  spec.seed = 808;

  World world;
  world.add_org(std::move(spec));
  world.start(CivilDate{2021, 11, 1}, CivilDate{2021, 11, 4});
  world.run_until(util::to_sim_time(CivilDate{2021, 11, 2}) + 12 * util::kHour);

  // Find an online device via ground truth, then resolve its published
  // forward name THROUGH the world, wire format and all.
  dns::StubResolver resolver{world};
  int forward_hits = 0;
  for (std::uint32_t low = 1; low < 255; ++low) {
    const net::Ipv4Addr a = net::Ipv4Addr::must_parse("10.82.64.0") + low;
    if (world.device_at(a) == nullptr) continue;
    const auto ptr = resolver.lookup_ptr(a, world.now());
    ASSERT_EQ(ptr.status, dns::LookupStatus::Ok);
    const auto forward = resolver.lookup(*ptr.ptr, dns::RrType::A, world.now());
    ASSERT_EQ(forward.status, dns::LookupStatus::Ok) << ptr.ptr->to_string();
    ASSERT_FALSE(forward.answers.empty());
    EXPECT_EQ(std::get<dns::ARdata>(forward.answers[0].rdata).address, a);
    ++forward_hits;
  }
  EXPECT_GT(forward_hits, 0);

  // Queries for unknown suffixes are refused.
  EXPECT_EQ(resolver.lookup(dns::DnsName::must_parse("nope.example.org"), dns::RrType::A,
                            world.now())
                .status,
            dns::LookupStatus::Refused);
}

}  // namespace
}  // namespace rdns::sim
