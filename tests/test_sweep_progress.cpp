/// SweepProgressPlane: leased seqlock probes, aggregation, the
/// /progress.json + /metrics routes, and the determinism contract (a wire
/// sweep's CSV is byte-identical with the plane armed at any pool size).

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "net/admin_http.hpp"
#include "scan/progress.hpp"
#include "scan/rdns_snapshot.hpp"
#include "sim/world.hpp"
#include "util/thread_pool.hpp"
#include "util/time.hpp"

namespace rdns {
namespace {

using scan::SweepProgressPlane;
using util::CivilDate;

TEST(SweepProgressPlane, FoldsLeasedProbesIntoSnapshot) {
  SweepProgressPlane plane;
  plane.begin_pass(10, 0, "2021-11-01", 3600);

  auto* probe = plane.acquire_probe();
  ASSERT_NE(probe, nullptr);
  probe->on_shard_start();
  probe->on_shard_finish(/*rows=*/120, /*queries=*/256, /*retries=*/3, /*degraded=*/false,
                         /*reruns=*/0);
  probe->on_shard_finish(/*rows=*/80, /*queries=*/256, /*retries=*/0, /*degraded=*/true,
                         /*reruns=*/1);
  plane.release_probe(probe);

  plane.aggregate_now();
  const auto snap = plane.snapshot();
  EXPECT_EQ(snap.shards_done, 2u);
  EXPECT_EQ(snap.shards_total, 10u);
  EXPECT_EQ(snap.rows, 200u);
  EXPECT_EQ(snap.queries, 512u);
  EXPECT_EQ(snap.retries, 3u);
  EXPECT_EQ(snap.degraded, 1u);
  EXPECT_EQ(snap.reruns, 1u);
  EXPECT_DOUBLE_EQ(snap.percent, 20.0);
  EXPECT_EQ(snap.day, "2021-11-01");
  EXPECT_EQ(snap.probes, 1u);
}

TEST(SweepProgressPlane, SkippedShardsCountAsDoneImmediately) {
  SweepProgressPlane plane;
  plane.begin_pass(8, 3, "2021-11-02", 0);
  plane.aggregate_now();
  EXPECT_EQ(plane.snapshot().shards_done, 3u);

  auto* probe = plane.acquire_probe();
  probe->on_shard_finish(10, 10, 0, false, 0);
  plane.release_probe(probe);
  plane.aggregate_now();
  const auto snap = plane.snapshot();
  EXPECT_EQ(snap.shards_done, 4u);
  EXPECT_DOUBLE_EQ(snap.percent, 50.0);
}

TEST(SweepProgressPlane, SecondPassRebasesShardCountButKeepsRows) {
  SweepProgressPlane plane;
  plane.begin_pass(4, 0, "2021-11-01", 0);
  auto* probe = plane.acquire_probe();
  for (int i = 0; i < 4; ++i) probe->on_shard_finish(25, 25, 0, false, 0);
  plane.release_probe(probe);
  plane.aggregate_now();
  EXPECT_EQ(plane.snapshot().shards_done, 4u);
  EXPECT_EQ(plane.snapshot().rows, 100u);

  // A new pass (next sweep day) restarts the shard counter; rows stay
  // run-cumulative.
  plane.begin_pass(4, 0, "2021-11-02", 86400);
  plane.aggregate_now();
  const auto snap = plane.snapshot();
  EXPECT_EQ(snap.shards_done, 0u);
  EXPECT_EQ(snap.rows, 100u);
  EXPECT_EQ(snap.day, "2021-11-02");
}

TEST(SweepProgressPlane, ReleasedProbeCarriesTotalsToNextLease) {
  SweepProgressPlane plane;
  plane.begin_pass(4, 0, "2021-11-01", 0);
  auto* first = plane.acquire_probe();
  first->on_shard_finish(10, 10, 1, false, 0);
  plane.release_probe(first);

  // Single free probe: the next lease must reuse it and keep its totals.
  auto* second = plane.acquire_probe();
  EXPECT_EQ(second, first);
  second->on_shard_finish(5, 5, 0, false, 0);
  plane.release_probe(second);

  plane.aggregate_now();
  const auto snap = plane.snapshot();
  EXPECT_EQ(snap.shards_done, 2u);
  EXPECT_EQ(snap.rows, 15u);
  EXPECT_EQ(snap.retries, 1u);
  EXPECT_EQ(snap.probes, 1u);
}

TEST(SweepProgressPlane, ProgressJsonCarriesSchemaAndCounters) {
  SweepProgressPlane plane;
  plane.begin_pass(2, 0, "2021-11-03", 0);
  auto* probe = plane.acquire_probe();
  probe->on_shard_finish(42, 64, 2, false, 0);
  plane.release_probe(probe);
  plane.aggregate_now();

  const std::string json = plane.render_progress_json();
  EXPECT_NE(json.find("\"schema\":\"rdns.sweep-progress.v1\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"rows\":42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"slash24_done\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"day\":\"2021-11-03\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"rows_per_s\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"eta_s\""), std::string::npos) << json;
}

TEST(SweepProgressPlane, StatusLineMentionsProgress) {
  SweepProgressPlane plane;
  plane.begin_pass(2, 1, "2021-11-04", 0);
  plane.aggregate_now();
  const std::string line = plane.render_status_line();
  EXPECT_NE(line.find("sweep"), std::string::npos) << line;
  EXPECT_NE(line.find("50.0%"), std::string::npos) << line;
  EXPECT_NE(line.find("2021-11-04"), std::string::npos) << line;
}

TEST(SweepProgressPlane, HttpRoutesServeProgressAndMetrics) {
  SweepProgressPlane plane;
  plane.begin_pass(5, 0, "2021-11-05", 0);
  auto* probe = plane.acquire_probe();
  probe->on_shard_finish(7, 7, 0, false, 0);
  plane.release_probe(probe);
  plane.aggregate_now();

  net::AdminHttpServer http;
  plane.install_http_routes(http);
  std::string error;
  ASSERT_TRUE(http.start(net::UdpEndpoint{0x7f000001u, 0}, &error)) << error;

  const auto progress = net::http_get(http.endpoint(), "/progress.json", &error);
  ASSERT_TRUE(progress.has_value()) << error;
  EXPECT_NE(progress->find("rdns.sweep-progress.v1"), std::string::npos);

  const auto metrics_page = net::http_get(http.endpoint(), "/metrics", &error);
  ASSERT_TRUE(metrics_page.has_value()) << error;
  EXPECT_NE(metrics_page->find("rdns_build_info"), std::string::npos);
  EXPECT_NE(metrics_page->find("rdns_sweep_percent"), std::string::npos);

  const auto index = net::http_get(http.endpoint(), "/", &error);
  ASSERT_TRUE(index.has_value()) << error;
  EXPECT_NE(index->find("/progress.json"), std::string::npos);
  http.stop();
}

/// TSan target: leased publishers hammer the seqlock while the aggregation
/// thread folds at an aggressive interval; the final fold is exact.
TEST(SweepProgressPlane, ConcurrentLeasesAggregateExactly) {
  SweepProgressPlane::Options options;
  options.aggregate_interval_ms = 1;
  options.journal_every = 0;
  SweepProgressPlane plane{options};
  plane.start();
  constexpr int kThreads = 4;
  constexpr int kShardsPerThread = 200;
  plane.begin_pass(kThreads * kShardsPerThread, 0, "2021-11-06", 0);

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&plane] {
      for (int i = 0; i < kShardsPerThread; ++i) {
        const scan::ProgressProbeLease lease{&plane};
        ASSERT_NE(lease.probe(), nullptr);
        lease.probe()->on_shard_start();
        lease.probe()->on_shard_finish(3, 4, 1, false, 0);
      }
    });
  }
  for (auto& w : workers) w.join();
  plane.stop();  // final aggregation pass

  const auto snap = plane.snapshot();
  const auto total = static_cast<std::uint64_t>(kThreads) * kShardsPerThread;
  EXPECT_EQ(snap.shards_done, total);
  EXPECT_EQ(snap.rows, 3 * total);
  EXPECT_EQ(snap.queries, 4 * total);
  EXPECT_EQ(snap.retries, total);
  EXPECT_DOUBLE_EQ(snap.percent, 100.0);
  EXPECT_LE(snap.probes, static_cast<std::size_t>(kThreads));
}

TEST(SweepProgressPlane, NullPlaneLeaseIsInert) {
  const scan::ProgressProbeLease lease{nullptr};
  EXPECT_EQ(lease.probe(), nullptr);
}

/// Determinism contract: arming the plane must not change the sweep CSV.
TEST(SweepProgressPlane, WireSweepCsvUnchangedByArmedPlane) {
  sim::World world;
  sim::OrgSpec o;
  o.name = "progress-target";
  o.type = sim::OrgType::Academic;
  o.suffix = dns::DnsName::must_parse("progress.edu");
  o.announced = {net::Prefix::must_parse("10.91.0.0/22")};
  sim::SegmentSpec wifi;
  wifi.label = "wifi";
  wifi.prefix = net::Prefix::must_parse("10.91.1.0/24");
  wifi.schedule = sim::ScheduleKind::AlwaysOn;
  wifi.user_count = 0;
  wifi.always_on_count = 20;
  o.segments = {wifi};
  o.seed = 777;
  world.add_org(std::move(o));
  world.start(CivilDate{2021, 11, 1}, CivilDate{2021, 11, 2});
  world.run_until(util::to_sim_time(CivilDate{2021, 11, 1}) + 12 * util::kHour);

  std::string baseline;
  for (const unsigned threads : {1u, 4u}) {
    util::ThreadPool pool{threads};
    std::ostringstream out;
    scan::CsvSnapshotSink sink{out};

    SweepProgressPlane::Options options;
    options.aggregate_interval_ms = 1;
    options.journal_every = 0;
    SweepProgressPlane plane{options};
    plane.start();
    scan::WireSweepOptions sweep_options;
    sweep_options.progress = &plane;
    const auto rows =
        scan::sweep_wire(world, CivilDate{2021, 11, 1}, sink, nullptr, &pool, sweep_options);
    plane.stop();

    EXPECT_GT(rows, 0u);
    const auto snap = plane.snapshot();
    EXPECT_EQ(snap.rows, rows);
    EXPECT_EQ(snap.shards_done, snap.shards_total);
    if (baseline.empty()) {
      baseline = out.str();
      // Unarmed control: identical world and day, no plane at all.
      std::ostringstream control;
      scan::CsvSnapshotSink control_sink{control};
      scan::sweep_wire(world, CivilDate{2021, 11, 1}, control_sink, nullptr, &pool);
      EXPECT_EQ(control.str(), baseline);
    } else {
      EXPECT_EQ(out.str(), baseline) << threads << " threads";
    }
  }
}

}  // namespace
}  // namespace rdns
