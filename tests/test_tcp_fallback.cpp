/// DNS-over-TCP: the DnsTcpServer framed exchange (RFC 1035 §4.2.2),
/// pipelining, per-exchange deadlines (slowloris bound), hot handler swap,
/// and the full TC=1 fallback loop — a UDP answer too large for the
/// negotiated payload size arrives truncated, and the resolver retries it
/// over the stream transport to retrieve the complete record set.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dns/answer_cache.hpp"
#include "dns/message.hpp"
#include "dns/resolver.hpp"
#include "dns/server.hpp"
#include "dns/tcp_server.hpp"
#include "dns/udp_server.hpp"
#include "dns/udp_transport.hpp"
#include "dns/wire.hpp"
#include "net/ipv4.hpp"
#include "net/udp.hpp"

namespace rdns::dns {
namespace {

SoaRdata test_soa() {
  SoaRdata soa;
  soa.mname = DnsName::must_parse("ns1.x.edu");
  soa.rname = DnsName::must_parse("hostmaster.x.edu");
  soa.serial = 100;
  return soa;
}

/// A zone whose single owner holds enough PTRs that the reply exceeds the
/// 512-byte classic UDP limit.
std::unique_ptr<AuthoritativeServer> make_fat_server(int records = 24) {
  auto server = std::make_unique<AuthoritativeServer>();
  Zone& zone = server->add_zone(DnsName::must_parse("80.10.in-addr.arpa"), test_soa());
  const DnsName owner = DnsName::must_parse("1.1.80.10.in-addr.arpa");
  for (int i = 0; i < records; ++i) {
    zone.add(make_ptr(owner, DnsName::must_parse(
                                 "very-long-hostname-number-" + std::to_string(i) +
                                 ".some-deep.subdomain.example-university.edu")));
  }
  return server;
}

DnsTcpServer::WireHandler handler_for(const AuthoritativeServer& server) {
  return [&server](std::span<const std::uint8_t> query)
             -> std::optional<std::vector<std::uint8_t>> {
    ServerStats scratch;
    const auto response = server.handle_readonly(decode(query), scratch);
    if (!response) return std::nullopt;
    return encode(*response);
  };
}

/// Blocking TCP client with a receive timeout, for driving the server
/// below the framing layer (partial frames, pipelining).
struct RawTcpClient {
  int fd = -1;

  explicit RawTcpClient(const net::UdpEndpoint& server) {
    fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    timeval tv{2, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_addr.s_addr = htonl(server.address);
    sa.sin_port = htons(server.port);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0) {
      ::close(fd);
      fd = -1;
    }
  }
  ~RawTcpClient() {
    if (fd >= 0) ::close(fd);
  }

  bool send_raw(const std::vector<std::uint8_t>& bytes) const {
    return ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL) ==
           static_cast<ssize_t>(bytes.size());
  }

  bool send_framed(const std::vector<std::uint8_t>& wire) const {
    std::vector<std::uint8_t> framed(2 + wire.size());
    framed[0] = static_cast<std::uint8_t>(wire.size() >> 8);
    framed[1] = static_cast<std::uint8_t>(wire.size() & 0xFF);
    std::memcpy(framed.data() + 2, wire.data(), wire.size());
    return send_raw(framed);
  }

  /// Read one framed reply; nullopt on timeout or peer close.
  std::optional<std::vector<std::uint8_t>> recv_framed() const {
    std::vector<std::uint8_t> buf;
    std::size_t want = 2;
    bool have_len = false;
    while (buf.size() < want) {
      std::uint8_t chunk[4096];
      const ssize_t n = ::recv(fd, chunk, std::min(sizeof chunk, want - buf.size()), 0);
      if (n <= 0) return std::nullopt;
      buf.insert(buf.end(), chunk, chunk + n);
      if (!have_len && buf.size() >= 2) {
        want = 2 + ((static_cast<std::size_t>(buf[0]) << 8) | buf[1]);
        have_len = true;
      }
    }
    buf.erase(buf.begin(), buf.begin() + 2);
    return buf;
  }

  /// True once the server has closed the connection (recv returns 0).
  bool closed_by_peer() const {
    std::uint8_t b;
    return ::recv(fd, &b, 1, 0) == 0;
  }
};

// -- DnsTcpServer framing ------------------------------------------------

TEST(DnsTcpServer, AnswersFramedQueriesAndPipelines) {
  const auto server = make_fat_server(4);
  DnsTcpServer tcp{DnsTcpServer::Options{}, handler_for(*server)};
  ASSERT_TRUE(tcp.start());

  RawTcpClient client{tcp.endpoint()};
  ASSERT_GE(client.fd, 0);

  // Two queries written back to back in one stream segment: both must be
  // answered, in order (RFC 7766 pipelining).
  const auto q1 = encode(make_ptr_query(0x0101, net::Ipv4Addr::must_parse("10.80.1.1")));
  const auto q2 = encode(make_ptr_query(0x0202, net::Ipv4Addr::must_parse("10.80.9.9")));
  std::vector<std::uint8_t> both;
  for (const auto* q : {&q1, &q2}) {
    both.push_back(static_cast<std::uint8_t>(q->size() >> 8));
    both.push_back(static_cast<std::uint8_t>(q->size() & 0xFF));
    both.insert(both.end(), q->begin(), q->end());
  }
  ASSERT_TRUE(client.send_raw(both));

  const auto r1 = client.recv_framed();
  ASSERT_TRUE(r1.has_value());
  const Message m1 = decode(*r1);
  EXPECT_EQ(m1.id, 0x0101);
  EXPECT_EQ(m1.flags.rcode, Rcode::NoError);
  EXPECT_EQ(m1.answers.size(), 4u);
  EXPECT_FALSE(m1.flags.tc);  // no size limit on the stream

  const auto r2 = client.recv_framed();
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(decode(*r2).id, 0x0202);
  EXPECT_EQ(decode(*r2).flags.rcode, Rcode::NxDomain);

  tcp.stop();
}

TEST(DnsTcpServer, SlowClientIsClosedAtTheDeadline) {
  const auto server = make_fat_server(1);
  DnsTcpServer::Options options;
  options.io_timeout_ms = 200;
  DnsTcpServer tcp{options, handler_for(*server)};
  ASSERT_TRUE(tcp.start());

  RawTcpClient client{tcp.endpoint()};
  ASSERT_GE(client.fd, 0);
  // One byte of the length prefix, then silence: a slowloris drip. The
  // server must cut the connection at the deadline, not hold state forever.
  ASSERT_TRUE(client.send_raw({0x00}));
  EXPECT_TRUE(client.closed_by_peer());  // SO_RCVTIMEO bounds the wait at 2s
  tcp.stop();
}

TEST(DnsTcpServer, SetHandlerSwapsBetweenExchanges) {
  const auto server_a = make_fat_server(1);
  const auto server_b = make_fat_server(2);
  DnsTcpServer tcp{DnsTcpServer::Options{}, handler_for(*server_a)};
  ASSERT_TRUE(tcp.start());

  RawTcpClient client{tcp.endpoint()};
  const auto query = encode(make_ptr_query(1, net::Ipv4Addr::must_parse("10.80.1.1")));
  ASSERT_TRUE(client.send_framed(query));
  auto reply = client.recv_framed();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(decode(*reply).answers.size(), 1u);

  tcp.set_handler(handler_for(*server_b));
  ASSERT_TRUE(client.send_framed(query));
  reply = client.recv_framed();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(decode(*reply).answers.size(), 2u);
  tcp.stop();
}

// -- UdpTransport stream client ------------------------------------------

TEST(UdpTransportStream, ExchangeStreamRoundTripsAFrame) {
  const auto server = make_fat_server(24);
  DnsTcpServer tcp{DnsTcpServer::Options{}, handler_for(*server)};
  ASSERT_TRUE(tcp.start());

  UdpTransport::Options options;
  options.server = {0x7F000001u, 1};  // UDP side unused in this test
  options.tcp_port = tcp.endpoint().port;
  UdpTransport transport{options};
  const auto query = encode(make_ptr_query(7, net::Ipv4Addr::must_parse("10.80.1.1")));
  const auto reply = transport.exchange_stream(query, 0);
  ASSERT_TRUE(reply.has_value());
  const Message m = decode(*reply);
  EXPECT_EQ(m.id, 7);
  EXPECT_EQ(m.answers.size(), 24u);
  tcp.stop();
}

TEST(UdpTransportStream, DisabledWithoutTcpPort) {
  UdpTransport::Options options;
  options.server = {0x7F000001u, 1};
  UdpTransport transport{options};
  const auto query = encode(make_ptr_query(7, net::Ipv4Addr::must_parse("10.80.1.1")));
  EXPECT_FALSE(transport.exchange_stream(query, 0).has_value());
}

// -- end to end: TC over UDP, full answer over TCP -----------------------

TEST(TcpFallback, TruncatedUdpAnswerIsRetrievedInFullOverTcp) {
  const auto server = make_fat_server(24);
  const auto cache = AnswerCache::build({{server.get(),
                                          net::Ipv4Addr::must_parse("10.80.0.0"),
                                          net::Ipv4Addr::must_parse("10.80.255.255")}});

  // UDP side: cache armed, so oversize answers truncate to TC=1.
  UdpServeOptions udp_options;
  udp_options.threads = 1;
  udp_options.answer_cache = [cache]() { return cache; };
  UdpServerLoop loop{udp_options, [&](unsigned) -> UdpServerLoop::WireHandler {
    return [&](std::span<const std::uint8_t> query)
               -> std::optional<std::vector<std::uint8_t>> {
      ServerStats scratch;
      const auto response = server->handle_readonly(decode(query), scratch);
      if (!response) return std::nullopt;
      return encode(*response);
    };
  }};
  ASSERT_TRUE(loop.start());

  // TCP side on its own kernel-assigned port.
  DnsTcpServer tcp{DnsTcpServer::Options{}, handler_for(*server)};
  ASSERT_TRUE(tcp.start());

  UdpTransport::Options transport_options;
  transport_options.server = loop.endpoint();
  transport_options.tcp_port = tcp.endpoint().port;
  UdpTransport transport{transport_options};
  ASSERT_TRUE(transport.ok());

  StubResolver resolver{transport};
  const auto result =
      resolver.lookup_ptr(net::Ipv4Addr::must_parse("10.80.1.1"), 0);
  EXPECT_EQ(result.status, LookupStatus::Ok);
  EXPECT_EQ(result.answers.size(), 24u);
  EXPECT_EQ(resolver.stats().truncated, 1u);
  EXPECT_EQ(resolver.stats().tcp_fallbacks, 1u);
  EXPECT_EQ(resolver.stats().retries, 0u);  // the stream answered; no UDP re-ask

  tcp.stop();
  loop.stop();
  EXPECT_EQ(loop.stats().tc_responses, 1u);
}

TEST(TcpFallback, WithoutStreamTransportTcStaysOnTheUdpRetryLadder) {
  const auto server = make_fat_server(24);
  const auto cache = AnswerCache::build({{server.get(),
                                          net::Ipv4Addr::must_parse("10.80.0.0"),
                                          net::Ipv4Addr::must_parse("10.80.255.255")}});
  UdpServeOptions udp_options;
  udp_options.threads = 1;
  udp_options.answer_cache = [cache]() { return cache; };
  UdpServerLoop loop{udp_options, [&](unsigned) -> UdpServerLoop::WireHandler {
    return [&](std::span<const std::uint8_t> query)
               -> std::optional<std::vector<std::uint8_t>> {
      ServerStats scratch;
      const auto response = server->handle_readonly(decode(query), scratch);
      if (!response) return std::nullopt;
      return encode(*response);
    };
  }};
  ASSERT_TRUE(loop.start());

  UdpTransport::Options transport_options;
  transport_options.server = loop.endpoint();  // tcp_port stays 0
  UdpTransport transport{transport_options};
  StubResolver resolver{transport, /*retries=*/1};
  const auto result =
      resolver.lookup_ptr(net::Ipv4Addr::must_parse("10.80.1.1"), 0);
  // Every attempt comes back truncated and there is no stream to complete
  // it: the lookup exhausts its retries.
  EXPECT_EQ(result.status, LookupStatus::Timeout);
  EXPECT_EQ(resolver.stats().truncated, 2u);
  EXPECT_EQ(resolver.stats().tcp_fallbacks, 0u);
  loop.stop();
}

}  // namespace
}  // namespace rdns::dns
