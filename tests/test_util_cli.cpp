/// Tests for the CLI argument parser and the markdown report renderer.

#include <gtest/gtest.h>

#include "core/report.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

namespace rdns::util {
namespace {

CliParser make_parser() {
  CliParser cli{"tool", "a test tool"};
  cli.option("from", "start date", "2021-01-01")
      .option("count", "a number")
      .flag("verbose", "talk more")
      .positional("input", "input file")
      .positional("output", "output file", "out.csv");
  return cli;
}

TEST(Cli, DefaultsApply) {
  CliParser cli = make_parser();
  cli.parse({"in.csv"});
  EXPECT_EQ(cli.get("from"), "2021-01-01");
  EXPECT_EQ(cli.get("input"), "in.csv");
  EXPECT_EQ(cli.get("output"), "out.csv");
  EXPECT_FALSE(cli.get_flag("verbose"));
  EXPECT_FALSE(cli.get_optional("count").has_value());
}

TEST(Cli, OptionsFlagsPositionals) {
  CliParser cli = make_parser();
  cli.parse({"--from", "2021-06-01", "--verbose", "--count=42", "a.csv", "b.csv"});
  EXPECT_EQ(cli.get("from"), "2021-06-01");
  EXPECT_TRUE(cli.get_flag("verbose"));
  EXPECT_EQ(cli.get_int("count"), 42);
  EXPECT_EQ(cli.get("input"), "a.csv");
  EXPECT_EQ(cli.get("output"), "b.csv");
}

TEST(Cli, DoubleDashEndsOptions) {
  CliParser cli = make_parser();
  cli.parse({"--", "--from"});  // "--from" becomes a positional
  EXPECT_EQ(cli.get("input"), "--from");
}

TEST(Cli, Errors) {
  EXPECT_THROW(make_parser().parse({"--bogus", "x", "in"}), CliError);
  EXPECT_THROW(make_parser().parse({"--from"}), CliError);            // missing value
  EXPECT_THROW(make_parser().parse({}), CliError);                    // missing positional
  EXPECT_THROW(make_parser().parse({"a", "b", "c"}), CliError);       // too many
  EXPECT_THROW(make_parser().parse({"--verbose=yes", "in"}), CliError);

  CliParser cli = make_parser();
  cli.parse({"--count", "nope", "in"});
  EXPECT_THROW((void)cli.get_int("count"), CliError);
  EXPECT_THROW((void)cli.get_double("count"), CliError);
}

TEST(Cli, NumericAccessors) {
  CliParser cli = make_parser();
  cli.parse({"--count", "7", "--from", "0.25", "in"});
  EXPECT_EQ(cli.get_int("count"), 7);
  EXPECT_DOUBLE_EQ(cli.get_double("from"), 0.25);
}

TEST(Cli, UsageMentionsEverything) {
  const std::string usage = make_parser().usage();
  EXPECT_NE(usage.find("--from"), std::string::npos);
  EXPECT_NE(usage.find("--verbose"), std::string::npos);
  EXPECT_NE(usage.find("<input>"), std::string::npos);
  EXPECT_NE(usage.find("default: out.csv"), std::string::npos);
}

TEST(Cli, LogLevelPrecedence) {
  // Flags beat the environment, the environment beats the Warn default,
  // and --quiet beats --verbose when both are set.
  EXPECT_EQ(resolve_log_level(false, false, nullptr), LogLevel::Warn);
  EXPECT_EQ(resolve_log_level(true, false, nullptr), LogLevel::Info);
  EXPECT_EQ(resolve_log_level(false, true, nullptr), LogLevel::Error);
  EXPECT_EQ(resolve_log_level(true, true, nullptr), LogLevel::Error);
  EXPECT_EQ(resolve_log_level(false, false, "debug"), LogLevel::Debug);
  EXPECT_EQ(resolve_log_level(false, false, "OFF"), LogLevel::Off);
  EXPECT_EQ(resolve_log_level(true, false, "debug"), LogLevel::Info);   // flag wins
  EXPECT_EQ(resolve_log_level(false, true, "debug"), LogLevel::Error);  // flag wins
  EXPECT_EQ(resolve_log_level(false, false, "garbage"), LogLevel::Warn);
  EXPECT_EQ(resolve_log_level(false, false, ""), LogLevel::Warn);

  EXPECT_EQ(parse_log_level("warning"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("Error"), LogLevel::Error);
  EXPECT_EQ(parse_log_level("nope"), std::nullopt);
}

TEST(Report, RendersAllSections) {
  core::PipelineReport report;
  report.sweeps = 30;
  report.sweep_rows = 123456;
  report.dynamicity.total_slash24_seen = 100;
  report.dynamicity.dynamic_count = 7;
  core::SuffixStats stats;
  stats.suffix = "leaky-university.edu";
  stats.records = 80;
  stats.unique_names = {"brian", "emma", "jacob"};
  stats.identified = true;
  report.leaks.suffixes["leaky-university.edu"] = stats;
  report.leaks.identified = {"leaky-university.edu"};
  report.leaks.matches_per_name["brian"] = 10;
  report.leaks.filtered_matches_per_name["brian"] = 4;
  report.types = core::classify_all(report.leaks.identified);
  for (const auto& term : core::device_terms()) {
    report.cooccurrence.all_matches[term] = term == std::string{"iphone"} ? 5u : 0u;
    report.cooccurrence.filtered_matches[term] = term == std::string{"iphone"} ? 3u : 0u;
  }
  report.cooccurrence.total_filtered = 3;

  const std::string md = core::render_markdown_report(report);
  EXPECT_NE(md.find("| sweeps analyzed | 30 |"), std::string::npos);
  EXPECT_NE(md.find("123,456"), std::string::npos);
  EXPECT_NE(md.find("`leaky-university.edu`"), std::string::npos);
  EXPECT_NE(md.find("academic 100.0%"), std::string::npos);
  EXPECT_NE(md.find("**brian**: 4 (10)"), std::string::npos);
  EXPECT_NE(md.find("| iphone | 3 | 5 |"), std::string::npos);
  EXPECT_NE(md.find("Methodology"), std::string::npos);
}

TEST(Report, EmptyReportStillValid) {
  core::PipelineReport report;
  core::ReportOptions options;
  options.include_methodology = false;
  const std::string md = core::render_markdown_report(report, options);
  EXPECT_NE(md.find("No network met the identification criteria"), std::string::npos);
  EXPECT_EQ(md.find("Methodology"), std::string::npos);
}

}  // namespace
}  // namespace rdns::util
