/// Tests for util/csv.hpp: RFC 4180 escaping, parsing, and streaming IO
/// round trips (scanner output format).

#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace rdns::util {
namespace {

TEST(CsvEscape, PlainFieldsUnquoted) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvEscape, QuotesWhenNeeded) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvParseLine, SimpleFields) {
  EXPECT_EQ(csv_parse_line("a,b,c"), (CsvRow{"a", "b", "c"}));
  EXPECT_EQ(csv_parse_line(""), (CsvRow{""}));
  EXPECT_EQ(csv_parse_line("a,,c"), (CsvRow{"a", "", "c"}));
}

TEST(CsvParseLine, QuotedFields) {
  EXPECT_EQ(csv_parse_line("\"a,b\",c"), (CsvRow{"a,b", "c"}));
  EXPECT_EQ(csv_parse_line("\"say \"\"hi\"\"\""), (CsvRow{"say \"hi\""}));
}

TEST(CsvParseLine, ToleratesCr) {
  EXPECT_EQ(csv_parse_line("a,b\r"), (CsvRow{"a", "b"}));
}

TEST(CsvParseLine, UnterminatedQuoteThrows) {
  EXPECT_THROW((void)csv_parse_line("\"oops"), std::invalid_argument);
}

/// Escape/parse round trip over awkward field contents.
class CsvRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(CsvRoundTrip, LineSurvives) {
  const CsvRow row{GetParam(), "plain", "t,r\"icky"};
  EXPECT_EQ(csv_parse_line(csv_line(row)), row);
}

INSTANTIATE_TEST_SUITE_P(Fields, CsvRoundTrip,
                         ::testing::Values("", "simple", "with,comma", "with\"quote",
                                           "both,\"of\",them", "  spaced  ",
                                           "93.184.216.34"));

TEST(CsvWriter, WritesRows) {
  std::ostringstream out;
  CsvWriter writer{out};
  writer.row("date", "ip", "ptr");
  writer.row("2021-11-01", "10.0.0.1", "brians-iphone.x.edu");
  writer.row(1, 2.5, "x");
  EXPECT_EQ(writer.rows_written(), 3u);
  EXPECT_EQ(out.str(),
            "date,ip,ptr\n2021-11-01,10.0.0.1,brians-iphone.x.edu\n1,2.500000,x\n");
}

TEST(CsvReader, ReadsBack) {
  std::istringstream in{"a,b\n\n\"multi\nline\",x\n"};
  CsvReader reader{in};
  CsvRow row;
  ASSERT_TRUE(reader.next(row));
  EXPECT_EQ(row, (CsvRow{"a", "b"}));
  ASSERT_TRUE(reader.next(row));  // blank line skipped
  EXPECT_EQ(row, (CsvRow{"multi\nline", "x"}));
  EXPECT_FALSE(reader.next(row));
}

TEST(CsvParse, WholeDocument) {
  const auto rows = csv_parse("h1,h2\nv1,v2\nv3,v4\n");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[2], (CsvRow{"v3", "v4"}));
}

TEST(CsvWriterReader, FullRoundTrip) {
  std::stringstream stream;
  CsvWriter writer{stream};
  const std::vector<CsvRow> rows = {
      {"2021-11-01", "10.10.128.1", "brians-mbp.housing.x.edu"},
      {"with,comma", "with\"quote", "with\nnewline"},
  };
  for (const auto& row : rows) writer.write_row(row);
  CsvReader reader{stream};
  CsvRow row;
  for (const auto& expected : rows) {
    ASSERT_TRUE(reader.next(row));
    EXPECT_EQ(row, expected);
  }
  EXPECT_FALSE(reader.next(row));
}

}  // namespace
}  // namespace rdns::util
