/// util::FlightRecorder: ring wrap-around accounting, concurrent writers
/// (the TSan matrix leg runs this suite), drain determinism and the
/// rdns.flight.v1 JSONL dump shape.

#include "util/flight.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace rdns;
using util::flight::Event;
using util::flight::FlightRecorder;
using util::flight::Kind;

TEST(FlightRecorder, DisarmedRecordsNothing) {
  FlightRecorder recorder;
  recorder.record(Kind::QueryIssue, 1, 2);
  std::vector<Event> events;
  const auto stats = recorder.drain(events);
  EXPECT_EQ(stats.events, 0u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_TRUE(events.empty());
}

TEST(FlightRecorder, RecordsAndDrainsInOrder) {
  FlightRecorder recorder;
  recorder.arm(64);
  for (std::uint64_t i = 0; i < 10; ++i) {
    recorder.record(Kind::QueryIssue, 100 + i, i);
  }
  std::vector<Event> events;
  const auto stats = recorder.drain(events);
  EXPECT_EQ(stats.events, 10u);
  EXPECT_EQ(stats.dropped, 0u);
  ASSERT_EQ(events.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(events[i].seq, i);
    EXPECT_EQ(events[i].a, 100 + i);
    EXPECT_EQ(events[i].b, i);
    EXPECT_EQ(events[i].kind, static_cast<std::uint16_t>(Kind::QueryIssue));
  }
  // A second drain sees nothing new.
  events.clear();
  EXPECT_EQ(recorder.drain(events).events, 0u);
}

TEST(FlightRecorder, PayloadRoundTripsAllKinds) {
  FlightRecorder recorder;
  recorder.arm(64);
  for (std::size_t k = 0; k < util::flight::kKindCount; ++k) {
    recorder.record(static_cast<Kind>(k), 0xFFFF'FFFF'FFFF'FFFFULL, 0xFFFF'FFFFULL);
  }
  std::vector<Event> events;
  recorder.drain(events);
  ASSERT_EQ(events.size(), util::flight::kKindCount);
  for (std::size_t k = 0; k < util::flight::kKindCount; ++k) {
    EXPECT_EQ(events[k].kind, k);
    EXPECT_EQ(events[k].a, 0xFFFF'FFFF'FFFF'FFFFULL);
    EXPECT_EQ(events[k].b, 0xFFFF'FFFFu);
    EXPECT_STRNE(util::flight::to_string(static_cast<Kind>(k)), "?");
  }
}

TEST(FlightRecorder, WrapAroundKeepsNewestAndCountsDrops) {
  FlightRecorder recorder;
  recorder.arm(16);  // power of two already
  ASSERT_EQ(recorder.ring_capacity(), 16u);
  for (std::uint64_t i = 0; i < 100; ++i) {
    recorder.record(Kind::Retry, i, 0);
  }
  std::vector<Event> events;
  const auto stats = recorder.drain(events);
  EXPECT_EQ(stats.events, 16u);
  EXPECT_EQ(stats.dropped, 84u);
  ASSERT_EQ(events.size(), 16u);
  // The ring keeps the newest 16 events, still in sequence order.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 84 + i);
    EXPECT_EQ(events[i].a, 84 + i);
  }
}

TEST(FlightRecorder, CapacityRoundsUpToPowerOfTwo) {
  FlightRecorder recorder;
  recorder.arm(100);
  EXPECT_EQ(recorder.ring_capacity(), 128u);
}

TEST(FlightRecorder, ConcurrentWritersDrainExactlyOnce) {
  FlightRecorder recorder;
  recorder.arm(1 << 12);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        recorder.record(Kind::QueryDone, static_cast<std::uint64_t>(t), i);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  std::vector<Event> events;
  const auto stats = recorder.drain(events);
  EXPECT_EQ(stats.events, kThreads * kPerThread);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.threads, static_cast<std::size_t>(kThreads));
  // Global sequence numbers are unique and strictly increasing after the
  // drain's merge sort; per-thread payloads arrive in their issue order.
  std::vector<std::uint64_t> next_b(kThreads, 0);
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i > 0) EXPECT_LT(events[i - 1].seq, events[i].seq);
    ASSERT_LT(events[i].a, static_cast<std::uint64_t>(kThreads));
    EXPECT_EQ(events[i].b, next_b[events[i].a]++);
  }
}

TEST(FlightRecorder, DrainWhileWritersAreLiveNeverDuplicates) {
  FlightRecorder recorder;
  recorder.arm(64);  // tiny ring: force wraps during the drain loop
  std::atomic<bool> stop{false};
  std::thread writer{[&recorder, &stop] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      recorder.record(Kind::ProbeSent, i++, 0);
    }
  }};
  std::vector<Event> events;
  for (int round = 0; round < 50; ++round) {
    recorder.drain(events);
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  recorder.drain(events);
  // Exactly-once: payloads (== per-writer issue index) strictly increase,
  // so no drained event is ever a duplicate or torn copy.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].a, events[i].a);
    EXPECT_LT(events[i - 1].seq, events[i].seq);
  }
}

TEST(FlightRecorder, JsonlDumpShape) {
  FlightRecorder recorder;
  recorder.arm(64);
  recorder.record(Kind::ShardStart, 0x0A000000, 0);
  recorder.record(Kind::ShardFinish, 256, 0);
  std::ostringstream out;
  const auto stats = recorder.drain_jsonl(out);
  EXPECT_EQ(stats.events, 2u);
  std::istringstream in{out.str()};
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"schema\":\"rdns.flight.v1\""), std::string::npos);
  EXPECT_NE(line.find("\"segment\":1"), std::string::npos);
  EXPECT_NE(line.find("\"events\":2"), std::string::npos);
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"kind\":\"shard.start\""), std::string::npos);
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"kind\":\"shard.finish\""), std::string::npos);
  EXPECT_FALSE(std::getline(in, line));

  // A second dump is a new segment, containing only newer events.
  recorder.record(Kind::ShardDegrade, 1, 1);
  std::ostringstream out2;
  recorder.drain_jsonl(out2);
  EXPECT_NE(out2.str().find("\"segment\":2"), std::string::npos);
  EXPECT_NE(out2.str().find("\"events\":1"), std::string::npos);
}

TEST(FlightRecorder, DumpPathAppendsSegments) {
  const std::string path = "flight_test_dump.jsonl";
  {
    FlightRecorder recorder;
    recorder.arm(64);
    recorder.set_dump_path(path);
    recorder.record(Kind::Backoff, 2, 1);
    std::string error;
    ASSERT_TRUE(recorder.dump_now(&error)) << error;
    recorder.record(Kind::Backoff, 4, 2);
    ASSERT_TRUE(recorder.dump_now(&error)) << error;
  }
  std::ifstream in{path};
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("\"segment\":1"), std::string::npos);
  EXPECT_NE(text.find("\"segment\":2"), std::string::npos);
  std::remove(path.c_str());
}

TEST(FlightRecorder, DumpWithoutPathFails) {
  FlightRecorder recorder;
  std::string error;
  EXPECT_FALSE(recorder.dump_now(&error));
  EXPECT_NE(error.find("no flight dump path"), std::string::npos);
}

TEST(FlightRecorder, GlobalGateHelpers) {
  EXPECT_EQ(util::flight::active(), nullptr);
  FlightRecorder::global().arm();
  EXPECT_EQ(util::flight::active(), &FlightRecorder::global());
  util::flight::record(Kind::QueryIssue, 7, 0);
  FlightRecorder::global().disarm();
  EXPECT_EQ(util::flight::active(), nullptr);
  std::vector<Event> events;
  const auto stats = FlightRecorder::global().drain(events);
  EXPECT_EQ(stats.events, 1u);
  EXPECT_EQ(events[0].a, 7u);
}

}  // namespace
