/// Tests for the event journal: line rendering and escaping, buffers, the
/// global-journal file lifecycle, manifest serialization/compatibility, and
/// the minimal JSON reader the auditor replays with.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "util/journal.hpp"

namespace rdns::util::journal {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(JournalEvent, RendersInsertionOrderedLine) {
  Event e{"dhcp.ack", 3600};
  e.str("ip", "10.0.0.7").str("mac", "02:00:00:00:00:01").boolean("renew", false);
  e.num("delta", -5).unum("big", 9007199254740993ULL).real("frac", 0.5);
  EXPECT_EQ(e.line(),
            "{\"t\":3600,\"type\":\"dhcp.ack\",\"ip\":\"10.0.0.7\","
            "\"mac\":\"02:00:00:00:00:01\",\"renew\":false,\"delta\":-5,"
            "\"big\":9007199254740993,\"frac\":0.5}\n");
}

TEST(JournalEvent, EscapesStrings) {
  Event e{"dns.lookup", 0};
  e.str("qname", "a\"b\\c\n\tcontrol:\x01");
  const std::string line = e.line();
  EXPECT_NE(line.find("a\\\"b\\\\c\\n\\tcontrol:\\u0001"), std::string::npos);
  // The escaped line must round-trip through the reader.
  const auto parsed = parse_json(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->get_string("qname"), "a\"b\\c\n\tcontrol:\x01");
}

TEST(JournalBuffer, AccumulatesAndTakes) {
  Buffer buf;
  EXPECT_TRUE(buf.empty());
  buf.emit(Event{"sweep.shard", 10});
  buf.emit(Event{"sweep.shard", 20});
  EXPECT_FALSE(buf.empty());
  const std::string lines = buf.take();
  EXPECT_EQ(lines,
            "{\"t\":10,\"type\":\"sweep.shard\"}\n"
            "{\"t\":20,\"type\":\"sweep.shard\"}\n");
  EXPECT_TRUE(buf.empty());
}

TEST(Journal, FileLifecycleWritesHeaderThenEvents) {
  const std::string path = "test_util_journal_lifecycle.jsonl";
  RunManifest m;
  m.tool = "test";
  m.version = version_string();
  m.seed = 42;
  m.world_digest = 0xDEADBEEFULL;
  m.threads = 8;

  Journal j;
  EXPECT_FALSE(j.enabled());
  j.set_manifest(m);
  ASSERT_TRUE(j.open(path));
  EXPECT_TRUE(j.enabled());
  j.emit(Event{"dhcp.discover", 5});
  Buffer buf;
  buf.emit(Event{"sweep.shard", 6});
  j.append_raw(buf.take());
  j.close();
  EXPECT_FALSE(j.enabled());

  const std::string text = slurp(path);
  EXPECT_EQ(text, manifest_event_line(m) +
                      "{\"t\":5,\"type\":\"dhcp.discover\"}\n"
                      "{\"t\":6,\"type\":\"sweep.shard\"}\n");
  std::remove(path.c_str());
}

TEST(Journal, OpenFailureLeavesDisabled) {
  Journal j;
  EXPECT_FALSE(j.open("no-such-dir/journal.jsonl"));
  EXPECT_FALSE(j.enabled());
}

TEST(Manifest, HeaderLineIsManifestEventWithoutThreads) {
  RunManifest m;
  m.tool = "rdns_tool.campaign";
  m.version = "1.2.3";
  m.seed = 7;
  m.world_digest = 0x0123456789ABCDEFULL;
  m.threads = 16;

  const std::string line = manifest_event_line(m);
  const auto parsed = parse_json(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->get_int("t"), 0);
  EXPECT_EQ(parsed->get_string("type"), "manifest");
  EXPECT_EQ(parsed->get_string("tool"), "rdns_tool.campaign");
  EXPECT_EQ(parsed->get_int("seed"), 7);
  EXPECT_EQ(parsed->get_string("world_digest"), "0123456789abcdef");
  EXPECT_EQ(parsed->get_string("events_schema"), kEventsSchema);
  // The stream is thread-invariant, so the header must not pin a count.
  EXPECT_FALSE(parsed->has("threads"));
  // The snapshot form carries it.
  const auto snapshot = parse_json(manifest_json(m));
  ASSERT_TRUE(snapshot.has_value());
  EXPECT_EQ(snapshot->get_int("threads"), 16);
}

TEST(Manifest, CompatibilityIgnoresThreads) {
  RunManifest a;
  a.tool = "rdns_tool.campaign";
  a.version = "1.2.3";
  a.seed = 5;
  a.world_digest = 99;
  a.threads = 1;
  RunManifest b = a;
  b.tool = "rdns_tool.sweep";  // tool may differ (journal vs snapshot writer)
  b.threads = 8;
  std::string why;
  EXPECT_TRUE(manifests_compatible(a, b, &why)) << why;

  b.seed = 6;
  EXPECT_FALSE(manifests_compatible(a, b, &why));
  EXPECT_NE(why.find("seed"), std::string::npos);

  b = a;
  b.world_digest = 100;
  EXPECT_FALSE(manifests_compatible(a, b, &why));
  EXPECT_NE(why.find("digest"), std::string::npos);

  b = a;
  b.version = "9.9.9";
  EXPECT_FALSE(manifests_compatible(a, b, &why));
  EXPECT_NE(why.find("version"), std::string::npos);
}

TEST(ParseJson, ValidDocuments) {
  const auto v = parse_json(
      R"({"a": 1, "b": -2.5, "c": "xA\n", "d": true, "e": null,)"
      R"( "f": [1, "two", {"g": false}]})");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->kind, JsonValue::Kind::Object);
  EXPECT_EQ(v->get_int("a"), 1);
  EXPECT_DOUBLE_EQ(v->get_number("b"), -2.5);
  EXPECT_EQ(v->get_string("c"), "xA\n");
  EXPECT_TRUE(v->get_bool("d"));
  ASSERT_NE(v->find("e"), nullptr);
  EXPECT_EQ(v->find("e")->kind, JsonValue::Kind::Null);
  const JsonValue* f = v->find("f");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(f->array.size(), 3u);
  EXPECT_EQ(f->array[1].string, "two");
  EXPECT_EQ(f->array[2].get_bool("g", true), false);
  // Defaults on missing keys.
  EXPECT_EQ(v->get_int("missing", -7), -7);
  EXPECT_EQ(v->get_string("missing", "def"), "def");
}

TEST(ParseJson, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(parse_json("", &error).has_value());
  EXPECT_FALSE(parse_json("{", &error).has_value());
  EXPECT_FALSE(parse_json("{\"a\":}", &error).has_value());
  EXPECT_FALSE(parse_json("[1,]", &error).has_value());
  EXPECT_FALSE(parse_json("\"unterminated", &error).has_value());
  EXPECT_FALSE(parse_json("{\"a\":1} trailing", &error).has_value());
  EXPECT_FALSE(parse_json("nul", &error).has_value());
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace rdns::util::journal
