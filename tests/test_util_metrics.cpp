/// Tests for the observability layer: metrics registry (counters, gauges,
/// fixed-bucket histograms) and the scoped-span tracer. The load-bearing
/// properties are the deterministic ones — concurrent totals equal serial
/// totals, merges are order-independent, span trees are keyed by structure
/// — plus the percentile math and the JSON snapshot shape.

#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace metrics = rdns::util::metrics;
namespace trace = rdns::util::trace;

namespace {

/// Minimal JSON well-formedness checker (objects, arrays, strings, numbers,
/// literals) — enough to prove snapshots parse without a JSON dependency.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : s_(text) {}

  [[nodiscard]] bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '-' ||
            s_[pos_] == '+' || s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

TEST(Counter, ConcurrentIncrementsMatchSerialSum) {
  metrics::Counter counter;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(Gauge, SetAddAndReset) {
  metrics::Gauge gauge;
  gauge.set(42);
  EXPECT_EQ(gauge.value(), 42);
  gauge.add(-50);
  EXPECT_EQ(gauge.value(), -8);
  gauge.reset();
  EXPECT_EQ(gauge.value(), 0);
}

TEST(Histogram, BucketAssignmentUsesUpperBounds) {
  metrics::Histogram h{{1, 10, 100}};
  h.observe(0.5);   // <= 1
  h.observe(1);     // <= 1 (bounds are inclusive upper bounds)
  h.observe(5);     // <= 10
  h.observe(100);   // <= 100
  h.observe(1000);  // overflow
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // overflow bucket
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1 + 5 + 100 + 1000);
}

TEST(Histogram, ConcurrentObservationsMatchSerialBucketCounts) {
  const auto bounds = metrics::Histogram::linear_bounds(10, 10, 10);
  metrics::Histogram concurrent{bounds};
  metrics::Histogram serial{bounds};

  constexpr int kThreads = 8;
  constexpr int kPerThread = 20'000;
  // Thread t observes the fixed stream (t, t+kThreads, t+2*kThreads, ...)
  // mod 110, so the union across threads equals one serial pass.
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&concurrent, t] {
      for (int i = 0; i < kPerThread; ++i) {
        concurrent.observe(static_cast<double>((t + i * kThreads) % 110));
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      serial.observe(static_cast<double>((t + i * kThreads) % 110));
    }
  }

  EXPECT_EQ(concurrent.count(), serial.count());
  EXPECT_DOUBLE_EQ(concurrent.sum(), serial.sum());
  for (std::size_t i = 0; i <= bounds.size(); ++i) {
    EXPECT_EQ(concurrent.bucket_count(i), serial.bucket_count(i)) << "bucket " << i;
  }
}

TEST(Histogram, PercentilesOnKnownUniformDistribution) {
  // Values 1..100 once each against unit-width buckets: the interpolated
  // percentile is exact.
  metrics::Histogram h{metrics::Histogram::linear_bounds(1, 1, 100)};
  for (int v = 1; v <= 100; ++v) h.observe(v);
  EXPECT_DOUBLE_EQ(h.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(h.percentile(90), 90.0);
  EXPECT_DOUBLE_EQ(h.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 100.0);
}

TEST(Histogram, PercentileEdgeCases) {
  metrics::Histogram empty{{1, 2}};
  EXPECT_DOUBLE_EQ(empty.percentile(50), 0.0);  // no observations

  metrics::Histogram overflow_only{{1, 2}};
  overflow_only.observe(100);
  // Overflow bucket clamps to the last finite bound.
  EXPECT_DOUBLE_EQ(overflow_only.percentile(50), 2.0);
}

TEST(Histogram, MergeFoldsBucketByBucket) {
  const std::vector<double> bounds{1, 10, 100};
  metrics::Histogram a{bounds};
  metrics::Histogram b{bounds};
  a.observe(1);
  a.observe(50);
  b.observe(5);
  b.observe(500);
  a.merge_from(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.bucket_count(0), 1u);
  EXPECT_EQ(a.bucket_count(1), 1u);
  EXPECT_EQ(a.bucket_count(2), 1u);
  EXPECT_EQ(a.bucket_count(3), 1u);
  EXPECT_DOUBLE_EQ(a.sum(), 556.0);
}

TEST(Histogram, BoundsHelpers) {
  EXPECT_EQ(metrics::Histogram::exponential_bounds(1, 2, 4),
            (std::vector<double>{1, 2, 4, 8}));
  EXPECT_EQ(metrics::Histogram::linear_bounds(5, 10, 3), (std::vector<double>{5, 15, 25}));
}

TEST(Registry, LookupRegistersOnceAndKeepsReferencesStable) {
  metrics::Registry registry;
  metrics::Counter& a = registry.counter("x.a");
  metrics::Counter& b = registry.counter("x.a");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  registry.reset_values();
  EXPECT_EQ(a.value(), 0u);  // reset zeroes but never invalidates
  a.inc();
  EXPECT_EQ(registry.counter("x.a").value(), 1u);
}

TEST(Registry, MergeIsOrderIndependent) {
  // Two worker-shard registries folded into fresh targets in both orders
  // must agree — the determinism contract for per-worker sharding.
  metrics::Registry shard1;
  metrics::Registry shard2;
  shard1.counter("n.c").inc(5);
  shard2.counter("n.c").inc(7);
  shard2.counter("n.only2").inc(1);
  shard1.gauge("n.g").add(2);
  shard2.gauge("n.g").add(3);
  const std::vector<double> bounds{1, 10};
  shard1.histogram("n.h", bounds).observe(0.5);
  shard2.histogram("n.h", bounds).observe(5);

  metrics::Registry ab;
  ab.merge_from(shard1);
  ab.merge_from(shard2);
  metrics::Registry ba;
  ba.merge_from(shard2);
  ba.merge_from(shard1);

  EXPECT_EQ(ab.to_json(), ba.to_json());
  EXPECT_EQ(ab.counter("n.c").value(), 12u);
  EXPECT_EQ(ab.counter("n.only2").value(), 1u);
  EXPECT_EQ(ab.gauge("n.g").value(), 5);
  EXPECT_EQ(ab.histogram("n.h", bounds).count(), 2u);
}

TEST(Registry, JsonIsValidAndNameSorted) {
  metrics::Registry registry;
  registry.counter("zz.last").inc();
  registry.counter("aa.first").inc(2);
  registry.histogram("mid.h", {1, 2}).observe(1.5);
  const std::string json = registry.to_json();
  EXPECT_TRUE(JsonChecker{json}.valid()) << json;
  EXPECT_LT(json.find("aa.first"), json.find("zz.last"));
  EXPECT_NE(json.find("\"+Inf\""), std::string::npos);
}

TEST(CollectTiming, DefaultsOffAndToggles) {
  EXPECT_FALSE(metrics::collect_timing());
  metrics::set_collect_timing(true);
  EXPECT_TRUE(metrics::collect_timing());
  metrics::set_collect_timing(false);
  EXPECT_FALSE(metrics::collect_timing());
}

TEST(Tracer, DisabledScopeIsInert) {
  trace::Tracer tracer;  // disabled by default
  {
    const auto scope = tracer.scope("never");
    EXPECT_FALSE(scope.active());
    scope.add_sample("child", 100, 100);  // no-op when inert
  }
  EXPECT_FALSE(tracer.has_spans());
}

TEST(Tracer, NestingAndMergeByStructure) {
  trace::Tracer tracer;
  tracer.set_enabled(true);
  for (int day = 0; day < 3; ++day) {
    const auto outer = tracer.scope("day");
    for (int pass = 0; pass < 2; ++pass) {
      const auto inner = tracer.scope("pass");
    }
  }
  EXPECT_TRUE(tracer.has_spans());
  const std::string json = tracer.to_json();
  EXPECT_TRUE(JsonChecker{json}.valid()) << json;
  // Repeated spans merged by (parent, name): one "day" node counted thrice,
  // one "pass" child counted six times — not nine separate nodes.
  EXPECT_NE(json.find("\"name\": \"day\", \"count\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\": \"pass\", \"count\": 6"), std::string::npos) << json;
}

TEST(Tracer, WorkerSamplesMergeUnderTheScope) {
  trace::Tracer tracer;
  tracer.set_enabled(true);
  {
    const auto scope = tracer.scope("sweep");
    std::vector<std::thread> workers;
    for (int w = 0; w < 4; ++w) {
      workers.emplace_back([&scope] {
        for (int s = 0; s < 25; ++s) scope.add_sample("shard", 1'000'000, 900'000);
      });
    }
    for (auto& w : workers) w.join();
  }
  const std::string json = tracer.to_json();
  EXPECT_NE(json.find("\"name\": \"shard\", \"count\": 100"), std::string::npos) << json;
  EXPECT_GE(tracer.root_wall_ns(), 0);
}

TEST(Tracer, ScopesNestPerThreadAndRootWallSumsTopLevel) {
  trace::Tracer tracer;
  tracer.set_enabled(true);
  {
    const auto a = tracer.scope("a");
    const auto b = tracer.scope("b");  // nests under "a" on this thread
  }
  const std::string json = tracer.to_json();
  // "b" must appear as a child inside "a"'s children array.
  const auto a_at = json.find("\"name\": \"a\"");
  const auto b_at = json.find("\"name\": \"b\"");
  ASSERT_NE(a_at, std::string::npos);
  ASSERT_NE(b_at, std::string::npos);
  EXPECT_LT(a_at, b_at);
  EXPECT_TRUE(JsonChecker{json}.valid()) << json;
}

TEST(Snapshot, CombinedDocumentIsValidJson) {
  metrics::Registry registry;
  registry.counter("dns.q").inc(9);
  registry.histogram("dns.h", {1, 2, 4}).observe(3);
  trace::Tracer tracer;
  tracer.set_enabled(true);
  { const auto scope = tracer.scope("root_phase"); }
  std::ostringstream out;
  trace::write_snapshot_json(out, registry, tracer);
  const std::string doc = out.str();
  EXPECT_TRUE(JsonChecker{doc}.valid()) << doc;
  EXPECT_NE(doc.find("\"schema\": \"rdns.observability.v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"counters\""), std::string::npos);
  EXPECT_NE(doc.find("\"histograms\""), std::string::npos);
  EXPECT_NE(doc.find("\"spans\""), std::string::npos);
}
