/// Tests for the token bucket (scanner rate limiting), ASCII chart
/// rendering (bench output) and the logger.

#include <gtest/gtest.h>

#include "util/ascii_chart.hpp"
#include "util/log.hpp"
#include "util/token_bucket.hpp"

namespace rdns::util {
namespace {

TEST(TokenBucket, StartsFullThenLimits) {
  TokenBucket bucket{10.0, 5.0, 0};
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(bucket.try_acquire(0));
  EXPECT_FALSE(bucket.try_acquire(0));
}

TEST(TokenBucket, RefillsOverTime) {
  TokenBucket bucket{2.0, 2.0, 0};
  EXPECT_TRUE(bucket.try_acquire(0));
  EXPECT_TRUE(bucket.try_acquire(0));
  EXPECT_FALSE(bucket.try_acquire(0));
  EXPECT_TRUE(bucket.try_acquire(1));  // 2 tokens/s accrued
}

TEST(TokenBucket, BurstCapsAccumulation) {
  TokenBucket bucket{100.0, 3.0, 0};
  EXPECT_NEAR(bucket.tokens(1000), 3.0, 1e-9);
}

TEST(TokenBucket, NextAvailable) {
  TokenBucket bucket{1.0, 1.0, 0};
  EXPECT_TRUE(bucket.try_acquire(0));
  const SimTime t = bucket.next_available(0);
  EXPECT_GE(t, 1);
  EXPECT_TRUE(bucket.try_acquire(t));
}

TEST(TokenBucket, MultiTokenAcquire) {
  TokenBucket bucket{10.0, 10.0, 0};
  EXPECT_TRUE(bucket.try_acquire(0, 8.0));
  EXPECT_FALSE(bucket.try_acquire(0, 8.0));
  EXPECT_TRUE(bucket.try_acquire(1, 8.0));  // 2 + 10 accrued, capped at 10
}

TEST(AsciiChart, LineChartContainsLegendAndGlyphs) {
  Series s1{"icmp", {1, 5, 3, 8, 2}};
  Series s2{"rdns", {2, 2, 2, 2, 2}};
  ChartOptions opts;
  opts.title = "activity";
  const std::string out = render_line_chart({s1, s2}, opts);
  EXPECT_NE(out.find("activity"), std::string::npos);
  EXPECT_NE(out.find("icmp"), std::string::npos);
  EXPECT_NE(out.find("rdns"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
}

TEST(AsciiChart, EmptyData) {
  ChartOptions opts;
  EXPECT_NE(render_line_chart({}, opts).find("(no data)"), std::string::npos);
  EXPECT_NE(render_bar_chart({}, opts).find("(no data)"), std::string::npos);
}

TEST(AsciiChart, BarChartScalesToMax) {
  ChartOptions opts;
  opts.width = 20;
  const std::string out =
      render_bar_chart({{"big", 100.0}, {"half", 50.0}, {"zero", 0.0}}, opts);
  // The big bar must be longer than the half bar.
  const auto big_line = out.substr(0, out.find('\n'));
  const auto half_line = out.substr(out.find('\n') + 1);
  const auto count_hashes = [](const std::string& s) {
    return std::count(s.begin(), s.end(), '#');
  };
  EXPECT_GT(count_hashes(big_line), count_hashes(half_line.substr(0, half_line.find('\n'))));
}

TEST(AsciiChart, PresenceGridGlyphs) {
  const std::string out = render_presence_grid({"brians-mbp", "brians-ipad"},
                                               {{0, 1, 1, 0}, {2, 0, 0, 2}}, "week");
  EXPECT_NE(out.find("brians-mbp"), std::string::npos);
  EXPECT_NE(out.find('.'), std::string::npos);  // state 1 glyph
  EXPECT_NE(out.find(':'), std::string::npos);  // state 2 glyph
}

TEST(AsciiChart, HistogramRendersCounts) {
  ChartOptions options;
  options.title = "linger";
  const std::string out = render_histogram({10, 0, 5}, 0.0, 5.0, options);
  EXPECT_NE(out.find("linger"), std::string::npos);
  EXPECT_NE(out.find("10"), std::string::npos);
}

TEST(Log, FormatLogLineIsIso8601WithLevelPrefix) {
  EXPECT_EQ(format_log_line(LogLevel::Info, "hi", 0), "1970-01-01T00:00:00Z [INFO] hi\n");
  EXPECT_EQ(format_log_line(LogLevel::Error, "boom", 1635775200),
            "2021-11-01T14:00:00Z [ERROR] boom\n");
  EXPECT_EQ(format_log_line(LogLevel::Debug, "", 86399), "1970-01-01T23:59:59Z [DEBUG] \n");
}

TEST(Log, LevelFiltering) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  log_debug("not shown");  // must not crash
  log_error("shown");
  set_log_level(before);
}

}  // namespace
}  // namespace rdns::util
