/// Tests for util/rng.hpp: determinism, distribution sanity and the
/// derived-stream machinery the simulator's reproducibility rests on.

#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace rdns::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{123}, b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsIndependentOfParentStream) {
  Rng parent{99};
  Rng child1 = parent.fork(7);
  const std::uint64_t next_parent = parent.next();
  Rng parent2{99};
  Rng child2 = parent2.fork(7);
  EXPECT_EQ(child1.next(), child2.next());   // same fork -> same stream
  EXPECT_EQ(parent2.next(), next_parent);    // forking did not consume parent state
}

TEST(Rng, ForkTagsSeparateStreams) {
  Rng parent{99};
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  EXPECT_NE(a.next(), b.next());
}

class UniformIntRange : public ::testing::TestWithParam<std::pair<std::int64_t, std::int64_t>> {
};

TEST_P(UniformIntRange, StaysInBounds) {
  const auto [lo, hi] = GetParam();
  Rng rng{42};
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(lo, hi);
    EXPECT_GE(v, lo);
    EXPECT_LE(v, hi);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranges, UniformIntRange,
                         ::testing::Values(std::pair{0LL, 0LL}, std::pair{0LL, 1LL},
                                           std::pair{-5LL, 5LL}, std::pair{0LL, 255LL},
                                           std::pair{1000LL, 1000000LL}));

TEST(Rng, UniformIntCoversSmallRange) {
  Rng rng{7};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng{5};
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceEdges) {
  Rng rng{11};
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-1.0));
    EXPECT_TRUE(rng.chance(2.0));
  }
}

TEST(Rng, ChanceFrequency) {
  Rng rng{13};
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.chance(0.25);
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng{17};
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.normal(10.0, 2.0));
  double mean = 0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size());
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, ExponentialMean) {
  Rng rng{19};
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / 20000.0, 3.0, 0.15);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng{23};
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(Rng, ShuffleCompatibility) {
  Rng rng{29};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  std::shuffle(v.begin(), v.end(), rng);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Zipf, PopularRanksDominate) {
  ZipfSampler zipf{50, 0.8};
  Rng rng{31};
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[49]);
}

TEST(Zipf, PmfSumsToOne) {
  ZipfSampler zipf{20, 1.0};
  double total = 0;
  for (std::size_t i = 0; i < zipf.size(); ++i) total += zipf.pmf(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_EQ(zipf.pmf(99), 0.0);
}

TEST(Zipf, RejectsEmpty) { EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument); }

TEST(Mix64, StatelessAndSpreads) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(1), mix64(2));
  std::set<std::uint64_t> outs;
  for (std::uint64_t i = 0; i < 1000; ++i) outs.insert(mix64(i));
  EXPECT_EQ(outs.size(), 1000u);
}

}  // namespace
}  // namespace rdns::util
