// util::SpaceSaving — the heavy-hitter sketch behind the serve-path
// top-K tables. The tests pin the Metwally guarantees (frequent items are
// always tracked, estimates bracket the truth) and the determinism
// contract (tie-breaks and merges are byte-stable), because the admin
// plane renders these rankings verbatim.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/sketch.hpp"

namespace rdns::util {
namespace {

TEST(SpaceSaving, ExactBelowCapacity) {
  SpaceSaving sk{8};
  sk.offer("a", 5);
  sk.offer("b", 3);
  sk.offer("a", 2);
  sk.offer("c");

  EXPECT_EQ(sk.total(), 11u);
  EXPECT_EQ(sk.size(), 3u);
  EXPECT_EQ(sk.estimate("a"), 7u);
  EXPECT_EQ(sk.estimate("b"), 3u);
  EXPECT_EQ(sk.estimate("c"), 1u);
  EXPECT_EQ(sk.estimate("missing"), 0u);
  EXPECT_EQ(sk.min_count(), 0u);  // floor stays 0 until capacity is hit

  const auto top = sk.top(10);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key, "a");
  EXPECT_EQ(top[0].count, 7u);
  EXPECT_EQ(top[0].error, 0u);  // never evicted: exact
}

TEST(SpaceSaving, TopBreaksCountTiesByKeyAscending) {
  SpaceSaving sk{8};
  sk.offer("zeta", 4);
  sk.offer("alpha", 4);
  sk.offer("mid", 4);

  const auto top = sk.top(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key, "alpha");
  EXPECT_EQ(top[1].key, "mid");
  EXPECT_EQ(top[2].key, "zeta");
}

TEST(SpaceSaving, HeavyHitterSurvivesEvictionChurn) {
  // One genuinely frequent key in a stream of singletons much wider than
  // the sketch: Space-Saving must keep it, and its estimate must bracket
  // the true count within error().
  SpaceSaving sk{16};
  const std::uint64_t kHeavy = 400;
  std::uint64_t offered = 0;
  for (std::uint64_t i = 0; i < kHeavy; ++i) {
    sk.offer("heavy");
    ++offered;
    for (int j = 0; j < 4; ++j) {
      sk.offer("noise-" + std::to_string(i * 4 + j));
      ++offered;
    }
  }
  EXPECT_EQ(sk.total(), offered);
  EXPECT_EQ(sk.size(), 16u);

  const auto top = sk.top(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].key, "heavy");
  // Overestimate >= truth >= overestimate - error.
  EXPECT_GE(top[0].count, kHeavy);
  EXPECT_LE(top[0].count - top[0].error, kHeavy);
  // Error bound: <= N / K for every tracked item.
  for (const auto& entry : sk.top(16)) {
    EXPECT_LE(entry.error, sk.total() / sk.capacity());
  }
}

TEST(SpaceSaving, GuaranteesOnZipfStream) {
  // Randomized stream, deterministic seed: every key with true count
  // > N/K must be tracked and correctly bounded.
  SpaceSaving sk{32};
  std::map<std::string, std::uint64_t> truth;
  Rng rng{0x5eedu};
  for (int i = 0; i < 20'000; ++i) {
    // Skewed support: low ids vastly more likely (approximate Zipf).
    const auto u = rng.uniform_int(1, 1 << 16);
    const auto id = static_cast<std::uint64_t>((1 << 16) / u);
    const std::string key = "k" + std::to_string(id);
    sk.offer(key);
    ++truth[key];
  }
  const std::uint64_t floor = sk.total() / sk.capacity();
  for (const auto& [key, count] : truth) {
    if (count > floor) {
      const auto est = sk.estimate(key);
      EXPECT_GE(est, count) << key;
    }
  }
}

TEST(SpaceSaving, MergeIsDeterministicAndOrderIndependent) {
  SpaceSaving a{8}, b{8};
  for (int i = 0; i < 300; ++i) {
    a.offer("shared");
    a.offer("left-" + std::to_string(i % 20));
    b.offer("shared", 2);
    b.offer("right-" + std::to_string(i % 20));
  }

  SpaceSaving ab{8};
  ab.merge_from(a);
  ab.merge_from(b);
  SpaceSaving ba{8};
  ba.merge_from(b);
  ba.merge_from(a);

  EXPECT_EQ(ab.total(), a.total() + b.total());
  EXPECT_EQ(ab.total(), ba.total());
  const auto top_ab = ab.top(8);
  const auto top_ba = ba.top(8);
  ASSERT_EQ(top_ab.size(), top_ba.size());
  for (std::size_t i = 0; i < top_ab.size(); ++i) {
    EXPECT_EQ(top_ab[i].key, top_ba[i].key) << i;
    EXPECT_EQ(top_ab[i].count, top_ba[i].count) << i;
    EXPECT_EQ(top_ab[i].error, top_ba[i].error) << i;
  }
  // The shared heavy key dominates both sides and must survive the merge
  // with at least the sum of both exact counts.
  EXPECT_EQ(top_ab[0].key, "shared");
  EXPECT_GE(top_ab[0].count, 900u);
}

TEST(SpaceSaving, MergePreservesOverestimateGuarantee) {
  // Keys tracked on only one side pick up the other side's floor as
  // error; estimates must stay overestimates of the true counts.
  SpaceSaving a{4}, b{4};
  std::map<std::string, std::uint64_t> truth;
  auto feed = [&truth](SpaceSaving& sk, const std::string& key, std::uint64_t n) {
    sk.offer(key, n);
    truth[key] += n;
  };
  feed(a, "alpha", 50);
  feed(a, "beta", 20);
  feed(a, "gamma", 5);
  feed(a, "delta", 4);
  feed(a, "epsilon", 3);  // forces eviction in a
  feed(b, "alpha", 10);
  feed(b, "zeta", 30);

  SpaceSaving merged{4};
  merged.merge_from(a);
  merged.merge_from(b);
  for (const auto& entry : merged.top(4)) {
    const auto it = truth.find(entry.key);
    ASSERT_NE(it, truth.end());
    EXPECT_GE(entry.count, it->second) << entry.key;
  }
}

TEST(SpaceSaving, ClearResets) {
  SpaceSaving sk{4};
  sk.offer("x", 10);
  sk.clear();
  EXPECT_EQ(sk.total(), 0u);
  EXPECT_EQ(sk.size(), 0u);
  EXPECT_EQ(sk.estimate("x"), 0u);
}

TEST(SpaceSaving, Ipv4SketchKey) {
  EXPECT_EQ(ipv4_sketch_key(0x7f000001u), "127.0.0.1");
  EXPECT_EQ(ipv4_sketch_key(0xc0a80164u), "192.168.1.100");
  EXPECT_EQ(ipv4_sketch_key(0u), "0.0.0.0");
  EXPECT_EQ(ipv4_sketch_key(0xffffffffu), "255.255.255.255");
}

}  // namespace
}  // namespace rdns::util
