/// Tests for util/stats.hpp: counters, histograms (Fig. 7a machinery),
/// empirical CDFs (Fig. 7b machinery) and moments.

#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace rdns::util {
namespace {

TEST(Counter, AddAndQuery) {
  Counter c;
  c.add("iphone");
  c.add("iphone", 2);
  c.add("ipad");
  EXPECT_EQ(c.count("iphone"), 3);
  EXPECT_EQ(c.count("ipad"), 1);
  EXPECT_EQ(c.count("missing"), 0);
  EXPECT_EQ(c.total(), 4);
  EXPECT_EQ(c.distinct(), 2u);
}

TEST(Counter, MostCommonOrderAndLimit) {
  Counter c;
  c.add("a", 1);
  c.add("b", 5);
  c.add("c", 3);
  const auto top = c.most_common();
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].first, "b");
  EXPECT_EQ(top[1].first, "c");
  EXPECT_EQ(top[2].first, "a");
  EXPECT_EQ(c.most_common(1).size(), 1u);
}

TEST(Histogram, BinAssignment) {
  Histogram h{0.0, 60.0, 10.0};
  EXPECT_EQ(h.bin_count(), 6u);
  h.add(0.0);
  h.add(9.99);
  h.add(10.0);
  h.add(59.9);
  EXPECT_EQ(h.bin(0), 2);
  EXPECT_EQ(h.bin(1), 1);
  EXPECT_EQ(h.bin(5), 1);
  EXPECT_EQ(h.total(), 4);
}

TEST(Histogram, UnderOverflow) {
  Histogram h{10.0, 20.0, 5.0};
  h.add(5.0);
  h.add(25.0, 3);
  EXPECT_EQ(h.underflow(), 1);
  EXPECT_EQ(h.overflow(), 3);
  EXPECT_EQ(h.total(), 4);
}

TEST(Histogram, ModeBin) {
  Histogram h{0.0, 30.0, 10.0};
  EXPECT_FALSE(h.mode_bin().has_value());
  h.add(5.0);
  h.add(15.0, 5);
  h.add(25.0, 2);
  ASSERT_TRUE(h.mode_bin().has_value());
  EXPECT_EQ(*h.mode_bin(), 1u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 10.0);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram(1.0, 1.0, 0.1), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0.0), std::invalid_argument);
}

TEST(EmpiricalCdf, FractionAtValues) {
  EmpiricalCdf cdf;
  cdf.add_all({5, 10, 15, 60});
  EXPECT_DOUBLE_EQ(cdf.at(4), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(5), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(59), 0.75);
  EXPECT_DOUBLE_EQ(cdf.at(60), 1.0);
  EXPECT_EQ(cdf.size(), 4u);
}

TEST(EmpiricalCdf, Percentiles) {
  EmpiricalCdf cdf;
  for (int i = 1; i <= 100; ++i) cdf.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(cdf.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(cdf.percentile(90), 90.0);
  EXPECT_DOUBLE_EQ(cdf.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.percentile(100), 100.0);
}

TEST(EmpiricalCdf, EmptyBehaviour) {
  EmpiricalCdf cdf;
  EXPECT_DOUBLE_EQ(cdf.at(10), 0.0);
  EXPECT_THROW((void)cdf.percentile(50), std::logic_error);
}

TEST(EmpiricalCdf, AddAfterQueryResorts) {
  EmpiricalCdf cdf;
  cdf.add(10);
  EXPECT_DOUBLE_EQ(cdf.at(10), 1.0);
  cdf.add(5);
  EXPECT_DOUBLE_EQ(cdf.at(5), 0.5);
}

TEST(EmpiricalCdf, Evaluate) {
  EmpiricalCdf cdf;
  cdf.add_all({1, 2, 3, 4});
  EXPECT_EQ(cdf.evaluate({0, 2, 5}), (std::vector<double>{0.0, 0.5, 1.0}));
}

TEST(Moments, MeanAndStddev) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({2, 4, 6}), 4.0);
  EXPECT_DOUBLE_EQ(stddev({5}), 0.0);
  EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.0, 1e-9);
}

TEST(Correlation, PerfectAndUndefined) {
  const std::vector<double> xs{1, 2, 3, 4};
  ASSERT_TRUE(correlation(xs, {2, 4, 6, 8}).has_value());
  EXPECT_NEAR(*correlation(xs, {2, 4, 6, 8}), 1.0, 1e-9);
  EXPECT_NEAR(*correlation(xs, {8, 6, 4, 2}), -1.0, 1e-9);
  EXPECT_FALSE(correlation(xs, {1, 1, 1, 1}).has_value());  // zero variance
  EXPECT_FALSE(correlation(xs, {1, 2}).has_value());        // size mismatch
}

}  // namespace
}  // namespace rdns::util
