/// Tests for util/strings.hpp — with particular attention to alpha_terms,
/// the paper's Section 5.1 term-extraction primitive.

#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace rdns::util {
namespace {

TEST(ToLower, AsciiOnly) {
  EXPECT_EQ(to_lower("BrIaN's-iPhone"), "brian's-iphone");
  EXPECT_EQ(to_lower(""), "");
}

TEST(IEquals, CaseInsensitive) {
  EXPECT_TRUE(iequals("ABC", "abc"));
  EXPECT_TRUE(iequals("", ""));
  EXPECT_FALSE(iequals("abc", "abd"));
  EXPECT_FALSE(iequals("abc", "ab"));
}

TEST(Split, KeepsEmptyFields) {
  EXPECT_EQ(split("a..b", '.'), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split("", '.'), (std::vector<std::string>{""}));
  EXPECT_EQ(split("x", '.'), (std::vector<std::string>{"x"}));
  EXPECT_EQ(split(".a.", '.'), (std::vector<std::string>{"", "a", ""}));
}

TEST(SplitNonempty, DropsEmpties) {
  EXPECT_EQ(split_nonempty("a..b.", '.'), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(split_nonempty("...", '.').empty());
}

TEST(Join, Inverse) {
  EXPECT_EQ(join({"a", "b", "c"}, "."), "a.b.c");
  EXPECT_EQ(join({}, "."), "");
  EXPECT_EQ(join({"solo"}, ", "), "solo");
}

TEST(Trim, Whitespace) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\r\n"), "");
  EXPECT_EQ(trim("a b"), "a b");
}

TEST(Affixes, StartsEndsContains) {
  EXPECT_TRUE(starts_with("hostname.example.edu", "hostname"));
  EXPECT_FALSE(starts_with("abc", "abcd"));
  EXPECT_TRUE(ends_with("hostname.example.edu", ".edu"));
  EXPECT_FALSE(ends_with("edu", ".edu"));
  EXPECT_TRUE(contains("brians-iphone", "iphone"));
  EXPECT_FALSE(contains("brians-iphone", "ipad"));
}

/// alpha_terms is the §5.1 extraction regex: maximal alphabetic runs,
/// lowercased.
TEST(AlphaTerms, ExtractsAlphaRuns) {
  EXPECT_EQ(alpha_terms("Brians-iPhone-12.cs.uni.edu"),
            (std::vector<std::string>{"brians", "iphone", "cs", "uni", "edu"}));
  EXPECT_EQ(alpha_terms("host-10-1-2-3"), (std::vector<std::string>{"host"}));
  EXPECT_TRUE(alpha_terms("12345").empty());
  EXPECT_TRUE(alpha_terms("").empty());
  EXPECT_EQ(alpha_terms("a1b2c3"), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(ReplaceAll, AllOccurrences) {
  EXPECT_EQ(replace_all("a-b-c", "-", "_"), "a_b_c");
  EXPECT_EQ(replace_all("aaa", "aa", "b"), "ba");
  EXPECT_EQ(replace_all("x", "", "y"), "x");
}

TEST(Format, PrintfStyle) {
  EXPECT_EQ(format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(format("%.2f", 3.14159), "3.14");
}

TEST(WithCommas, Grouping) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(1234567), "1,234,567");
  EXPECT_EQ(with_commas(-1234567), "-1,234,567");
}

}  // namespace
}  // namespace rdns::util
