/// Tests for the deterministic parallelism primitives: chunk scheduling,
/// the serial degenerate path, exception propagation, the ordered merge
/// buffer, map-reduce folding, and the Ipv4Bitset dedupe structure.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <thread>

#include "net/ip_bitset.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace rdns::util {
namespace {

TEST(ThreadPool, ChunkBoundariesCoverRangeExactly) {
  for (const unsigned size : {1u, 2u, 4u}) {
    ThreadPool pool{size};
    for (const std::uint64_t n : {0ull, 1ull, 7ull, 100ull, 1000ull}) {
      for (const std::uint64_t chunk : {1ull, 3ull, 64ull, 1000ull, 5000ull}) {
        std::mutex m;
        std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges;
        std::set<std::size_t> chunk_indices;
        pool.parallel_for_chunks(n, chunk,
                                 [&](std::size_t ci, std::uint64_t begin, std::uint64_t end) {
                                   std::lock_guard lock{m};
                                   ranges.emplace_back(begin, end);
                                   chunk_indices.insert(ci);
                                 });
        EXPECT_EQ(ranges.size(), ThreadPool::chunk_count(n, chunk));
        EXPECT_EQ(chunk_indices.size(), ranges.size());
        std::uint64_t covered = 0;
        for (const auto& [begin, end] : ranges) {
          EXPECT_LT(begin, end);
          EXPECT_LE(end, n);
          EXPECT_LE(end - begin, chunk);
          covered += end - begin;
        }
        EXPECT_EQ(covered, n) << "size=" << size << " n=" << n << " chunk=" << chunk;
      }
    }
  }
}

TEST(ThreadPool, ChunkIndexDeterminesRangeAtEveryPoolSize) {
  // The (chunk index -> [begin, end)) mapping must not depend on the pool
  // size — that is what makes per-chunk seeds reproducible.
  const std::uint64_t n = 1000, chunk = 64;
  std::map<std::size_t, std::pair<std::uint64_t, std::uint64_t>> serial;
  {
    ThreadPool pool{1};
    pool.parallel_for_chunks(n, chunk,
                             [&](std::size_t ci, std::uint64_t begin, std::uint64_t end) {
                               serial[ci] = {begin, end};
                             });
  }
  ThreadPool pool{4};
  std::mutex m;
  pool.parallel_for_chunks(n, chunk,
                           [&](std::size_t ci, std::uint64_t begin, std::uint64_t end) {
                             std::lock_guard lock{m};
                             EXPECT_EQ(serial.at(ci), (std::pair{begin, end}));
                           });
}

TEST(ThreadPool, PoolSizeOneRunsOnCallingThreadInOrder) {
  ThreadPool pool{1};
  EXPECT_EQ(pool.size(), 1u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  pool.parallel_for_chunks(100, 10, [&](std::size_t ci, std::uint64_t, std::uint64_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(ci);  // no lock needed: serial path
  });
  std::vector<std::size_t> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, PropagatesFirstExceptionAfterAllChunksRun) {
  ThreadPool pool{4};
  std::atomic<int> executed{0};
  EXPECT_THROW(
      pool.parallel_for_chunks(8, 1,
                               [&](std::size_t ci, std::uint64_t, std::uint64_t) {
                                 ++executed;
                                 if (ci == 3) throw std::runtime_error("chunk 3 failed");
                               }),
      std::runtime_error);
  // Remaining chunks still ran; the pool is reusable afterwards.
  EXPECT_EQ(executed.load(), 8);
  std::atomic<int> again{0};
  pool.parallel_for_chunks(4, 1,
                           [&](std::size_t, std::uint64_t, std::uint64_t) { ++again; });
  EXPECT_EQ(again.load(), 4);
}

TEST(ThreadPool, NestedParallelismRunsSeriallyInline) {
  ThreadPool pool{2};
  std::atomic<int> inner_total{0};
  pool.parallel_for_chunks(4, 1, [&](std::size_t, std::uint64_t, std::uint64_t) {
    pool.parallel_for_chunks(3, 1,
                             [&](std::size_t, std::uint64_t, std::uint64_t) { ++inner_total; });
  });
  EXPECT_EQ(inner_total.load(), 12);
}

TEST(ThreadPool, DefaultSizeHonoursEnvironment) {
  // setenv/getenv without a running pool: safe to toggle here.
  ASSERT_EQ(setenv("RDNS_THREADS", "3", 1), 0);
  EXPECT_EQ(ThreadPool::default_size(), 3u);
  ASSERT_EQ(setenv("RDNS_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(ThreadPool::default_size(), 1u);
  ASSERT_EQ(unsetenv("RDNS_THREADS"), 0);
  EXPECT_GE(ThreadPool::default_size(), 1u);
}

TEST(OrderedMergeBuffer, EmitsInSequenceOrderRegardlessOfArrival) {
  std::vector<int> emitted;
  OrderedMergeBuffer<int> merge{8, [&](std::size_t seq, int&& value) {
                                  EXPECT_EQ(emitted.size(), seq);
                                  emitted.push_back(value);
                                }};
  // Reverse arrival within capacity.
  for (int seq = 4; seq >= 0; --seq) merge.put(static_cast<std::size_t>(seq), seq * 10);
  EXPECT_EQ(emitted, (std::vector<int>{0, 10, 20, 30, 40}));
  EXPECT_EQ(merge.emitted(), 5u);
}

TEST(OrderedMergeBuffer, ConcurrentProducersPreserveOrder) {
  constexpr std::size_t kItems = 500;
  std::vector<std::size_t> emitted;
  OrderedMergeBuffer<std::size_t> merge{4, [&](std::size_t seq, std::size_t&& value) {
                                          EXPECT_EQ(seq, value);
                                          emitted.push_back(value);
                                        }};
  ThreadPool pool{4};
  pool.parallel_for_chunks(kItems, 1, [&](std::size_t ci, std::uint64_t, std::uint64_t) {
    merge.put(ci, std::size_t{ci});
  });
  ASSERT_EQ(emitted.size(), kItems);
  for (std::size_t i = 0; i < kItems; ++i) EXPECT_EQ(emitted[i], i);
}

TEST(MapReduceChunks, FoldsPartialsInChunkOrder) {
  ThreadPool pool{4};
  std::vector<std::size_t> fold_order;
  std::uint64_t sum = 0;
  map_reduce_chunks<std::uint64_t>(
      pool, 1000, 64,
      [](std::size_t, std::uint64_t begin, std::uint64_t end) {
        std::uint64_t partial = 0;
        for (std::uint64_t i = begin; i < end; ++i) partial += i;
        return partial;
      },
      [&](std::size_t ci, std::uint64_t&& partial) {
        fold_order.push_back(ci);
        sum += partial;
      });
  EXPECT_EQ(sum, 999ull * 1000 / 2);
  std::vector<std::size_t> expected(ThreadPool::chunk_count(1000, 64));
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(fold_order, expected);
}

TEST(Ipv4Bitset, InsertContainsCountAndMerge) {
  net::Ipv4Bitset set;
  EXPECT_EQ(set.count(), 0u);
  EXPECT_TRUE(set.insert(net::Ipv4Addr{0x0A000001u}));
  EXPECT_FALSE(set.insert(net::Ipv4Addr{0x0A000001u}));  // duplicate
  EXPECT_TRUE(set.insert(net::Ipv4Addr{0x0A010000u}));   // different /16 block
  EXPECT_TRUE(set.insert(net::Ipv4Addr{0xFFFFFFFFu}));   // top of the space
  EXPECT_EQ(set.count(), 3u);
  EXPECT_TRUE(set.contains(net::Ipv4Addr{0x0A000001u}));
  EXPECT_FALSE(set.contains(net::Ipv4Addr{0x0A000002u}));

  net::Ipv4Bitset other;
  other.insert(net::Ipv4Addr{0x0A000001u});  // overlaps
  other.insert(net::Ipv4Addr{0x0B000007u});  // new
  set.merge(other);
  EXPECT_EQ(set.count(), 4u);
  EXPECT_TRUE(set.contains(net::Ipv4Addr{0x0B000007u}));

  set.clear();
  EXPECT_EQ(set.count(), 0u);
  EXPECT_FALSE(set.contains(net::Ipv4Addr{0x0A000001u}));
}

TEST(Ipv4Bitset, MatchesReferenceSetOverDenseAndSparseInput) {
  net::Ipv4Bitset set;
  std::set<std::uint32_t> reference;
  std::uint64_t state = 42;
  for (int i = 0; i < 20000; ++i) {
    // Half dense (one /24), half scattered over the whole space.
    const std::uint32_t value = (i % 2 == 0)
                                    ? 0xC0A80000u + static_cast<std::uint32_t>(i % 256)
                                    : static_cast<std::uint32_t>(splitmix64(state));
    EXPECT_EQ(set.insert(net::Ipv4Addr{value}), reference.insert(value).second);
  }
  EXPECT_EQ(set.count(), reference.size());
  for (const auto value : reference) {
    EXPECT_TRUE(set.contains(net::Ipv4Addr{value}));
  }
}

}  // namespace
}  // namespace rdns::util
