/// Tests for util/time.hpp: civil calendar math, formatting, weekday
/// computation and the helpers the measurement pipeline depends on.

#include "util/time.hpp"

#include <gtest/gtest.h>

namespace rdns::util {
namespace {

TEST(CivilDate, EpochIsDayZero) {
  EXPECT_EQ(days_from_civil({1970, 1, 1}), 0);
  EXPECT_EQ(civil_from_days(0), (CivilDate{1970, 1, 1}));
}

TEST(CivilDate, KnownDates) {
  // Start of the paper's study period.
  EXPECT_EQ(days_from_civil({2019, 10, 1}), 18170);
  // End of the study period.
  EXPECT_EQ(days_from_civil({2021, 12, 31}), 18992);
  EXPECT_EQ(civil_from_days(18992), (CivilDate{2021, 12, 31}));
}

TEST(CivilDate, LeapYearHandling) {
  EXPECT_EQ(add_days({2020, 2, 28}, 1), (CivilDate{2020, 2, 29}));
  EXPECT_EQ(add_days({2020, 2, 29}, 1), (CivilDate{2020, 3, 1}));
  EXPECT_EQ(add_days({2021, 2, 28}, 1), (CivilDate{2021, 3, 1}));
  EXPECT_EQ(add_days({2000, 2, 28}, 1), (CivilDate{2000, 2, 29}));  // 400-year rule
  EXPECT_EQ(add_days({1900, 2, 28}, 1), (CivilDate{1900, 3, 1}));   // 100-year rule
}

/// Round-trip property over a broad sweep of days.
class CivilRoundTrip : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(CivilRoundTrip, DaysToCivilAndBack) {
  const std::int64_t day = GetParam();
  const CivilDate d = civil_from_days(day);
  EXPECT_EQ(days_from_civil(d), day);
  EXPECT_GE(d.month, 1);
  EXPECT_LE(d.month, 12);
  EXPECT_GE(d.day, 1);
  EXPECT_LE(d.day, 31);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CivilRoundTrip,
                         ::testing::Range<std::int64_t>(17000, 19500, 37));

TEST(Weekday, KnownWeekdays) {
  EXPECT_EQ(weekday_of(CivilDate{1970, 1, 1}), Weekday::Thursday);
  // Thanksgiving 2021 was Thursday 25 November.
  EXPECT_EQ(weekday_of(CivilDate{2021, 11, 25}), Weekday::Thursday);
  EXPECT_EQ(weekday_of(CivilDate{2021, 11, 29}), Weekday::Monday);  // Cyber Monday
  EXPECT_TRUE(is_weekend(weekday_of(CivilDate{2021, 11, 27})));
  EXPECT_FALSE(is_weekend(weekday_of(CivilDate{2021, 11, 26})));
}

TEST(Weekday, Names) {
  EXPECT_STREQ(to_string(Weekday::Monday), "Monday");
  EXPECT_STREQ(to_short_string(Weekday::Sunday), "Sun");
}

TEST(Thanksgiving, FourthThursdayOfNovember) {
  EXPECT_EQ(thanksgiving(2021), (CivilDate{2021, 11, 25}));
  EXPECT_EQ(thanksgiving(2020), (CivilDate{2020, 11, 26}));
  EXPECT_EQ(thanksgiving(2019), (CivilDate{2019, 11, 28}));
  EXPECT_EQ(thanksgiving(2022), (CivilDate{2022, 11, 24}));
}

TEST(SimTimeConversions, MidnightAndParts) {
  const CivilDateTime dt{CivilDate{2021, 11, 1}, 13, 45, 30};
  const SimTime t = to_sim_time(dt);
  EXPECT_EQ(to_civil_date_time(t), dt);
  EXPECT_EQ(to_civil_date(t), dt.date);
  EXPECT_EQ(seconds_into_day(t), 13 * kHour + 45 * kMinute + 30);
  EXPECT_EQ(start_of_day(t), to_sim_time(dt.date));
}

TEST(Truncate, FiveMinuteBuckets) {
  // The supplemental measurement merges on 5-minute truncated timestamps.
  EXPECT_EQ(truncate(301, 300), 300);
  EXPECT_EQ(truncate(300, 300), 300);
  EXPECT_EQ(truncate(599, 300), 300);
  EXPECT_EQ(truncate(600, 300), 600);
}

TEST(Format, DateAndDateTime) {
  EXPECT_EQ(format_date(CivilDate{2021, 3, 7}), "2021-03-07");
  const SimTime t = to_sim_time(CivilDateTime{{2020, 12, 24}, 6, 5, 4});
  EXPECT_EQ(format_date_time(t), "2020-12-24 06:05:04");
}

TEST(Parse, ValidDates) {
  EXPECT_EQ(parse_date("2021-01-31"), (CivilDate{2021, 1, 31}));
  EXPECT_EQ(parse_date_time("2021-01-31 23:59:59"),
            to_sim_time(CivilDateTime{{2021, 1, 31}, 23, 59, 59}));
}

TEST(Parse, RejectsMalformed) {
  EXPECT_THROW((void)parse_date("not-a-date"), std::invalid_argument);
  EXPECT_THROW((void)parse_date("2021-13-01"), std::invalid_argument);
  EXPECT_THROW((void)parse_date("2021-01-32"), std::invalid_argument);
  EXPECT_THROW((void)parse_date_time("2021-01-01 25:00:00"), std::invalid_argument);
  EXPECT_THROW((void)parse_date_time("2021-01-01"), std::invalid_argument);
}

TEST(DaysBetween, Directional) {
  EXPECT_EQ(days_between({2021, 1, 1}, {2021, 1, 31}), 30);
  EXPECT_EQ(days_between({2021, 1, 31}, {2021, 1, 1}), -30);
  EXPECT_EQ(days_between({2020, 1, 1}, {2021, 1, 1}), 366);  // 2020 is a leap year
}

TEST(DurationHelpers, Constants) {
  EXPECT_EQ(minutes(5), 300);
  EXPECT_EQ(hours(2), 7200);
  EXPECT_EQ(days(1), kDay);
  EXPECT_EQ(kWeek, 7 * kDay);
}

}  // namespace
}  // namespace rdns::util
