#!/usr/bin/env python3
"""Gate bench results against a committed baseline (BENCH_baseline.json).

Usage:
    check_bench_regress.py BENCH_baseline.json [--dir build]
                           [--tolerance-scale 1.0] [--summary PATH]

The baseline maps bench output files to dotted metric paths, each with the
recorded value, a direction, and a tolerance:

    {
      "schema": "rdns.bench.baseline.v1",
      "files": {
        "BENCH_serve.json": {
          "qps": {"value": 90304, "direction": "higher", "tolerance_pct": 30},
          "latency_p99_us": {"value": 1264, "direction": "lower", "tolerance_pct": 30}
        }
      }
    }

A "higher"-direction metric regresses when the current value drops more
than tolerance_pct below the baseline; a "lower" one when it rises more
than tolerance_pct above it. Improvements never fail the gate — the point
is to catch the QPS cliff or the p99 blow-up a refactor smuggles in, not
to freeze the numbers. Ratio metrics (speedups, retained-goodput
percentages) are machine-relative and carry most of the signal; absolute
QPS/latency entries get the wide tolerances shared runners need.

--tolerance-scale multiplies every tolerance (CI can loosen the gate on
known-noisy runners without editing the committed baseline). A markdown
delta table is printed, and appended to $GITHUB_STEP_SUMMARY when that
variable is set (or to --summary PATH). Exits 0 when every metric holds,
1 otherwise. Stdlib only.
"""

import argparse
import json
import os
import sys


def resolve(doc, dotted):
    """Walk a dotted path through nested dicts; None when any hop misses."""
    node = doc
    for key in dotted.split("."):
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("--dir", default=".", help="directory holding the BENCH_*.json outputs")
    parser.add_argument("--tolerance-scale", type=float, default=1.0,
                        help="multiply every baseline tolerance (loosen noisy runners)")
    parser.add_argument("--summary", default=None,
                        help="also append the markdown table to this file "
                             "(defaults to $GITHUB_STEP_SUMMARY when set)")
    args = parser.parse_args()

    with open(args.baseline, encoding="utf-8") as f:
        baseline = json.load(f)
    if baseline.get("schema") != "rdns.bench.baseline.v1":
        print(f"FAIL {args.baseline}: unknown schema {baseline.get('schema')!r}",
              file=sys.stderr)
        return 1

    rows = []       # (metric, base, current, delta_pct, bound_str, status)
    problems = []

    for filename, metrics in baseline.get("files", {}).items():
        path = os.path.join(args.dir, filename)
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as error:
            problems.append(f"{filename}: unreadable ({error})")
            for dotted in metrics:
                rows.append((f"{filename}:{dotted}", None, None, None, "", "missing"))
            continue

        for dotted, spec in metrics.items():
            label = f"{filename}:{dotted}"
            base = spec.get("value")
            direction = spec.get("direction")
            tolerance = spec.get("tolerance_pct", 30.0) * args.tolerance_scale
            if direction not in ("higher", "lower") or not isinstance(base, (int, float)):
                problems.append(f"{label}: malformed baseline entry")
                rows.append((label, base, None, None, "", "bad-entry"))
                continue
            current = resolve(doc, dotted)
            if not isinstance(current, (int, float)) or isinstance(current, bool):
                problems.append(f"{label}: metric missing from bench output")
                rows.append((label, base, None, None, "", "missing"))
                continue

            delta_pct = (current - base) / base * 100.0 if base != 0 else 0.0
            if direction == "higher":
                bound = base * (1.0 - tolerance / 100.0)
                ok = current >= bound
                bound_str = f">= {bound:g}"
            else:
                bound = base * (1.0 + tolerance / 100.0)
                ok = current <= bound
                bound_str = f"<= {bound:g}"
            status = "ok" if ok else "REGRESSED"
            if not ok:
                problems.append(
                    f"{label}: {current:g} vs baseline {base:g} "
                    f"({delta_pct:+.1f}%, allowed {bound_str})")
            rows.append((label, base, current, delta_pct, bound_str, status))

    lines = ["### Bench regression gate", "",
             "| metric | baseline | current | delta | bound | status |",
             "|---|---:|---:|---:|---:|---|"]
    for label, base, current, delta_pct, bound_str, status in rows:
        base_s = f"{base:g}" if isinstance(base, (int, float)) else "—"
        cur_s = f"{current:g}" if isinstance(current, (int, float)) else "—"
        delta_s = f"{delta_pct:+.1f}%" if isinstance(delta_pct, float) else "—"
        mark = "✅" if status == "ok" else "❌"
        lines.append(f"| `{label}` | {base_s} | {cur_s} | {delta_s} "
                     f"| {bound_str or '—'} | {mark} {status} |")
    if args.tolerance_scale != 1.0:
        lines += ["", f"_tolerances scaled ×{args.tolerance_scale:g}_"]
    table = "\n".join(lines)
    print(table)

    summary_path = args.summary or os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a", encoding="utf-8") as f:
            f.write(table + "\n\n")

    if problems:
        print(file=sys.stderr)
        for p in problems:
            print(f"FAIL bench-regress: {p}", file=sys.stderr)
        return 1
    print(f"\nOK bench-regress: {len(rows)} metric(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
