#!/usr/bin/env python3
"""Validate a BENCH_world.json document from bench_world_scale.

Usage:
    check_bench_world.py BENCH_world.json [--min-ratio 5.0]
                         [--max-rss-mb 0] [--min-rows-per-sec 0]

Checks the schema (compare block with compact/legacy sub-objects, tier
list) and the claims CI relies on:
  * the sweep CSV hash is identical across compact/legacy storage and
    across thread counts (per tier),
  * no tier materialized a user population (the lazy-build invariant),
  * peak-RSS reduction ratio of the compact representation meets
    --min-ratio (skipped when the platform reported no RSS, ratio 0),
  * with --max-rss-mb > 0, the process peak RSS stays under the ceiling,
  * with --min-rows-per-sec > 0, every tier's sweep throughput floor.

Exits 0 on success, 1 with a list of problems otherwise. Stdlib only.
"""

import argparse
import json
import sys

REP_KEYS = ("build_seconds", "build_rss_delta_bytes", "peak_rss_bytes", "rows", "csv_hash")
TIER_KEYS = ("devices", "ptr_records", "build_seconds", "build_rss_delta_bytes",
             "sweep_seconds", "rows", "rows_per_sec", "csv_hash", "csv_hash_serial",
             "lazy_population")


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("path")
    parser.add_argument("--min-ratio", type=float, default=5.0)
    parser.add_argument("--max-rss-mb", type=float, default=0.0)
    parser.add_argument("--min-rows-per-sec", type=float, default=0.0)
    args = parser.parse_args()

    with open(args.path, encoding="utf-8") as f:
        doc = json.load(f)

    problems = []

    def expect(ok, what):
        if not ok:
            problems.append(what)

    expect(doc.get("bench") == "world_scale", "bench != world_scale")
    expect(isinstance(doc.get("manifest"), dict), "missing run manifest")
    expect(isinstance(doc.get("peak_rss_bytes"), int), "missing peak_rss_bytes")

    compare = doc.get("compare")
    if not isinstance(compare, dict):
        problems.append("missing compare block")
    else:
        for rep in ("compact", "legacy"):
            block = compare.get(rep)
            if not isinstance(block, dict):
                problems.append(f"compare.{rep} missing")
                continue
            for key in REP_KEYS:
                expect(key in block, f"compare.{rep}.{key} missing")
            expect(block.get("rows", 0) > 0, f"compare.{rep} swept no rows")
        expect(compare.get("byte_identical") is True,
               "compact/legacy sweep CSV not byte-identical")
        if isinstance(compare.get("compact"), dict) and isinstance(compare.get("legacy"), dict):
            expect(compare["compact"].get("csv_hash") == compare["legacy"].get("csv_hash"),
                   "compare csv_hash mismatch despite byte_identical flag")
        ratio = compare.get("peak_ratio", 0)
        if ratio > 0:  # 0 = no RSS source on the platform; the bench said so
            expect(ratio >= args.min_ratio,
                   f"peak RSS ratio {ratio:.2f} below required {args.min_ratio}")

    tiers = doc.get("tiers")
    if not isinstance(tiers, list) or not tiers:
        problems.append("missing or empty tiers list")
    else:
        for i, tier in enumerate(tiers):
            for key in TIER_KEYS:
                expect(key in tier, f"tiers[{i}].{key} missing")
            expect(tier.get("rows", 0) > 0, f"tiers[{i}] swept no rows")
            expect(tier.get("rows") == tier.get("ptr_records"),
                   f"tiers[{i}] rows != published PTR records")
            expect(tier.get("csv_hash") == tier.get("csv_hash_serial"),
                   f"tiers[{i}] CSV differs between serial and threaded sweeps")
            expect(tier.get("lazy_population") is True,
                   f"tiers[{i}] materialized a user population")
            if args.min_rows_per_sec > 0:
                expect(tier.get("rows_per_sec", 0) >= args.min_rows_per_sec,
                       f"tiers[{i}] rows/s {tier.get('rows_per_sec')} below floor")

    if args.max_rss_mb > 0 and doc.get("peak_rss_bytes", 0) > 0:
        peak_mb = doc["peak_rss_bytes"] / (1024 * 1024)
        expect(peak_mb <= args.max_rss_mb,
               f"peak RSS {peak_mb:.1f} MiB over the {args.max_rss_mb:.0f} MiB ceiling")

    if problems:
        for p in problems:
            print(f"FAIL {args.path}: {p}", file=sys.stderr)
        return 1
    print(f"OK {args.path}: compare ratio "
          f"{doc.get('compare', {}).get('peak_ratio', 0):.2f}x, "
          f"{len(doc.get('tiers', []))} tier(s) validated")
    return 0


if __name__ == "__main__":
    sys.exit(main())
