#!/usr/bin/env python3
"""Validate an rdns.observability.v1 metrics/trace snapshot or an
rdns.events.v1 event journal.

Usage:
    check_metrics_schema.py SNAPSHOT.json [--require-subsystems dns,dhcp,...]
                            [--require-manifest]
    check_metrics_schema.py JOURNAL.jsonl --journal
    check_metrics_schema.py STREAM.jsonl --snapshots
    check_metrics_schema.py METRICS.prom --exposition
    check_metrics_schema.py FLIGHT.jsonl --flight
    check_metrics_schema.py REPORT.json --report

Checks structural invariants that the C++ emitters promise:
  * top-level keys: schema, generated_unix, counters, gauges, histograms, spans
  * counters are non-negative integers, gauges are finite numbers
  * histogram buckets have strictly increasing finite `le` bounds followed by
    a final "+Inf" overflow bucket, and the bucket counts sum to `count`
  * percentiles are ordered (p50 <= p90 <= p99) whenever the histogram is
    non-empty
  * the span tree (if present) carries name/count/wall_ms/cpu_ms/children at
    every node

With --require-subsystems, each named prefix must own at least one counter
and at least one histogram — this is how CI asserts the sweep pipeline's
instrumentation coverage (dns, dhcp, thread_pool, sweep).

With --journal, the input is an rdns.events.v1 JSONL journal instead:
every line must be an object with a non-negative integer `t` (non-decreasing
across the stream) and a known `type`; line 1 must be the manifest header
carrying tool/version/seed and the matching events_schema.

With --require-manifest, the snapshot must embed a `manifest` object
(run provenance); a present manifest is validated either way.

With --snapshots, the input is a JSONL stream of observability snapshots
(what `rdns_tool serve --metrics-interval N` appends): every line must be
a full rdns.observability.v1 document and `generated_unix` must be
non-decreasing across the stream.

With --exposition, the input is a Prometheus text exposition (0.0.4) as
served by the /metrics admin endpoint: every sample line's metric name
must be covered by a preceding `# TYPE` declaration, names and label
syntax must be well-formed, and every value must parse as a finite float
(or +Inf in histogram `le` labels).

With --flight, the input is an rdns.flight.v1 flight-recorder dump:
a sequence of segments, each a header line (schema, segment index,
event/drop accounting) followed by its event lines; segment indices
strictly increase from 1, event `seq` numbers strictly increase within a
segment, every `kind` is a known slug, and all counters are non-negative
integers.

With --report, the input is an rdns.report.v1 unified run report
(`rdns_tool report`): schema + audit block with integer tallies,
retry-chain statistics, sweep-progress and flight summaries, and a
recursively valid `phases` span tree.

Exits 0 on success, 1 with a list of problems otherwise. Stdlib only.
"""

import argparse
import json
import math
import re
import sys

SCHEMA = "rdns.observability.v1"
EVENTS_SCHEMA = "rdns.events.v1"
TOP_KEYS = {"schema", "generated_unix", "counters", "gauges", "histograms", "spans"}

EVENT_TYPES = {
    "manifest",
    "dhcp.discover", "dhcp.offer", "dhcp.ack", "dhcp.nak", "dhcp.release", "dhcp.expire",
    "ddns.ptr_add", "ddns.ptr_remove",
    "dns.lookup", "dns.retry",
    "campaign.group_open", "campaign.probe", "campaign.backoff", "campaign.rdns",
    "campaign.recheck", "campaign.group_close",
    "sweep.org", "sweep.pass", "sweep.shard", "sweep.shard_degraded", "sweep.checkpoint",
    "sweep.progress",
    "fault.inject",
    "serve.start", "serve.stop", "serve.slowlog", "serve.drain", "serve.reload",
}

FLIGHT_SCHEMA = "rdns.flight.v1"
REPORT_SCHEMA = "rdns.report.v1"

# Kind slugs frozen by util::flight (append-only, mirrors Kind in flight.hpp).
FLIGHT_KINDS = {
    "query.issue", "query.done", "query.retry", "query.backoff", "query.timeout",
    "fault.hit",
    "shard.start", "shard.finish", "shard.degrade",
    "probe.sent", "campaign.backoff",
    "rrl.drop", "rrl.slip", "shed.level",
}

# dns.retry reasons frozen by the resolver's retryable set.
RETRY_REASONS = {"timeout", "tc", "refused"}


def _uint(event, key):
    value = event.get(key)
    if isinstance(value, int) and not isinstance(value, bool) and value >= 0:
        return value
    return None


def check_event_fields(event, i, problems):
    """Per-type field contracts for the fault/resilience events."""
    etype = event.get("type")
    if etype == "fault.inject":
        site = event.get("site")
        if not isinstance(site, str) or not site:
            problems.add(f"line {i}: fault.inject must carry a non-empty site")
    elif etype == "dns.retry":
        n = _uint(event, "n")
        base = _uint(event, "base_s")
        delay = _uint(event, "delay_s")
        if n is None or n < 1:
            problems.add(f"line {i}: dns.retry n must be an integer >= 1")
        if base is None or base < 1:
            problems.add(f"line {i}: dns.retry base_s must be an integer >= 1")
        elif delay is None or not base <= delay < 2 * base:
            problems.add(f"line {i}: dns.retry delay_s must satisfy base_s <= delay_s < 2*base_s")
        if "reason" in event and event.get("reason") not in RETRY_REASONS:
            problems.add(f"line {i}: dns.retry reason must be one of "
                         f"{sorted(RETRY_REASONS)}, got {event.get('reason')!r}")
    elif etype == "campaign.recheck":
        if _uint(event, "fails") is None or _uint(event, "fails") < 1:
            problems.add(f"line {i}: campaign.recheck fails must be an integer >= 1")
    elif etype == "sweep.shard_degraded":
        for key in ("first", "last"):
            if not isinstance(event.get(key), str) or not event.get(key):
                problems.add(f"line {i}: sweep.shard_degraded must carry {key!r}")
    elif etype == "sweep.checkpoint":
        done = _uint(event, "shards_done")
        total = _uint(event, "shards_total")
        if done is None or total is None or done > total:
            problems.add(f"line {i}: sweep.checkpoint needs shards_done <= shards_total")
        if _uint(event, "csv_bytes") is None:
            problems.add(f"line {i}: sweep.checkpoint csv_bytes must be a non-negative integer")
    elif etype == "sweep.shard":
        # Budget fields are optional (fault-free sweeps omit them) but must
        # come as a pair when present.
        if ("attempt" in event) != ("exhausted" in event):
            problems.add(f"line {i}: sweep.shard attempt/exhausted must appear together")
        if "attempt" in event and _uint(event, "attempt") not in (0, 1):
            problems.add(f"line {i}: sweep.shard attempt must be 0 or 1")
    elif etype == "sweep.progress":
        done = _uint(event, "shards_done")
        total = _uint(event, "shards_total")
        if done is None or total is None or done > total:
            problems.add(f"line {i}: sweep.progress needs shards_done <= shards_total")
        if _uint(event, "rows") is None:
            problems.add(f"line {i}: sweep.progress rows must be a non-negative integer")
        if not isinstance(event.get("day"), str) or not event.get("day"):
            problems.add(f"line {i}: sweep.progress must carry a non-empty day")
        for key in ("rows_per_s", "percent"):
            value = event.get(key)
            if isinstance(value, bool) or not isinstance(value, (int, float)) \
                    or not math.isfinite(value) or value < 0:
                problems.add(f"line {i}: sweep.progress {key} must be a non-negative "
                             f"finite number")
        percent = event.get("percent")
        if isinstance(percent, (int, float)) and not isinstance(percent, bool) \
                and percent > 100.0:
            problems.add(f"line {i}: sweep.progress percent must be <= 100")
    elif etype == "serve.start":
        if not isinstance(event.get("endpoint"), str) or not event.get("endpoint"):
            problems.add(f"line {i}: serve.start must carry a non-empty endpoint")
        workers = _uint(event, "workers")
        if workers is None or workers < 1:
            problems.add(f"line {i}: serve.start workers must be an integer >= 1")
    elif etype == "serve.stop":
        received = _uint(event, "datagrams_received")
        sent = _uint(event, "responses_sent")
        if received is None or sent is None or sent > received:
            problems.add(f"line {i}: serve.stop needs responses_sent <= datagrams_received")
        # The hardened serve path partitions every received datagram into
        # exactly one disposition; when the split fields are present the sum
        # must reconcile (the C++ side promises this at worker exit).
        split = ("dropped_malformed", "dropped_timeout_fault", "dropped_policy",
                 "truncated_queries", "send_failures")
        if received is not None and sent is not None and all(k in event for k in split):
            parts = [_uint(event, k) for k in split]
            if any(p is None for p in parts):
                problems.add(f"line {i}: serve.stop drop-split fields must be "
                             f"non-negative integers")
            elif sent + sum(parts) != received:
                problems.add(f"line {i}: serve.stop accounting broken: "
                             f"{sent} sent + {sum(parts)} dropped/failed != "
                             f"{received} received")
        # Overlay counters never exceed what they classify (slips are
        # enqueued responses, so they bound by sent + send failures).
        rrl_slipped = _uint(event, "rrl_slipped")
        failures = _uint(event, "send_failures")
        if rrl_slipped is not None and sent is not None and failures is not None \
                and rrl_slipped > sent + failures:
            problems.add(f"line {i}: serve.stop rrl_slipped exceeds enqueued responses")
    elif etype == "serve.drain":
        if _uint(event, "deadline_ms") is None:
            problems.add(f"line {i}: serve.drain deadline_ms must be a non-negative integer")
        if _uint(event, "drain_ms") is None:
            problems.add(f"line {i}: serve.drain drain_ms must be a non-negative integer")
    elif etype == "serve.reload":
        epoch = _uint(event, "epoch")
        if epoch is None or epoch < 1:
            problems.add(f"line {i}: serve.reload epoch must be an integer >= 1")
        if _uint(event, "build_ms") is None:
            problems.add(f"line {i}: serve.reload build_ms must be a non-negative integer")
    elif etype == "serve.slowlog":
        for key in ("qname", "client", "rcode"):
            if not isinstance(event.get(key), str) or not event.get(key):
                problems.add(f"line {i}: serve.slowlog must carry a non-empty {key!r}")
        if _uint(event, "latency_us") is None:
            problems.add(f"line {i}: serve.slowlog latency_us must be a non-negative integer")
        if _uint(event, "worker") is None:
            problems.add(f"line {i}: serve.slowlog worker must be a non-negative integer")


class Problems:
    def __init__(self):
        self.items = []

    def add(self, message):
        self.items.append(message)


def check_counters(counters, problems):
    if not isinstance(counters, dict):
        problems.add("counters: expected an object")
        return
    for name, value in counters.items():
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            problems.add(f"counter {name!r}: expected a non-negative integer, got {value!r}")


def check_gauges(gauges, problems):
    if not isinstance(gauges, dict):
        problems.add("gauges: expected an object")
        return
    for name, value in gauges.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)) or not math.isfinite(value):
            problems.add(f"gauge {name!r}: expected a finite number, got {value!r}")


def check_histogram(name, hist, problems):
    for key in ("count", "sum", "p50", "p90", "p99", "buckets"):
        if key not in hist:
            problems.add(f"histogram {name!r}: missing key {key!r}")
            return
    count = hist["count"]
    if not isinstance(count, int) or isinstance(count, bool) or count < 0:
        problems.add(f"histogram {name!r}: count must be a non-negative integer")
        return
    buckets = hist["buckets"]
    if not isinstance(buckets, list) or len(buckets) < 2:
        problems.add(f"histogram {name!r}: expected >= 2 buckets (bounds + overflow)")
        return
    total = 0
    prev_le = None
    for i, bucket in enumerate(buckets):
        if not isinstance(bucket, dict) or "le" not in bucket or "count" not in bucket:
            problems.add(f"histogram {name!r}: bucket {i} must carry le/count")
            return
        le = bucket["le"]
        last = i == len(buckets) - 1
        if last:
            if le != "+Inf":
                problems.add(f"histogram {name!r}: final bucket le must be \"+Inf\", got {le!r}")
        else:
            if isinstance(le, bool) or not isinstance(le, (int, float)) or not math.isfinite(le):
                problems.add(f"histogram {name!r}: bucket {i} le must be a finite number")
                return
            if prev_le is not None and le <= prev_le:
                problems.add(f"histogram {name!r}: bucket bounds must strictly increase "
                             f"({prev_le} then {le})")
            prev_le = le
        bcount = bucket["count"]
        if not isinstance(bcount, int) or isinstance(bcount, bool) or bcount < 0:
            problems.add(f"histogram {name!r}: bucket {i} count must be a non-negative integer")
            return
        total += bcount
    if total != count:
        problems.add(f"histogram {name!r}: bucket counts sum to {total}, count says {count}")
    if count > 0 and not (hist["p50"] <= hist["p90"] <= hist["p99"]):
        problems.add(f"histogram {name!r}: percentiles are not ordered "
                     f"(p50={hist['p50']}, p90={hist['p90']}, p99={hist['p99']})")


def check_span(span, path, problems):
    if not isinstance(span, dict):
        problems.add(f"span {path}: expected an object")
        return
    for key in ("name", "count", "wall_ms", "cpu_ms", "children"):
        if key not in span:
            problems.add(f"span {path}: missing key {key!r}")
            return
    if not isinstance(span["name"], str):
        problems.add(f"span {path}: name must be a string")
    if not isinstance(span["count"], int) or span["count"] < 0:
        problems.add(f"span {path}: count must be a non-negative integer")
    for key in ("wall_ms", "cpu_ms"):
        v = span[key]
        if isinstance(v, bool) or not isinstance(v, (int, float)) or not math.isfinite(v) or v < 0:
            problems.add(f"span {path}: {key} must be a non-negative finite number")
    children = span["children"]
    if not isinstance(children, list):
        problems.add(f"span {path}: children must be a list")
        return
    for child in children:
        name = child.get("name", "?") if isinstance(child, dict) else "?"
        check_span(child, f"{path}/{name}", problems)


def check_subsystems(doc, required, problems):
    counters = doc.get("counters", {})
    histograms = doc.get("histograms", {})
    for prefix in required:
        dot = prefix + "."
        if not any(n.startswith(dot) for n in counters):
            problems.add(f"subsystem {prefix!r}: no counter named {dot}*")
        if not any(n.startswith(dot) for n in histograms):
            problems.add(f"subsystem {prefix!r}: no histogram named {dot}*")


def check_manifest(manifest, where, problems):
    if not isinstance(manifest, dict):
        problems.add(f"{where}: manifest must be an object")
        return
    for key in ("tool", "version", "seed"):
        if key not in manifest:
            problems.add(f"{where}: manifest missing key {key!r}")
    if not isinstance(manifest.get("tool", ""), str):
        problems.add(f"{where}: manifest tool must be a string")
    seed = manifest.get("seed", 0)
    if not isinstance(seed, int) or isinstance(seed, bool) or seed < 0:
        problems.add(f"{where}: manifest seed must be a non-negative integer")


def check_journal(path, problems):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    except OSError as err:
        problems.add(f"cannot read {path}: {err}")
        return 0
    if not lines:
        problems.add("journal is empty")
        return 0
    events = 0
    last_t = -1
    for i, line in enumerate(lines, start=1):
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as err:
            problems.add(f"line {i}: not valid JSON ({err})")
            continue
        if not isinstance(event, dict):
            problems.add(f"line {i}: event must be an object")
            continue
        events += 1
        t = event.get("t")
        if not isinstance(t, int) or isinstance(t, bool) or t < 0:
            problems.add(f"line {i}: t must be a non-negative integer")
        elif t < last_t:
            problems.add(f"line {i}: t={t} decreases (previous {last_t})")
        else:
            last_t = t
        etype = event.get("type")
        if etype not in EVENT_TYPES:
            problems.add(f"line {i}: unknown event type {etype!r}")
        else:
            check_event_fields(event, i, problems)
        if i == 1:
            if etype != "manifest":
                problems.add("line 1: first event must be the manifest header")
            else:
                check_manifest(event, "line 1", problems)
                if event.get("events_schema") != EVENTS_SCHEMA:
                    problems.add(f"line 1: events_schema must be {EVENTS_SCHEMA!r}, "
                                 f"got {event.get('events_schema')!r}")
    return events


def check_snapshot_doc(doc, problems, where="", require_manifest=False, required=()):
    """Validate one rdns.observability.v1 document (dict already parsed)."""
    prefix = f"{where}: " if where else ""
    if not isinstance(doc, dict):
        problems.add(f"{prefix}snapshot root must be an object")
        return
    for key in TOP_KEYS:
        if key not in doc:
            problems.add(f"{prefix}top level: missing key {key!r}")
    if doc.get("schema") != SCHEMA:
        problems.add(f"{prefix}schema: expected {SCHEMA!r}, got {doc.get('schema')!r}")
    gen = doc.get("generated_unix")
    if not isinstance(gen, int) or isinstance(gen, bool) or gen < 0:
        problems.add(f"{prefix}generated_unix: expected a non-negative integer")

    check_counters(doc.get("counters", {}), problems)
    check_gauges(doc.get("gauges", {}), problems)
    histograms = doc.get("histograms", {})
    if isinstance(histograms, dict):
        for name, hist in histograms.items():
            if isinstance(hist, dict):
                check_histogram(name, hist, problems)
            else:
                problems.add(f"{prefix}histogram {name!r}: expected an object")
    else:
        problems.add(f"{prefix}histograms: expected an object")

    spans = doc.get("spans")
    if spans is not None:
        check_span(spans, spans.get("name", "root") if isinstance(spans, dict) else "root",
                   problems)

    manifest = doc.get("manifest")
    if manifest is not None:
        check_manifest(manifest, prefix + "manifest", problems)
    elif require_manifest:
        problems.add(f"{prefix}top level: missing key 'manifest' (--require-manifest)")

    if required:
        check_subsystems(doc, required, problems)


def check_snapshot_stream(path, problems, require_manifest, required):
    """JSONL stream of snapshots (serve --metrics-interval output)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    except OSError as err:
        problems.add(f"cannot read {path}: {err}")
        return 0
    snapshots = 0
    last_gen = -1
    for i, line in enumerate(lines, start=1):
        if not line:
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as err:
            problems.add(f"line {i}: not valid JSON ({err})")
            continue
        snapshots += 1
        check_snapshot_doc(doc, problems, where=f"line {i}",
                           require_manifest=require_manifest, required=required)
        gen = doc.get("generated_unix") if isinstance(doc, dict) else None
        if isinstance(gen, int) and not isinstance(gen, bool):
            if gen < last_gen:
                problems.add(f"line {i}: generated_unix={gen} decreases (previous {last_gen})")
            else:
                last_gen = gen
    if snapshots == 0:
        problems.add("snapshot stream is empty")
    return snapshots


def check_flight(path, problems):
    """Validate an rdns.flight.v1 flight-recorder dump (one or more segments)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    except OSError as err:
        problems.add(f"cannot read {path}: {err}")
        return 0, 0
    segments = 0
    events = 0
    declared_events = 0   # header accounting for the current segment
    seen_in_segment = 0
    last_segment = 0
    last_seq = -1
    header_line = 0
    for i, line in enumerate(lines, start=1):
        if not line:
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as err:
            problems.add(f"line {i}: not valid JSON ({err})")
            continue
        if not isinstance(doc, dict):
            problems.add(f"line {i}: expected an object")
            continue
        if "schema" in doc:  # segment header
            if segments > 0 and seen_in_segment != declared_events:
                problems.add(f"line {header_line}: segment {last_segment} declared "
                             f"{declared_events} events but {seen_in_segment} followed")
            if doc.get("schema") != FLIGHT_SCHEMA:
                problems.add(f"line {i}: schema must be {FLIGHT_SCHEMA!r}, "
                             f"got {doc.get('schema')!r}")
            segment = _uint(doc, "segment")
            if segment is None or segment != last_segment + 1:
                problems.add(f"line {i}: segment index must be {last_segment + 1}, "
                             f"got {doc.get('segment')!r}")
            last_segment = segment if segment is not None else last_segment + 1
            for key in ("events", "dropped", "threads"):
                if _uint(doc, key) is None:
                    problems.add(f"line {i}: header {key} must be a non-negative integer")
            if "manifest" in doc:
                check_manifest(doc["manifest"], f"line {i}", problems)
            declared_events = _uint(doc, "events") or 0
            seen_in_segment = 0
            header_line = i
            segments += 1
            continue
        if segments == 0:
            problems.add(f"line {i}: event before the first segment header")
            continue
        events += 1
        seen_in_segment += 1
        seq = _uint(doc, "seq")
        if seq is None:
            problems.add(f"line {i}: seq must be a non-negative integer")
        elif seq <= last_seq:
            problems.add(f"line {i}: seq={seq} does not increase (previous {last_seq})")
        else:
            last_seq = seq
        kind = doc.get("kind")
        if kind not in FLIGHT_KINDS:
            problems.add(f"line {i}: unknown flight kind {kind!r}")
        for key in ("t", "a", "b"):
            if _uint(doc, key) is None:
                problems.add(f"line {i}: {key} must be a non-negative integer")
    if segments == 0:
        problems.add("flight dump has no segment header")
    elif seen_in_segment != declared_events:
        problems.add(f"line {header_line}: segment {last_segment} declared "
                     f"{declared_events} events but {seen_in_segment} followed")
    return segments, events


def _report_uints(obj, where, keys, problems):
    for key in keys:
        if _uint(obj, key) is None:
            problems.add(f"{where}: {key} must be a non-negative integer")


def check_report(path, problems):
    """Validate an rdns.report.v1 unified run report."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        problems.add(f"cannot parse {path}: {err}")
        return
    if not isinstance(doc, dict):
        problems.add("report root must be an object")
        return
    if doc.get("schema") != REPORT_SCHEMA:
        problems.add(f"schema: expected {REPORT_SCHEMA!r}, got {doc.get('schema')!r}")
    for key in ("title", "ok", "audit", "event_counts", "retry_chains",
                "sweep_progress", "flight", "errors"):
        if key not in doc:
            problems.add(f"top level: missing key {key!r}")
    if not isinstance(doc.get("ok"), bool):
        problems.add("ok must be a boolean")
    if "manifest" in doc:
        check_manifest(doc["manifest"], "manifest", problems)

    audit = doc.get("audit")
    if isinstance(audit, dict):
        for key in ("ok", "parsed"):
            if not isinstance(audit.get(key), bool):
                problems.add(f"audit: {key} must be a boolean")
        _report_uints(audit, "audit",
                      ("events", "violations", "leases_started", "leases_ended",
                       "ptr_added", "ptr_removed", "faults_injected", "dns_retries",
                       "stale_ptrs", "degraded_shards"), problems)
        samples = audit.get("violation_samples")
        if not isinstance(samples, list):
            problems.add("audit: violation_samples must be a list")
        elif isinstance(audit.get("violations"), int) and len(samples) > audit["violations"]:
            problems.add("audit: more violation_samples than violations")
        if audit.get("ok") is True and audit.get("violations") not in (0, None):
            problems.add("audit: ok=true contradicts violations > 0")
    else:
        problems.add("audit must be an object")

    counts = doc.get("event_counts")
    if isinstance(counts, dict):
        for name, value in counts.items():
            if _uint({"v": value}, "v") is None:
                problems.add(f"event_counts[{name!r}] must be a non-negative integer")
    else:
        problems.add("event_counts must be an object")

    chains = doc.get("retry_chains")
    if isinstance(chains, dict):
        _report_uints(chains, "retry_chains",
                      ("chains", "retries", "longest", "total_backoff_s"), problems)
        if isinstance(chains.get("longest"), int) and isinstance(chains.get("retries"), int):
            if chains["longest"] > chains["retries"]:
                problems.add("retry_chains: longest chain exceeds total retries")
    else:
        problems.add("retry_chains must be an object")

    progress = doc.get("sweep_progress")
    if isinstance(progress, dict):
        _report_uints(progress, "sweep_progress",
                      ("events", "rows", "shards_done", "shards_total"), problems)
        if not isinstance(progress.get("days"), list):
            problems.add("sweep_progress: days must be a list")
    else:
        problems.add("sweep_progress must be an object")

    flight = doc.get("flight")
    if isinstance(flight, dict):
        if not isinstance(flight.get("present"), bool):
            problems.add("flight: present must be a boolean")
        if flight.get("present"):
            _report_uints(flight, "flight", ("segments", "events", "dropped"), problems)
            kinds = flight.get("kinds")
            if not isinstance(kinds, dict):
                problems.add("flight: kinds must be an object")
            else:
                for kind in kinds:
                    if kind not in FLIGHT_KINDS:
                        problems.add(f"flight: unknown kind {kind!r}")
    else:
        problems.add("flight must be an object")

    phases = doc.get("phases")
    if isinstance(phases, dict):
        check_span(phases, phases.get("name", "phases"), problems)
    elif phases is not None:
        problems.add("phases must be a span object or absent")

    if not isinstance(doc.get("errors"), list):
        problems.add("errors must be a list")


# Prometheus text format: metric names and label names per the 0.0.4 spec.
_PROM_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"


def check_exposition(path, problems):
    """Lint a Prometheus text exposition (the /metrics admin endpoint)."""
    sample_re = re.compile(
        rf"^({_PROM_NAME})(?:\{{(.*)\}})?\s+(\S+)(?:\s+-?\d+)?$")
    label_re = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    except OSError as err:
        problems.add(f"cannot read {path}: {err}")
        return 0
    typed = {}      # base metric name -> declared type
    samples = 0
    for i, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                name, kind = parts[2], parts[3]
                if not re.fullmatch(_PROM_NAME, name):
                    problems.add(f"line {i}: invalid metric name {name!r} in TYPE")
                if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                    problems.add(f"line {i}: unknown metric type {kind!r}")
                if name in typed:
                    problems.add(f"line {i}: duplicate TYPE for {name!r}")
                typed[name] = kind
            continue
        match = sample_re.match(line)
        if not match:
            problems.add(f"line {i}: not a valid sample line: {line!r}")
            continue
        samples += 1
        name, labels, value = match.group(1), match.group(2), match.group(3)
        # Histogram series reuse the declared base name with a suffix.
        base = name
        for suffix in ("_bucket", "_sum", "_count", "_total"):
            if name.endswith(suffix) and name[: -len(suffix)] in typed:
                base = name[: -len(suffix)]
                break
        if base not in typed:
            problems.add(f"line {i}: sample {name!r} has no preceding # TYPE")
        if labels:
            depth = 0
            for pair in _split_labels(labels):
                if not label_re.match(pair):
                    problems.add(f"line {i}: malformed label {pair!r}")
                depth += 1
            if depth == 0:
                problems.add(f"line {i}: empty label braces")
        try:
            parsed = float(value)
        except ValueError:
            problems.add(f"line {i}: value {value!r} is not a float")
            continue
        if math.isnan(parsed):
            problems.add(f"line {i}: value is NaN")
        if math.isinf(parsed):
            problems.add(f"line {i}: value is infinite")
    if samples == 0:
        problems.add("exposition has no samples")
    return samples


def _split_labels(labels):
    """Split 'a="x",b="y,z"' on commas outside quoted values."""
    out, current, in_quotes, escaped = [], "", False, False
    for c in labels:
        if escaped:
            current += c
            escaped = False
            continue
        if c == "\\":
            current += c
            escaped = True
            continue
        if c == '"':
            in_quotes = not in_quotes
            current += c
            continue
        if c == "," and not in_quotes:
            if current:
                out.append(current)
            current = ""
            continue
        current += c
    if current:
        out.append(current)
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("snapshot", help="path to a --metrics-out JSON file")
    parser.add_argument("--require-subsystems", default="",
                        help="comma-separated metric-name prefixes that must each "
                             "own a counter and a histogram")
    parser.add_argument("--journal", action="store_true",
                        help="treat the input as an rdns.events.v1 JSONL journal")
    parser.add_argument("--snapshots", action="store_true",
                        help="treat the input as a JSONL stream of snapshots "
                             "(serve --metrics-interval output)")
    parser.add_argument("--exposition", action="store_true",
                        help="treat the input as Prometheus text exposition "
                             "(the /metrics admin endpoint)")
    parser.add_argument("--flight", action="store_true",
                        help="treat the input as an rdns.flight.v1 flight-recorder dump")
    parser.add_argument("--report", action="store_true",
                        help="treat the input as an rdns.report.v1 unified run report")
    parser.add_argument("--require-manifest", action="store_true",
                        help="the snapshot must embed a manifest (run provenance)")
    args = parser.parse_args()

    if sum((args.journal, args.snapshots, args.exposition, args.flight, args.report)) > 1:
        parser.error("--journal, --snapshots, --exposition, --flight and --report "
                     "are mutually exclusive")

    problems = Problems()
    required = tuple(s for s in args.require_subsystems.split(",") if s)
    if args.journal:
        events = check_journal(args.snapshot, problems)
        if problems.items:
            for item in problems.items:
                print(f"FAIL: {item}", file=sys.stderr)
            return 1
        print(f"OK: {args.snapshot}: {events} events, schema {EVENTS_SCHEMA}")
        return 0
    if args.snapshots:
        snapshots = check_snapshot_stream(args.snapshot, problems,
                                          args.require_manifest, required)
        if problems.items:
            for item in problems.items:
                print(f"FAIL: {item}", file=sys.stderr)
            return 1
        print(f"OK: {args.snapshot}: {snapshots} snapshots, schema {SCHEMA}")
        return 0
    if args.flight:
        segments, flight_events = check_flight(args.snapshot, problems)
        if problems.items:
            for item in problems.items:
                print(f"FAIL: {item}", file=sys.stderr)
            return 1
        print(f"OK: {args.snapshot}: {flight_events} events in {segments} segment(s), "
              f"schema {FLIGHT_SCHEMA}")
        return 0
    if args.report:
        check_report(args.snapshot, problems)
        if problems.items:
            for item in problems.items:
                print(f"FAIL: {item}", file=sys.stderr)
            return 1
        print(f"OK: {args.snapshot}: schema {REPORT_SCHEMA}")
        return 0
    if args.exposition:
        samples = check_exposition(args.snapshot, problems)
        if problems.items:
            for item in problems.items:
                print(f"FAIL: {item}", file=sys.stderr)
            return 1
        print(f"OK: {args.snapshot}: {samples} samples, Prometheus text 0.0.4")
        return 0
    try:
        with open(args.snapshot, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"FAIL: cannot parse {args.snapshot}: {err}", file=sys.stderr)
        return 1

    if not isinstance(doc, dict):
        print("FAIL: snapshot root must be an object", file=sys.stderr)
        return 1
    check_snapshot_doc(doc, problems, require_manifest=args.require_manifest,
                       required=required)

    if problems.items:
        for item in problems.items:
            print(f"FAIL: {item}", file=sys.stderr)
        return 1
    n_series = (len(doc.get("counters", {})) + len(doc.get("gauges", {})) +
                len(doc.get("histograms", {})))
    print(f"OK: {args.snapshot}: {n_series} series, schema {SCHEMA}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
