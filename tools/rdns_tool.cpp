/// \file rdns_tool.cpp
/// The command-line face of the library — zdns/massdns-style tooling for
/// the paper's pipeline. Subcommands:
///
///   sweep     simulate a synthetic Internet and record daily full-space
///             PTR sweeps as (date,ip,ptr) CSV — a stand-in for downloading
///             OpenINTEL/Rapid7 data
///   analyze   run the §4/§5 identification pipeline over a sweep CSV and
///             emit a markdown report
///   audit     audit a reverse zone FILE (dig AXFR / IPAM export) for
///             privacy leaks
///   campaign  run the §6 supplemental measurement against the paper world
///             and print the Table 3/4/5 summaries
///   track     follow a given name through a campaign (the §7.1 case study)
///   serve     host a frozen world's reverse zones on a real UDP port
///   top       live terminal monitor polling a serve admin endpoint
///
/// Every subcommand prints usage with --help.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <deque>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "core/journal_audit.hpp"
#include "core/mitigation.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "core/run_report.hpp"
#include "core/timing.hpp"
#include "core/tracking.hpp"
#include "dns/admin.hpp"
#include "dns/answer_cache.hpp"
#include "dns/tcp_server.hpp"
#include "dns/udp_server.hpp"
#include "dns/udp_transport.hpp"
#include "dns/zonefile.hpp"
#include "net/admin_http.hpp"
#include "net/arpa.hpp"
#include "scan/campaign.hpp"
#include "scan/checkpoint.hpp"
#include "scan/csv_replay.hpp"
#include "scan/progress.hpp"
#include "util/ascii_chart.hpp"
#include "util/cli.hpp"
#include "util/faults.hpp"
#include "util/flight.hpp"
#include "util/journal.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace {

using namespace rdns;

/// Options every subcommand shares, declared once: `--threads N` (0 = auto:
/// RDNS_THREADS env override, else hardware concurrency) plus the
/// observability surface (`--metrics-out FILE.json`, `--trace`). The
/// metrics/trace flags are read ahead of dispatch in main() so collection
/// is live before any subcommand work starts; they are declared here so
/// parse() accepts them and --help documents them.
util::CliParser& add_common_options(util::CliParser& cli) {
  return cli.option("threads", "worker threads (0 = auto: RDNS_THREADS or hardware)", "0")
      .option("metrics-out", "write a metrics + span-tree JSON snapshot to this path",
              std::nullopt)
      .option("journal-out", "append the rdns.events.v1 event journal to this path (JSONL)",
              std::nullopt)
      .option("faults", "chaos profile to arm (flag beats RDNS_FAULTS; default none)",
              std::nullopt)
      .option("flight-out",
              "arm the flight recorder; dump rdns.flight.v1 JSONL here (also on SIGUSR2)",
              std::nullopt)
      .flag("trace", "print a phase-timing summary to stderr at exit")
      .flag("verbose", "log at info level (flag beats RDNS_LOG_LEVEL)")
      .flag("quiet", "log errors only (beats --verbose)");
}

void apply_common_options(const util::CliParser& cli) {
  const int threads = cli.get_int("threads");
  if (threads < 0) throw util::CliError{"--threads must be >= 0"};
  util::ThreadPool::set_global_size(static_cast<unsigned>(threads));
  util::set_log_level(util::resolve_log_level(cli.get_flag("verbose"), cli.get_flag("quiet"),
                                              std::getenv("RDNS_LOG_LEVEL")));
  std::string faults_name = "none";
  if (const auto opt = cli.get_optional("faults")) {
    faults_name = *opt;
  } else if (const char* env = std::getenv("RDNS_FAULTS")) {
    faults_name = env;
  }
  const util::faults::Profile* profile = util::faults::find_profile(faults_name);
  if (profile == nullptr) {
    throw util::CliError{"unknown chaos profile \"" + faults_name +
                         "\" (known: " + util::faults::profile_names() + ")"};
  }
  util::faults::Injector::global().configure(*profile);
  if (const auto path = cli.get_optional("journal-out")) {
    if (!util::journal::Journal::global().open(*path)) {
      throw util::CliError{"cannot write journal to " + *path};
    }
  }
  if (const auto path = cli.get_optional("flight-out")) {
    auto& recorder = util::flight::FlightRecorder::global();
    if (!recorder.set_dump_path(*path)) {
      throw util::CliError{"cannot write flight dump to " + *path};
    }
    recorder.arm();
  }
}

/// Record run provenance once the world (if any) is built: the manifest
/// heads the journal and is embedded in metrics snapshots.
void record_run_manifest(const std::string& tool, std::uint64_t seed,
                         const sim::World* world) {
  util::journal::RunManifest manifest;
  manifest.tool = tool;
  manifest.version = util::journal::version_string();
  manifest.seed = seed;
  manifest.world_digest = world != nullptr ? world->config_digest() : 0;
  manifest.faults = util::faults::Injector::global().profile_name();
  manifest.threads = util::ThreadPool::global().size();
  util::journal::Journal::global().set_manifest(manifest);
}

/// SIGUSR1 asks for a log-level cycle, SIGUSR2 for a flight-recorder dump
/// segment. sig_atomic_t because they are written from signal handlers;
/// shared by the serve loop (which polls inline) and SignalWatcher (which
/// polls on a helper thread for the batch subcommands).
volatile std::sig_atomic_t g_cycle_log_request = 0;
volatile std::sig_atomic_t g_flight_dump_request = 0;

void handle_cycle_log_signal(int) { g_cycle_log_request = 1; }
void handle_flight_dump_signal(int) { g_flight_dump_request = 1; }

/// Apply any pending SIGUSR1/SIGUSR2 request. Runs outside signal context.
void poll_operator_signals(const char* tool) {
  if (g_cycle_log_request != 0) {
    g_cycle_log_request = 0;
    const util::LogLevel next = util::cycle_log_level(util::log_level());
    util::set_log_level(next);
    // Always visible regardless of the (possibly raised) level: the whole
    // point of the SIGUSR1 cycle is to confirm where the knob landed.
    std::fprintf(stderr, "%s: log level now %s (SIGUSR1)\n", tool, util::to_string(next));
  }
  if (g_flight_dump_request != 0) {
    g_flight_dump_request = 0;
    auto& recorder = util::flight::FlightRecorder::global();
    std::string error;
    if (recorder.dump_now(&error)) {
      std::fprintf(stderr, "%s: flight segment appended to %s (SIGUSR2)\n", tool,
                   recorder.dump_path().c_str());
    } else {
      std::fprintf(stderr, "%s: flight dump failed: %s (SIGUSR2)\n", tool, error.c_str());
    }
  }
}

/// Propagates the serve plane's operator signals to the batch subcommands
/// (sweep, campaign, track): a helper thread polls the handler flags every
/// 100 ms for the lifetime of the subcommand, so a multi-hour sweep can
/// have its log level cycled (SIGUSR1) or its flight recorder drained
/// (SIGUSR2) without stopping.
class SignalWatcher {
 public:
  explicit SignalWatcher(std::string tool) : tool_(std::move(tool)) {
    std::signal(SIGUSR1, handle_cycle_log_signal);
    std::signal(SIGUSR2, handle_flight_dump_signal);
    thread_ = std::thread([this] { run(); });
  }
  ~SignalWatcher() {
    stop_.store(true, std::memory_order_relaxed);
    thread_.join();
    std::signal(SIGUSR1, SIG_DFL);
    std::signal(SIGUSR2, SIG_DFL);
  }
  SignalWatcher(const SignalWatcher&) = delete;
  SignalWatcher& operator=(const SignalWatcher&) = delete;

 private:
  void run() {
    while (!stop_.load(std::memory_order_relaxed)) {
      poll_operator_signals(tool_.c_str());
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    poll_operator_signals(tool_.c_str());  // apply a request that raced shutdown
  }

  std::string tool_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

/// Wire-mode sweep loop with optional checkpoint/resume. Factored out of
/// cmd_sweep so the bulk path stays the simple SweepDriver call. When
/// `make_transport` is set, every shard resolves through it (UDP mode)
/// instead of the in-process frozen view. `progress_tty`/`admin_port` arm
/// the live progress plane (scan/progress.hpp).
int run_wire_sweep(sim::World& world, const util::CivilDate& from, const util::CivilDate& to,
                   const std::string& output, const std::optional<std::string>& checkpoint_path,
                   bool resume, long fail_after_shards, bool progress_tty,
                   std::optional<int> admin_port,
                   std::function<std::unique_ptr<dns::Transport>()> make_transport = {}) {
  constexpr int kHourOfDay = 14;

  scan::SweepCheckpointConfig ckcfg;
  if (const auto manifest = util::journal::Journal::global().manifest()) {
    ckcfg.manifest = *manifest;
  }
  ckcfg.mode = "wire";
  ckcfg.from = util::format_date(from);
  ckcfg.to = util::format_date(to);
  ckcfg.every_days = 1;
  ckcfg.hour = kHourOfDay;

  scan::SweepProgress done;  // committed prefix of a previous run (zero = fresh)
  if (resume) {
    std::string error;
    const auto loaded = scan::load_checkpoint(*checkpoint_path, &error);
    if (!loaded) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 2;
    }
    std::string why;
    if (!scan::checkpoints_compatible(loaded->config, ckcfg, &why)) {
      std::fprintf(stderr, "error: checkpoint %s is from a different run (%s differs)\n",
                   checkpoint_path->c_str(), why.c_str());
      return 2;
    }
    done = loaded->progress;
    // Roll the CSV back to the committed prefix: bytes past the last
    // checkpoint were written but never promised.
    std::error_code ec;
    std::filesystem::resize_file(output, done.csv_bytes, ec);
    if (ec) {
      std::fprintf(stderr, "error: cannot truncate %s to %llu bytes: %s\n", output.c_str(),
                   static_cast<unsigned long long>(done.csv_bytes), ec.message().c_str());
      return 2;
    }
  }

  std::fstream out;
  if (resume) {
    out.open(output, std::ios::in | std::ios::out);
    if (out) out.seekp(static_cast<std::streamoff>(done.csv_bytes));
  } else {
    out.open(output, std::ios::out | std::ios::trunc);
  }
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", output.c_str());
    return 2;
  }

  scan::CsvSnapshotSink sink{out};

  // The progress plane is observe-only (the CSV stays byte-identical when
  // armed); it lives across the whole day loop so rows/s rates span the run.
  std::optional<scan::SweepProgressPlane> plane;
  net::AdminHttpServer admin;
  if (progress_tty || admin_port) {
    scan::SweepProgressPlane::Options popt;
    popt.tty_status = progress_tty;
    plane.emplace(popt);
    if (admin_port) {
      plane->install_http_routes(admin);
      std::string error;
      const net::UdpEndpoint admin_endpoint{0x7f000001u,
                                            static_cast<std::uint16_t>(*admin_port)};
      if (!admin.start(admin_endpoint, &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 2;
      }
      // Same parseable banner shape as `rdns_tool serve` — the e2e harness
      // and `rdns_tool top` read the port from this line.
      std::printf("admin on %s\n", admin.endpoint().to_string().c_str());
      std::fflush(stdout);
    }
    plane->start();
  }

  std::uint64_t total_rows = done.rows;
  std::uint64_t sweeps = 0;
  std::uint64_t day_ordinal = 0;
  long shards_committed_here = 0;  // by THIS process, drives --fail-after-shards
  for (util::CivilDate date = from; !(to < date);
       date = util::add_days(date, 1), ++day_ordinal) {
    if (resume) {
      if (day_ordinal < done.day_ordinal) continue;
      if (day_ordinal == done.day_ordinal && done.day_complete) continue;
    }
    const util::SimTime at = util::to_sim_time(date) + kHourOfDay * util::kHour;
    if (at < world.now()) continue;
    world.run_until(at);

    scan::WireSweepOptions options;
    options.make_transport = make_transport;
    options.progress = plane ? &*plane : nullptr;
    if (resume && day_ordinal == done.day_ordinal && !done.day_complete) {
      options.skip_shards = static_cast<std::size_t>(done.shards_done);
    }
    if (checkpoint_path) {
      options.on_shard_done = [&](std::size_t shards_done, std::size_t shards_total,
                                  std::uint64_t rows_so_far) {
        ++shards_committed_here;
        const bool forced =
            fail_after_shards > 0 && shards_committed_here >= fail_after_shards;
        // Every 16 shards plus the day boundary keeps save cost negligible
        // against thousands of PTR queries per shard.
        if (!forced && shards_done % 16 != 0 && shards_done != shards_total) return;
        out.flush();  // the checkpoint may only promise bytes that are on disk
        scan::SweepCheckpoint cp;
        cp.config = ckcfg;
        cp.progress.day = util::format_date(date);
        cp.progress.day_ordinal = day_ordinal;
        cp.progress.shards_done = shards_done;
        cp.progress.shards_total = shards_total;
        cp.progress.day_complete = shards_done == shards_total;
        cp.progress.csv_bytes = static_cast<std::uint64_t>(out.tellp());
        cp.progress.rows = total_rows + rows_so_far;
        std::string error;
        if (!scan::save_checkpoint(*checkpoint_path, cp, &error)) {
          util::log_warn("sweep: " + error);
        }
        if (auto* j = util::journal::active()) {
          util::journal::Event e{"sweep.checkpoint", world.now()};
          e.str("day", cp.progress.day)
              .unum("shards_done", cp.progress.shards_done)
              .unum("shards_total", cp.progress.shards_total)
              .unum("csv_bytes", cp.progress.csv_bytes);
          j->emit(e);
        }
        if (forced) {
          // Simulated kill for the resume tests: the checkpoint is written,
          // the process dies without unwinding (as a real crash would).
          std::_Exit(3);
        }
      };
    }
    total_rows += scan::sweep_wire(world, date, sink, nullptr, nullptr, options);
    ++sweeps;
  }
  out.flush();
  admin.stop();
  if (plane) plane->stop();
  std::printf("wrote %s rows over %llu sweeps to %s%s\n",
              util::with_commas(static_cast<std::int64_t>(total_rows)).c_str(),
              static_cast<unsigned long long>(sweeps), output.c_str(),
              resume ? " (resumed)" : "");
  return 0;
}

int cmd_sweep(const std::vector<std::string>& args) {
  util::CliParser cli{"rdns_tool sweep",
                      "simulate a synthetic Internet and record daily PTR sweeps as CSV"};
  cli.option("orgs", "number of organizations", "24")
      .option("seed", "world seed", "42")
      .option("from", "first sweep date (YYYY-MM-DD)", "2021-01-02")
      .option("to", "last sweep date (YYYY-MM-DD)", "2021-02-06")
      .option("scale", "population scale factor", "0.4")
      .option("mode", "bulk (zone reads, two-instant union) or wire (per-address PTR queries)",
              "bulk")
      .option("checkpoint", "wire mode: persist resume state to this file as shards commit",
              std::nullopt)
      .option("fail-after-shards", "testing: die (exit 3) after committing N shards", "0")
      .option("transport", "wire mode: inproc (deterministic reference) or udp://host:port "
              "(a live `rdns_tool serve` instance)", "inproc")
      .option("udp-timeout", "udp transport: per-attempt reply deadline (ms)", "1000")
      .flag("tcp-fallback",
            "udp transport: retry TC=1 answers over TCP on the same port "
            "(pair with `rdns_tool serve --tcp`)")
      .option("admin-port",
              "wire mode: serve /progress.json + /metrics over HTTP on this port "
              "(0 = kernel-assigned, printed as `admin on ...`)",
              std::nullopt)
      .flag("progress", "wire mode: live TTY status line (rows/s sparkline) on stderr")
      .flag("resume", "continue from --checkpoint instead of starting over")
      .positional("output", "output CSV path", "sweeps.csv");
  add_common_options(cli);
  if (cli.handle_help(args)) return 0;
  cli.parse(args);
  apply_common_options(cli);

  const std::string mode = cli.get("mode");
  if (mode != "bulk" && mode != "wire") {
    throw util::CliError{"--mode must be bulk or wire"};
  }
  const auto checkpoint_path = cli.get_optional("checkpoint");
  const bool resume = cli.get_flag("resume");
  if ((checkpoint_path || resume) && mode != "wire") {
    throw util::CliError{"--checkpoint/--resume require --mode wire"};
  }
  if (resume && !checkpoint_path) {
    throw util::CliError{"--resume requires --checkpoint"};
  }
  const bool progress_tty = cli.get_flag("progress");
  std::optional<int> admin_port;
  if (const auto opt = cli.get_optional("admin-port")) {
    admin_port = std::atoi(opt->c_str());
    if (*admin_port < 0 || *admin_port > 65535) {
      throw util::CliError{"--admin-port must be in [0, 65535]"};
    }
  }
  if ((progress_tty || admin_port) && mode != "wire") {
    throw util::CliError{"--progress/--admin-port require --mode wire"};
  }

  std::function<std::unique_ptr<dns::Transport>()> make_transport;
  const std::string transport = cli.get("transport");
  if (transport != "inproc") {
    if (mode != "wire") throw util::CliError{"--transport requires --mode wire"};
    const auto endpoint = dns::UdpTransport::parse_uri(transport);
    if (!endpoint) {
      throw util::CliError{"--transport must be inproc or udp://a.b.c.d:port, got \"" +
                           transport + "\""};
    }
    const int timeout_ms = cli.get_int("udp-timeout");
    if (timeout_ms <= 0) throw util::CliError{"--udp-timeout must be > 0"};
    const bool tcp_fallback = cli.get_flag("tcp-fallback");
    make_transport = [endpoint, timeout_ms, tcp_fallback]() -> std::unique_ptr<dns::Transport> {
      dns::UdpTransport::Options options;
      options.server = *endpoint;
      options.timeout_ms = timeout_ms;
      if (tcp_fallback) options.tcp_port = endpoint->port;
      return std::make_unique<dns::UdpTransport>(options);
    };
  } else if (cli.get_flag("tcp-fallback")) {
    throw util::CliError{"--tcp-fallback requires --transport udp://..."};
  }

  const auto from = util::parse_date(cli.get("from"));
  const auto to = util::parse_date(cli.get("to"));
  core::WorldScale scale;
  scale.population = cli.get_double("scale");
  auto world = core::make_internet_world(static_cast<std::uint64_t>(cli.get_int("seed")),
                                         cli.get_int("orgs"), scale);
  record_run_manifest("rdns_tool.sweep", static_cast<std::uint64_t>(cli.get_int("seed")),
                      world.get());
  world->start(util::add_days(from, -1), util::add_days(to, 1));

  const SignalWatcher signals{"sweep"};
  if (mode == "wire") {
    return run_wire_sweep(*world, from, to, cli.get("output"), checkpoint_path, resume,
                          cli.get_int("fail-after-shards"), progress_tty, admin_port,
                          std::move(make_transport));
  }

  std::ofstream out{cli.get("output")};
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", cli.get("output").c_str());
    return 2;
  }
  scan::CsvSnapshotSink sink{out};
  scan::SweepDriver driver{*world, 14, 1, /*second_hour=*/21};
  const auto stats = driver.run(from, to, sink);
  std::printf("wrote %s rows over %llu sweeps to %s\n",
              util::with_commas(static_cast<std::int64_t>(stats.total_rows)).c_str(),
              static_cast<unsigned long long>(stats.sweeps), cli.get("output").c_str());
  return 0;
}

int cmd_analyze(const std::vector<std::string>& args) {
  util::CliParser cli{"rdns_tool analyze",
                      "run the identification pipeline over a (date,ip,ptr) sweep CSV"};
  cli.option("min-names", "unique given names required per suffix (paper: 50)", "20")
      .option("min-ratio", "unique-names/records ratio required (paper: 0.1)", "0.1")
      .option("min-days", "days over the 10% change threshold (paper: 7)", "5")
      .option("report", "write a markdown report to this path", std::nullopt)
      .positional("input", "sweep CSV path");
  add_common_options(cli);
  if (cli.handle_help(args)) return 0;
  cli.parse(args);
  apply_common_options(cli);
  record_run_manifest("rdns_tool.analyze", 0, nullptr);

  std::ifstream in{cli.get("input")};
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", cli.get("input").c_str());
    return 2;
  }

  core::DynamicityDetector detector;
  core::PtrCorpus corpus;
  struct Tee final : scan::SnapshotSink {
    std::vector<scan::SnapshotSink*> sinks;
    void on_row(const util::CivilDate& d, net::Ipv4Addr a, const dns::DnsName& n) override {
      for (auto* s : sinks) s->on_row(d, a, n);
    }
    void on_sweep_end(const util::CivilDate& d) override {
      for (auto* s : sinks) s->on_sweep_end(d);
    }
  } tee;
  tee.sinks = {&detector, &corpus};
  scan::ReplayStats replay;
  {
    const auto span = util::trace::Tracer::global().scope("parse");
    replay = scan::replay_csv(in, tee);
  }
  std::printf("replayed %s rows (%llu skipped) over %llu sweeps\n",
              util::with_commas(static_cast<std::int64_t>(replay.rows)).c_str(),
              static_cast<unsigned long long>(replay.skipped),
              static_cast<unsigned long long>(replay.sweeps));

  core::PipelineReport report;
  report.sweep_rows = replay.rows;
  report.sweeps = replay.sweeps;
  core::DynamicityConfig dyn;
  dyn.min_days_over = cli.get_int("min-days");
  {
    const auto span = util::trace::Tracer::global().scope("dynamicity");
    report.dynamicity = detector.analyze(dyn);
  }

  core::PtrCorpus dynamic_corpus;
  dynamic_corpus.restrict_to(report.dynamicity.dynamic_blocks());
  for (const auto& [hostname, entry] : corpus.entries()) dynamic_corpus.add_entry(entry);
  core::LeakConfig leak;
  leak.min_unique_names = static_cast<std::size_t>(cli.get_int("min-names"));
  leak.min_ratio = cli.get_double("min-ratio");
  {
    const auto span = util::trace::Tracer::global().scope("terms");
    report.leaks = core::identify_leaking_networks(dynamic_corpus, leak);
    report.cooccurrence = core::count_device_terms(dynamic_corpus, report.leaks.identified);
    report.types = core::classify_all(report.leaks.identified);
  }
  {
    const auto span = util::trace::Tracer::global().scope("names");
    report.leaks.matches_per_name = core::count_name_matches(corpus);
  }

  std::printf("dynamic /24s: %zu of %zu; identified networks: %zu\n",
              report.dynamicity.dynamic_count, report.dynamicity.total_slash24_seen,
              report.leaks.identified.size());
  for (const auto& suffix : report.leaks.identified) {
    std::printf("  %-40s %s\n", suffix.c_str(),
                core::to_string(core::classify_suffix(suffix)));
  }

  if (const auto path = cli.get_optional("report")) {
    std::ofstream report_out{*path};
    if (!report_out) {
      std::fprintf(stderr, "cannot write %s\n", path->c_str());
      return 2;
    }
    report_out << core::render_markdown_report(report);
    std::printf("report written to %s\n", path->c_str());
  }
  return 0;
}

int cmd_audit(const std::vector<std::string>& args) {
  util::CliParser cli{"rdns_tool audit",
                      "audit a reverse zone file for privacy-sensitive PTR targets"};
  cli.flag("quiet", "print counts only").positional("zonefile", "zone file path");
  add_common_options(cli);
  if (cli.handle_help(args)) return 0;
  cli.parse(args);
  apply_common_options(cli);
  record_run_manifest("rdns_tool.audit", 0, nullptr);

  std::ifstream in{cli.get("zonefile")};
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", cli.get("zonefile").c_str());
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  dns::Zone zone = dns::parse_zone(buffer.str());

  core::StreamAuditor auditor;
  zone.for_each([&auditor](const dns::ResourceRecord& rr) {
    if (const auto* ptr = std::get_if<dns::PtrRdata>(&rr.rdata)) {
      if (const auto address = net::from_arpa(rr.name.to_string())) {
        auditor.inspect(*address, ptr->ptrdname.to_canonical_string());
      }
    }
  });
  const auto& report = auditor.report();
  std::printf("%s: %llu records, %zu findings (%llu owner names, %llu device models)\n",
              zone.origin().to_canonical_string().c_str(),
              static_cast<unsigned long long>(report.records_audited), report.findings.size(),
              static_cast<unsigned long long>(report.owner_name_leaks),
              static_cast<unsigned long long>(report.device_model_leaks));
  if (!cli.get_flag("quiet")) {
    for (const auto& finding : report.findings) {
      std::printf("  [%-24s] %-16s %s\n", core::to_string(finding.severity),
                  finding.address.to_string().c_str(), finding.hostname.c_str());
    }
  }
  return report.clean() ? 0 : 1;
}

int cmd_campaign(const std::vector<std::string>& args) {
  util::CliParser cli{"rdns_tool campaign",
                      "run the supplemental measurement against the nine-network paper world"};
  cli.option("seed", "world seed", "1")
      .option("scale", "population scale factor", "0.3")
      .option("from", "campaign start (YYYY-MM-DD)", "2021-10-25")
      .option("to", "campaign end (YYYY-MM-DD)", "2021-11-07");
  add_common_options(cli);
  if (cli.handle_help(args)) return 0;
  cli.parse(args);
  apply_common_options(cli);

  core::WorldScale scale;
  scale.population = cli.get_double("scale");
  auto world = core::make_paper_world(static_cast<std::uint64_t>(cli.get_int("seed")), scale);
  record_run_manifest("rdns_tool.campaign", static_cast<std::uint64_t>(cli.get_int("seed")),
                      world.get());
  const auto from = util::parse_date(cli.get("from"));
  const auto to = util::parse_date(cli.get("to"));
  world->start(util::add_days(from, -1), util::add_days(to, 1));
  scan::SupplementalCampaign campaign{*world, scan::paper_targets(*world),
                                      scan::CampaignWindow{from, to}};
  {
    const SignalWatcher signals{"campaign"};
    campaign.run();
  }

  const auto totals = campaign.totals();
  std::printf("ICMP: %s responses / %s unique IPs\n",
              util::with_commas(static_cast<std::int64_t>(totals.icmp_responses)).c_str(),
              util::with_commas(static_cast<std::int64_t>(totals.icmp_unique_ips)).c_str());
  std::printf("rDNS: %s responses / %s unique IPs / %s unique PTRs\n",
              util::with_commas(static_cast<std::int64_t>(totals.rdns_responses)).c_str(),
              util::with_commas(static_cast<std::int64_t>(totals.rdns_unique_ips)).c_str(),
              util::with_commas(static_cast<std::int64_t>(totals.rdns_unique_ptrs)).c_str());
  for (const auto& row : campaign.network_rows()) {
    std::printf("  %-14s %-11s observed %6llu (%5.1f%%)\n", row.name.c_str(), row.type.c_str(),
                static_cast<unsigned long long>(row.addresses_observed), row.percent_observed);
  }
  const auto funnel = core::build_funnel(campaign.engine().groups());
  std::printf("groups: %s all -> %s successful -> %s reverted -> %s reliable\n",
              util::with_commas(static_cast<std::int64_t>(funnel.all_groups)).c_str(),
              util::with_commas(static_cast<std::int64_t>(funnel.successful)).c_str(),
              util::with_commas(static_cast<std::int64_t>(funnel.reverted)).c_str(),
              util::with_commas(static_cast<std::int64_t>(funnel.reliable)).c_str());
  const auto usable = core::usable_groups(campaign.engine().groups());
  if (!usable.empty()) {
    std::printf("PTR lingering: %.0f%% of usable groups revert within 60 minutes\n",
                100.0 * core::fraction_within_minutes(usable, 60.0));
  }
  // The Fig. 7 failure tail: departed clients whose PTR was never seen
  // leaving the zone before the back-off schedule gave up — slow
  // operators on a clean network, plus lost DynDNS removals under
  // --faults broken-ddns.
  const auto stale = core::stale_groups(campaign.engine().groups());
  if (!stale.empty()) {
    std::printf("stale PTRs: %zu departed clients whose record was never seen leaving the zone "
                "(%.0f%% of departures cleaned within 60 minutes)\n",
                stale.size(), 100.0 * core::fraction_removed_within(usable, stale, 60.0));
  }
  return 0;
}

int cmd_track(const std::vector<std::string>& args) {
  util::CliParser cli{"rdns_tool track",
                      "follow a given name's devices through a campaign (Life of Brian)"};
  cli.option("network", "target network name", "Academic-A")
      .option("seed", "world seed", "123")
      .option("scale", "population scale factor", "0.25")
      .option("weeks", "number of weeks to render", "2")
      .positional("name", "given name to track", "brian");
  add_common_options(cli);
  if (cli.handle_help(args)) return 0;
  cli.parse(args);
  apply_common_options(cli);

  core::WorldScale scale;
  scale.population = cli.get_double("scale");
  auto world = core::make_paper_world(static_cast<std::uint64_t>(cli.get_int("seed")), scale);
  record_run_manifest("rdns_tool.track", static_cast<std::uint64_t>(cli.get_int("seed")),
                      world.get());
  const util::CivilDate from{2021, 11, 15};
  const int weeks = cli.get_int("weeks");
  const util::CivilDate to = util::add_days(from, weeks * 7 - 1);
  world->start(util::add_days(from, -1), util::add_days(to, 1));

  const sim::Organization* target = world->org_by_name(cli.get("network"));
  if (target == nullptr) {
    std::fprintf(stderr, "unknown network %s\n", cli.get("network").c_str());
    return 2;
  }
  scan::SupplementalCampaign campaign{
      *world,
      {{cli.get("network"), target->spec().measurement_targets}},
      scan::CampaignWindow{from, to}};
  {
    const SignalWatcher signals{"track"};
    campaign.run();
  }

  const auto segments = core::segments_matching(campaign.engine().groups(), cli.get("name"),
                                                cli.get("network"));
  std::printf("%zu presence periods for hostnames containing '%s' on %s\n", segments.size(),
              cli.get("name").c_str(), cli.get("network").c_str());
  for (const auto& [hostname, date] : core::first_seen_dates(segments)) {
    std::printf("  %-28s first seen %s\n", hostname.c_str(),
                util::format_date(date).c_str());
  }
  return 0;
}

/// SIGINT/SIGTERM set this; the serve loop polls it. sig_atomic_t because
/// it is written from a signal handler.
volatile std::sig_atomic_t g_serve_stop = 0;

void handle_serve_signal(int) { g_serve_stop = 1; }

/// SIGHUP asks for a hot zone reload; the serve loop polls it (the /reload
/// admin route sets its own atomic — see cmd_serve).
volatile std::sig_atomic_t g_serve_reload = 0;

void handle_serve_reload_signal(int) { g_serve_reload = 1; }

/// RCU-style zone generation plumbing for hot reload (SIGHUP or GET
/// /reload): the main thread builds a fresh frozen world and publishes it
/// under the mutex with an epoch bump; each worker's handler notices the
/// epoch change *between* queries, folds its per-org stats into the
/// outgoing generation, and re-anchors its read-only view on the new one.
/// No query is ever dropped by a reload — the swap happens between
/// datagrams, and the old world stays alive (shared_ptr) until the last
/// worker lets go of it.
struct ZoneSwitchboard {
  struct Generation {
    std::shared_ptr<sim::World> world;
    util::SimTime frozen_now = 0;
    /// Pre-serialized answer images for this generation's zones (null when
    /// the cache is disabled). Swapped atomically with the world, so a
    /// cached tail can never outlive the zone it encodes.
    std::shared_ptr<const dns::AnswerCache> cache;
  };
  /// Per-worker handler state. Stable address: slots are created
  /// sequentially by the handler factory before any worker thread runs,
  /// and each slot is touched only by its own worker thereafter.
  struct Slot {
    std::uint64_t seen_epoch = 0;
    Generation gen;
    std::unique_ptr<sim::FrozenDnsView> view;
  };

  std::atomic<std::uint64_t> epoch{0};
  std::mutex mu;       ///< guards `current` and every per-org stats merge
  Generation current;  ///< guarded by mu
  std::vector<std::unique_ptr<Slot>> slots;

  /// A handler noticed `epoch` moved: retire the slot's generation
  /// (merging its view stats under the mutex) and adopt the current one.
  void adopt(Slot& slot) {
    std::lock_guard<std::mutex> lock{mu};
    if (slot.view != nullptr) {
      slot.gen.world->merge_server_stats(slot.view->per_org_stats());
    }
    slot.gen = current;
    slot.seen_epoch = epoch.load(std::memory_order_relaxed);
    slot.view = std::make_unique<sim::FrozenDnsView>(*slot.gen.world);
  }

  /// Publish a new generation; returns the new epoch value.
  std::uint64_t publish(std::shared_ptr<sim::World> world, util::SimTime frozen_now,
                        std::shared_ptr<const dns::AnswerCache> cache = nullptr) {
    std::lock_guard<std::mutex> lock{mu};
    current.world = std::move(world);
    current.frozen_now = frozen_now;
    current.cache = std::move(cache);
    return epoch.fetch_add(1, std::memory_order_release) + 1;
  }

  /// Snapshot the current generation's answer cache (the serve loop's
  /// `answer_cache` provider; called once per epoch change, not per query).
  [[nodiscard]] std::shared_ptr<const dns::AnswerCache> current_cache() {
    std::lock_guard<std::mutex> lock{mu};
    return current.cache;
  }

  /// Final fold at shutdown (workers already joined, so the slots are
  /// quiescent; the mutex still serializes against a racing publish).
  void merge_all() {
    std::lock_guard<std::mutex> lock{mu};
    for (auto& slot : slots) {
      if (slot->view != nullptr) {
        slot->gen.world->merge_server_stats(slot->view->per_org_stats());
        slot->view.reset();
      }
    }
  }
};

/// One rdns.observability.v1 snapshot as a single JSONL line — the
/// streaming cousin of trace::write_snapshot_json, appended every
/// --metrics-interval seconds while serving.
void append_metrics_snapshot_line(std::ostream& out) {
  std::string line = "{\"schema\":\"rdns.observability.v1\",\"generated_unix\":" +
                     std::to_string(static_cast<long long>(std::time(nullptr))) + ",";
  if (const auto manifest = util::journal::Journal::global().manifest()) {
    line += "\"manifest\":" + util::journal::manifest_json(*manifest) + ",";
  }
  util::metrics::Registry::global().append_json_compact(line);
  line += ",\"spans\":null}\n";
  out << line;
  out.flush();
}

int cmd_serve(const std::vector<std::string>& args) {
  util::CliParser cli{"rdns_tool serve",
                      "host a frozen world's reverse zones on a real UDP port"};
  cli.option("orgs", "number of organizations", "24")
      .option("seed", "world seed", "42")
      .option("scale", "population scale factor", "0.4")
      .option("date", "freeze the world at this date (YYYY-MM-DD)", "2021-01-02")
      .option("hour", "freeze hour of day (matches the sweep instant)", "14")
      .option("bind", "address to bind", "127.0.0.1")
      .option("port", "UDP port (0 = kernel-assigned, printed at startup)", "5533")
      .option("duration", "seconds to serve (0 = until SIGINT/SIGTERM)", "0")
      .option("batch", "max datagrams per recvmmsg/sendmmsg batch", "32")
      .option("admin-port", "enable the HTTP admin endpoint on this port (0 = kernel-assigned)",
              std::nullopt)
      .option("sample", "sampled tracing: clock 1 query in N by txid hash (0 = off)", "8")
      .option("slowlog-us",
              "sampled queries slower than this emit serve.slowlog journal events", "1000")
      .option("top-k", "heavy-hitter sketch capacity (client IPs and qnames)", "64")
      .option("metrics-interval",
              "append a metrics snapshot line to --metrics-out every N seconds (0 = off)", "0")
      .flag("no-guard", "disable the serve-guard front-end (wire defense, RRL, shed)")
      .option("rrl-rate", "per-/24 response rate limit in responses/s (0 = RRL off)", "0")
      .option("rrl-burst", "RRL token-bucket burst (0 = same as --rrl-rate)", "0")
      .option("rrl-slip", "answer every Nth over-limit query with TC=1 instead of dropping",
              "2")
      .option("shed-l1", "full-batch streak that arms shed level 1 (0 = never)", "8")
      .option("shed-l2", "full-batch streak that arms shed level 2 (0 = never)", "32")
      .option("shed-l3", "full-batch streak that arms shed level 3 (0 = never)", "128")
      .option("drain-deadline-ms",
              "max time a draining worker keeps consuming backlog at shutdown", "2000")
      .flag("no-answer-cache",
            "disable the pre-serialized answer cache (always disabled under fault injection)")
      .flag("tcp", "also listen for DNS-over-TCP on the same port (TC=1 fallback)")
      .option("edns-udp-size",
              "EDNS payload size advertised in OPT replies (RFC 6891; clamp floor 512)",
              "1232");
  add_common_options(cli);
  if (cli.handle_help(args)) return 0;
  cli.parse(args);
  apply_common_options(cli);

  const auto bind_addr = net::Ipv4Addr::parse(cli.get("bind"));
  if (!bind_addr) throw util::CliError{"--bind must be an IPv4 address"};
  const int port = cli.get_int("port");
  if (port < 0 || port > 65535) throw util::CliError{"--port must be in [0, 65535]"};
  const int duration_s = cli.get_int("duration");
  if (duration_s < 0) throw util::CliError{"--duration must be >= 0"};
  const int sample_every = cli.get_int("sample");
  if (sample_every < 0) throw util::CliError{"--sample must be >= 0"};
  const int slowlog_us = cli.get_int("slowlog-us");
  if (slowlog_us < 0) throw util::CliError{"--slowlog-us must be >= 0"};
  const int top_k = cli.get_int("top-k");
  if (top_k < 1) throw util::CliError{"--top-k must be >= 1"};
  const double metrics_interval_s = cli.get_double("metrics-interval");
  if (metrics_interval_s < 0) throw util::CliError{"--metrics-interval must be >= 0"};
  const auto metrics_out = cli.get_optional("metrics-out");
  if (metrics_interval_s > 0 && !metrics_out) {
    throw util::CliError{"--metrics-interval needs --metrics-out PATH for the JSONL stream"};
  }
  std::optional<int> admin_port;
  if (const auto opt = cli.get_optional("admin-port")) {
    admin_port = std::atoi(opt->c_str());
    if (*admin_port < 0 || *admin_port > 65535) {
      throw util::CliError{"--admin-port must be in [0, 65535]"};
    }
  }
  const double rrl_rate = cli.get_double("rrl-rate");
  if (rrl_rate < 0) throw util::CliError{"--rrl-rate must be >= 0"};
  const double rrl_burst = cli.get_double("rrl-burst");
  if (rrl_burst < 0) throw util::CliError{"--rrl-burst must be >= 0"};
  const int rrl_slip = cli.get_int("rrl-slip");
  if (rrl_slip < 1) throw util::CliError{"--rrl-slip must be >= 1"};
  const int drain_deadline_ms = cli.get_int("drain-deadline-ms");
  if (drain_deadline_ms < 0) throw util::CliError{"--drain-deadline-ms must be >= 0"};
  const int edns_udp_size = cli.get_int("edns-udp-size");
  if (edns_udp_size < 512 || edns_udp_size > 65535) {
    throw util::CliError{"--edns-udp-size must be in [512, 65535]"};
  }
  const bool want_tcp = cli.get_flag("tcp");

  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const int orgs = cli.get_int("orgs");
  const int hour = cli.get_int("hour");
  core::WorldScale scale;
  scale.population = cli.get_double("scale");
  const auto date = util::parse_date(cli.get("date"));

  // The world build is a named closure because hot reload (SIGHUP or GET
  // /reload) runs it again: an identically-parameterized rebuild freezes at
  // the same instant, so answers stay byte-identical across generations.
  // The first build heads the journal with the run manifest and journals
  // its dhcp/ddns history; rebuilds replay that same history, so they run
  // with the journal suspended (its timestamps would go backwards).
  const auto build_world = [&](bool first) -> std::shared_ptr<sim::World> {
    std::optional<util::journal::ScopedSuspend> mute;
    if (!first) mute.emplace();
    std::shared_ptr<sim::World> w = core::make_internet_world(seed, orgs, scale);
    if (first) record_run_manifest("rdns_tool.serve", seed, w.get());
    w->start(util::add_days(date, -1), util::add_days(date, 1));
    w->run_until(util::to_sim_time(date) + hour * util::kHour);
    return w;
  };
  std::shared_ptr<sim::World> world = build_world(/*first=*/true);
  const util::SimTime frozen_now = world->now();

  // Answer cache: pre-serialize every PTR answer in the announced ranges so
  // the hot path is two memcpys + a header patch (see dns/answer_cache.hpp).
  // A cache hit bypasses the deterministic fault sites, so any active fault
  // injection — global injector or a per-org FaultPolicy — force-disables it.
  bool cache_enabled = !cli.get_flag("no-answer-cache");
  const char* cache_disabled_why = nullptr;
  if (cache_enabled && util::faults::active() != nullptr) {
    cache_enabled = false;
    cache_disabled_why = "fault injection active (--faults)";
  }
  if (cache_enabled) {
    for (const auto& org : world->orgs()) {
      const dns::FaultPolicy& f = org->dns().faults();
      if (f.servfail_probability > 0 || f.timeout_probability > 0) {
        cache_enabled = false;
        cache_disabled_why = "per-org DNS fault policy active";
        break;
      }
    }
  }
  const auto build_cache =
      [&](sim::World& w) -> std::shared_ptr<const dns::AnswerCache> {
    if (!cache_enabled) return nullptr;
    std::vector<dns::AnswerCache::Source> sources;
    for (const auto& org : w.orgs()) {
      for (const auto& prefix : org->spec().announced) {
        sources.push_back({&org->dns(), prefix.first(), prefix.last()});
      }
    }
    return dns::AnswerCache::build(sources);
  };
  std::shared_ptr<const dns::AnswerCache> cache = build_cache(*world);

  // Zone generations live on the switchboard; each worker's handler slot
  // re-anchors between queries when the epoch moves (see ZoneSwitchboard).
  ZoneSwitchboard board;
  board.publish(world, frozen_now, cache);

  dns::UdpServeOptions options;
  options.endpoint.address = bind_addr->value();
  options.endpoint.port = static_cast<std::uint16_t>(port);
  options.threads = std::max(1u, util::ThreadPool::global().size());
  options.batch = static_cast<std::size_t>(std::max(1, cli.get_int("batch")));
  options.drain_deadline_ms = static_cast<unsigned>(drain_deadline_ms);
  options.hardening.guard = !cli.get_flag("no-guard");
  options.hardening.rrl_rate = rrl_rate;
  options.hardening.rrl_burst = rrl_burst;
  options.hardening.rrl_slip = static_cast<unsigned>(rrl_slip);
  options.hardening.shed_l1_batches = static_cast<unsigned>(std::max(0, cli.get_int("shed-l1")));
  options.hardening.shed_l2_batches = static_cast<unsigned>(std::max(0, cli.get_int("shed-l2")));
  options.hardening.shed_l3_batches = static_cast<unsigned>(std::max(0, cli.get_int("shed-l3")));
  options.edns_udp_size = static_cast<std::uint16_t>(edns_udp_size);
  if (cache_enabled) {
    options.answer_cache = [&board]() { return board.current_cache(); };
    options.answer_cache_epoch = &board.epoch;
  }

  // The introspection plane is always armed (its disabled-path cost is one
  // pointer test per query): sampled latency + slowlog, heavy-hitter
  // sketches, the CHAOS TXT interface, and — with --admin-port — HTTP.
  dns::ServeAdminConfig admin_cfg;
  admin_cfg.sample_every = static_cast<unsigned>(sample_every);
  admin_cfg.slowlog_threshold_us = static_cast<double>(slowlog_us);
  admin_cfg.top_k = static_cast<std::size_t>(top_k);
  admin_cfg.sim_time = frozen_now;
  dns::ServeIntrospection introspection{options.threads, admin_cfg};
  options.introspection = &introspection;

  // One read-only view per worker: each owns its per-org statistics, so
  // the hot path takes no locks; they fold back into their generation's
  // world at adopt/shutdown. The factory runs sequentially inside start(),
  // before any worker thread exists, so the slot vector needs no
  // synchronization.
  dns::UdpServerLoop loop{options, [&](unsigned) -> dns::UdpServerLoop::WireHandler {
    board.slots.push_back(std::make_unique<ZoneSwitchboard::Slot>());
    ZoneSwitchboard::Slot* slot = board.slots.back().get();
    board.adopt(*slot);
    ZoneSwitchboard* b = &board;
    return introspection.wrap_chaos([slot, b](std::span<const std::uint8_t> query) {
      if (b->epoch.load(std::memory_order_acquire) != slot->seen_epoch) b->adopt(*slot);
      return slot->view->exchange(query, slot->gen.frozen_now);
    });
  }};
  std::string error;
  if (!loop.start(&error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  introspection.start();

  // DNS-over-TCP companion listener on the same port number: answers that
  // the UDP path truncates (TC=1) are retrievable in full here. One extra
  // switchboard slot, owned by the TCP event-loop thread; its handler
  // re-anchors on epoch moves exactly like a UDP worker's, so reloads need
  // no handler swap. Safe to append the slot here: workers hold their own
  // Slot* and never touch the vector.
  std::unique_ptr<dns::DnsTcpServer> tcp;
  if (want_tcp) {
    board.slots.push_back(std::make_unique<ZoneSwitchboard::Slot>());
    ZoneSwitchboard::Slot* slot = board.slots.back().get();
    board.adopt(*slot);
    ZoneSwitchboard* b = &board;
    dns::DnsTcpServer::Options tcp_options;
    tcp_options.endpoint = {bind_addr->value(), loop.endpoint().port};
    tcp = std::make_unique<dns::DnsTcpServer>(
        tcp_options, [slot, b](std::span<const std::uint8_t> query) {
          if (b->epoch.load(std::memory_order_acquire) != slot->seen_epoch) b->adopt(*slot);
          return slot->view->exchange(query, slot->gen.frozen_now);
        });
    if (!tcp->start(&error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      loop.stop();
      introspection.stop();
      return 2;
    }
  }

  net::AdminHttpServer admin;
  std::atomic<bool> http_reload{false};
  if (admin_port) {
    introspection.install_http_routes(admin);
    // GET /reload schedules a hot zone reload; the main loop performs the
    // (seconds-long) world rebuild so the admin plane stays responsive.
    admin.route("/reload", [&http_reload](const std::string&) {
      http_reload.store(true, std::memory_order_relaxed);
      return net::HttpResponse{200, "text/plain; charset=utf-8", "zone reload scheduled\n"};
    });
    net::UdpEndpoint admin_endpoint{bind_addr->value(), static_cast<std::uint16_t>(*admin_port)};
    if (!admin.start(admin_endpoint, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      loop.stop();
      return 2;
    }
  }

  // The harnesses (pytest e2e, load bench, `rdns_tool top`) parse these
  // lines for the ports.
  std::printf("serving on %s with %u workers (world frozen at %s %02d:00)\n",
              loop.endpoint().to_string().c_str(), loop.threads(),
              util::format_date(date).c_str(), cli.get_int("hour"));
  // The harnesses read `admin on` as the line right after the serve
  // banner; the informational tcp/cache lines must print after it.
  if (admin.running()) {
    std::printf("admin on %s\n", admin.endpoint().to_string().c_str());
  }
  if (tcp != nullptr && tcp->running()) {
    std::printf("tcp on %s\n", tcp->endpoint().to_string().c_str());
  }
  if (cache != nullptr) {
    std::printf("answer cache: %s entries, %s bytes\n",
                util::with_commas(static_cast<std::int64_t>(cache->entry_count())).c_str(),
                util::with_commas(static_cast<std::int64_t>(cache->bytes())).c_str());
  } else if (cache_disabled_why != nullptr) {
    std::printf("answer cache disabled: %s\n", cache_disabled_why);
  }
  std::fflush(stdout);
  if (auto* j = util::journal::active()) {
    util::journal::Event e{"serve.start", frozen_now};
    e.str("endpoint", loop.endpoint().to_string())
        .unum("workers", loop.threads())
        .unum("port", loop.endpoint().port)
        .unum("guard", options.hardening.guard ? 1 : 0)
        .unum("rrl_rate", static_cast<std::uint64_t>(options.hardening.rrl_rate));
    j->emit(e);
  }

  std::ofstream metrics_stream;
  if (metrics_interval_s > 0) {
    metrics_stream.open(*metrics_out);
    if (!metrics_stream) throw util::CliError{"cannot write " + *metrics_out};
  }

  std::signal(SIGINT, handle_serve_signal);
  std::signal(SIGTERM, handle_serve_signal);
  std::signal(SIGHUP, handle_serve_reload_signal);
  std::signal(SIGUSR1, handle_cycle_log_signal);
  std::signal(SIGUSR2, handle_flight_dump_signal);
  g_serve_reload = 0;
  std::uint64_t reloads_done = 0;
  const auto started = std::chrono::steady_clock::now();
  auto next_snapshot =
      started + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(metrics_interval_s));
  while (g_serve_stop == 0) {
    const auto now = std::chrono::steady_clock::now();
    if (duration_s > 0 && now - started >= std::chrono::seconds(duration_s)) break;
    if (g_cycle_log_request != 0 || g_flight_dump_request != 0) {
      const bool cycled = g_cycle_log_request != 0;
      poll_operator_signals("serve");
      if (cycled) introspection.aggregate_now();  // refresh the serve.log_level gauge
    }
    if (g_serve_reload != 0 || http_reload.load(std::memory_order_relaxed)) {
      g_serve_reload = 0;
      http_reload.store(false, std::memory_order_relaxed);
      const auto build_t0 = std::chrono::steady_clock::now();
      std::shared_ptr<sim::World> next_world = build_world(/*first=*/false);
      const util::SimTime next_now = next_world->now();
      // Rebuild the answer cache against the new generation before the
      // epoch bump: workers notice the bump and swap world + cache as one.
      std::shared_ptr<const dns::AnswerCache> next_cache = build_cache(*next_world);
      const auto build_ms = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - build_t0)
              .count());
      const std::uint64_t new_epoch =
          board.publish(std::move(next_world), next_now, std::move(next_cache));
      ++reloads_done;
      util::metrics::counter("serve.zone_reloads").inc();
      if (auto* j = util::journal::active()) {
        util::journal::Event e{"serve.reload", frozen_now};
        e.unum("epoch", new_epoch).unum("build_ms", build_ms);
        j->emit(e);
      }
      std::printf("zone reload #%llu complete in %llu ms\n",
                  static_cast<unsigned long long>(reloads_done),
                  static_cast<unsigned long long>(build_ms));
      std::fflush(stdout);
    }
    if (metrics_stream.is_open() && now >= next_snapshot) {
      introspection.aggregate_now();
      append_metrics_snapshot_line(metrics_stream);
      next_snapshot = now + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                                std::chrono::duration<double>(metrics_interval_s));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::signal(SIGHUP, SIG_DFL);

  // Graceful drain: workers stop waiting for new datagrams, consume what
  // the kernel already accepted (bounded by --drain-deadline-ms), flush
  // their final sendmmsg batches, then exit; stop() joins and folds stats.
  const auto drain_t0 = std::chrono::steady_clock::now();
  loop.request_drain();
  loop.stop();
  const auto drain_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(std::chrono::steady_clock::now() -
                                                            drain_t0)
          .count());
  if (auto* j = util::journal::active()) {
    util::journal::Event e{"serve.drain", frozen_now};
    e.unum("deadline_ms", static_cast<std::uint64_t>(drain_deadline_ms))
        .unum("drain_ms", drain_ms)
        .unum("reloads", reloads_done);
    j->emit(e);
  }
  if (tcp != nullptr) tcp->stop();
  admin.stop();
  introspection.stop();
  if (metrics_stream.is_open()) {
    // Final snapshot so even sub-interval runs leave at least one line.
    introspection.aggregate_now();
    append_metrics_snapshot_line(metrics_stream);
    metrics_stream.close();
  }

  board.merge_all();
  const dns::UdpServeStats& totals = loop.stats();
  if (auto* j = util::journal::active()) {
    util::journal::Event e{"serve.stop", frozen_now};
    e.unum("datagrams_received", totals.datagrams_received)
        .unum("responses_sent", totals.responses_sent)
        .unum("dropped_malformed", totals.dropped_malformed)
        .unum("dropped_timeout_fault", totals.dropped_timeout_fault)
        .unum("dropped_policy", totals.dropped_policy)
        .unum("truncated_queries", totals.truncated_queries)
        .unum("send_failures", totals.send_failures)
        .unum("formerr_sent", totals.formerr_sent)
        .unum("notimp_sent", totals.notimp_sent)
        .unum("refused_sent", totals.refused_sent)
        .unum("rrl_dropped", totals.rrl_dropped)
        .unum("rrl_slipped", totals.rrl_slipped)
        .unum("shed_errors", totals.shed_errors)
        .unum("shed_answers", totals.shed_answers)
        .unum("cache_hits", totals.cache_hits)
        .unum("cache_misses", totals.cache_misses)
        .unum("edns_queries", totals.edns_queries)
        .unum("tc_responses", totals.tc_responses);
    j->emit(e);
  }
  std::printf(
      "served %s datagrams (%s answered, %llu dropped, %llu send failures)\n"
      "  drops: %llu malformed, %llu timeout-fault, %llu policy (%llu rrl, %llu shed)\n"
      "  cache: %s hits, %s misses; %llu edns queries, %llu tc responses\n",
      util::with_commas(static_cast<std::int64_t>(totals.datagrams_received)).c_str(),
      util::with_commas(static_cast<std::int64_t>(totals.responses_sent)).c_str(),
      static_cast<unsigned long long>(totals.dropped_total()),
      static_cast<unsigned long long>(totals.send_failures),
      static_cast<unsigned long long>(totals.dropped_malformed),
      static_cast<unsigned long long>(totals.dropped_timeout_fault),
      static_cast<unsigned long long>(totals.dropped_policy),
      static_cast<unsigned long long>(totals.rrl_dropped),
      static_cast<unsigned long long>(totals.shed_errors + totals.shed_answers),
      util::with_commas(static_cast<std::int64_t>(totals.cache_hits)).c_str(),
      util::with_commas(static_cast<std::int64_t>(totals.cache_misses)).c_str(),
      static_cast<unsigned long long>(totals.edns_queries),
      static_cast<unsigned long long>(totals.tc_responses));
  return 0;
}

/// One rendered frame of `rdns_tool top`: headline numbers, a QPS
/// sparkline over the recent polls, and the heavy-hitter tables.
std::string render_top_frame(const util::journal::JsonValue& doc,
                             const std::deque<double>& qps_history) {
  std::string out;
  char line[256];
  const util::journal::JsonValue* qps = doc.find("qps");
  const util::journal::JsonValue* latency = doc.find("latency_us");
  const util::journal::JsonValue* totals = doc.find("totals");
  std::snprintf(line, sizeof line, "rdns top — up %.0fs, %lld workers, log %s\n",
                doc.get_number("uptime_s"),
                static_cast<long long>(doc.get_int("workers")),
                doc.get_string("log_level", "?").c_str());
  out += line;
  std::snprintf(line, sizeof line,
                "qps 1s/10s/60s: %.0f / %.0f / %.0f    latency us p50/p90/p99: "
                "%.0f / %.0f / %.0f\n",
                qps != nullptr ? qps->get_number("1s") : 0.0,
                qps != nullptr ? qps->get_number("10s") : 0.0,
                qps != nullptr ? qps->get_number("60s") : 0.0,
                latency != nullptr ? latency->get_number("p50") : 0.0,
                latency != nullptr ? latency->get_number("p90") : 0.0,
                latency != nullptr ? latency->get_number("p99") : 0.0);
  out += line;
  std::snprintf(line, sizeof line,
                "received %lld  answered %lld  dropped %lld  sampled %lld  slowlog %lld\n",
                static_cast<long long>(totals != nullptr ? totals->get_int("received") : 0),
                static_cast<long long>(totals != nullptr ? totals->get_int("answered") : 0),
                static_cast<long long>(totals != nullptr ? totals->get_int("dropped") : 0),
                static_cast<long long>(doc.get_int("sampled")),
                static_cast<long long>(doc.get_int("slowlog")));
  out += line;

  if (qps_history.size() >= 2) {
    util::Series series;
    series.label = "qps(1s)";
    series.values.assign(qps_history.begin(), qps_history.end());
    util::ChartOptions chart;
    chart.width = 60;
    chart.height = 8;
    chart.title = "QPS (1s window, one point per poll)";
    out += util::render_line_chart({series}, chart);
  }

  const auto render_table = [&out](const util::journal::JsonValue* entries,
                                   const char* heading) {
    if (entries == nullptr || entries->array.empty()) return;
    out += heading;
    out += '\n';
    std::size_t shown = 0;
    for (const util::journal::JsonValue& entry : entries->array) {
      char row[160];
      std::snprintf(row, sizeof row, "  %-40s %10lld (±%lld)\n",
                    entry.get_string("key", "?").c_str(),
                    static_cast<long long>(entry.get_int("count")),
                    static_cast<long long>(entry.get_int("error")));
      out += row;
      if (++shown >= 10) break;
    }
  };
  render_table(doc.find("top_clients"), "top clients:");
  render_table(doc.find("top_qnames"), "top qnames:");
  return out;
}

/// One rendered frame of `rdns_tool top` against a *sweep* progress plane
/// (/progress.json, schema rdns.sweep-progress.v1) instead of a serve
/// endpoint: shard completion, rows/s windows, ETA, and a rate sparkline.
std::string render_sweep_frame(const util::journal::JsonValue& doc,
                               const std::deque<double>& rate_history) {
  std::string out;
  char line[256];
  const util::journal::JsonValue* shards = doc.find("shards");
  const util::journal::JsonValue* rates = doc.find("rows_per_s");
  std::snprintf(line, sizeof line, "rdns sweep — up %.0fs, day %s\n", doc.get_number("uptime_s"),
                doc.get_string("day", "?").c_str());
  out += line;
  const double eta = doc.get_number("eta_s", -1);
  std::snprintf(line, sizeof line,
                "shards %lld/%lld (%.1f%%)   rows %lld   eta %s\n",
                static_cast<long long>(shards != nullptr ? shards->get_int("done") : 0),
                static_cast<long long>(shards != nullptr ? shards->get_int("total") : 0),
                doc.get_number("percent"),
                static_cast<long long>(doc.get_int("rows")),
                eta >= 0 ? (util::format("%.0fs", eta).c_str()) : "?");
  out += line;
  std::snprintf(line, sizeof line,
                "rows/s 1s/10s/60s: %.0f / %.0f / %.0f   retries %lld   degraded %lld   "
                "reruns %lld\n",
                rates != nullptr ? rates->get_number("1s") : 0.0,
                rates != nullptr ? rates->get_number("10s") : 0.0,
                rates != nullptr ? rates->get_number("60s") : 0.0,
                static_cast<long long>(doc.get_int("retries")),
                static_cast<long long>(shards != nullptr ? shards->get_int("degraded") : 0),
                static_cast<long long>(shards != nullptr ? shards->get_int("reruns") : 0));
  out += line;
  if (rate_history.size() >= 2) {
    out += "rows/s: [" +
           util::render_sparkline({rate_history.begin(), rate_history.end()}, 60) + "]\n";
  }
  return out;
}

int cmd_top(const std::vector<std::string>& args) {
  util::CliParser cli{"rdns_tool top",
                      "live terminal monitor polling a serve or sweep admin endpoint"};
  cli.option("interval", "poll/refresh interval in milliseconds", "1000")
      .option("frames", "frames to render before exiting (0 = until SIGINT)", "0")
      .flag("no-clear", "do not clear the terminal between frames (append frames)")
      .flag("once", "poll one document and print it raw (machine-readable), then exit")
      .positional("endpoint", "admin endpoint to poll (host:port — the `admin on` line)");
  add_common_options(cli);
  if (cli.handle_help(args)) return 0;
  cli.parse(args);
  apply_common_options(cli);

  const auto endpoint = net::UdpEndpoint::parse(cli.get("endpoint"));
  if (!endpoint) throw util::CliError{"endpoint must be host:port (e.g. 127.0.0.1:9053)"};
  const int interval_ms = std::max(50, cli.get_int("interval"));
  const int frames = std::max(0, cli.get_int("frames"));
  const bool clear = !cli.get_flag("no-clear");

  // A serve plane answers /stats.json, a sweep plane /progress.json; probe
  // once so both kinds of endpoint work with the same invocation.
  std::string path = "/stats.json";
  {
    std::string probe_error;
    if (!net::http_get(*endpoint, path, &probe_error)) path = "/progress.json";
  }

  if (cli.get_flag("once")) {
    std::string error;
    const auto body = net::http_get(*endpoint, path, &error);
    if (!body) {
      std::fprintf(stderr, "error: cannot poll %s%s: %s\n", endpoint->to_string().c_str(),
                   path.c_str(), error.c_str());
      return 2;
    }
    std::fputs(body->c_str(), stdout);
    if (!body->empty() && body->back() != '\n') std::fputc('\n', stdout);
    return 0;
  }

  std::signal(SIGINT, handle_serve_signal);
  std::signal(SIGTERM, handle_serve_signal);
  std::deque<double> rate_history;
  int rendered = 0;
  while (g_serve_stop == 0) {
    std::string error;
    const auto body = net::http_get(*endpoint, path, &error);
    if (!body) {
      std::fprintf(stderr, "error: cannot poll %s%s: %s\n", endpoint->to_string().c_str(),
                   path.c_str(), error.c_str());
      return 2;
    }
    const auto doc = util::journal::parse_json(*body, &error);
    if (!doc) {
      std::fprintf(stderr, "error: bad %s from %s: %s\n", path.c_str(),
                   endpoint->to_string().c_str(), error.c_str());
      return 2;
    }
    const bool sweep_doc = doc->get_string("schema") == "rdns.sweep-progress.v1";
    if (sweep_doc) {
      const util::journal::JsonValue* rates = doc->find("rows_per_s");
      rate_history.push_back(rates != nullptr ? rates->get_number("1s") : 0.0);
    } else {
      const util::journal::JsonValue* qps = doc->find("qps");
      rate_history.push_back(qps != nullptr ? qps->get_number("1s") : 0.0);
    }
    while (rate_history.size() > 60) rate_history.pop_front();

    if (clear && rendered > 0) std::fputs("\x1b[H\x1b[2J", stdout);
    std::fputs((sweep_doc ? render_sweep_frame(*doc, rate_history)
                          : render_top_frame(*doc, rate_history))
                   .c_str(),
               stdout);
    std::fflush(stdout);
    if (++rendered >= frames && frames > 0) break;
    for (int slept = 0; slept < interval_ms && g_serve_stop == 0; slept += 50) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  return 0;
}

int cmd_verify(const std::vector<std::string>& args) {
  util::CliParser cli{"rdns_tool verify",
                      "replay an event journal and audit the invariants it must satisfy"};
  cli.option("window", "max simulated seconds between lease end and PTR removal", "120")
      .option("tolerance", "slack (seconds) on promised back-off probe times", "60")
      .option("snapshot", "cross-check provenance against this metrics snapshot JSON",
              std::nullopt)
      .positional("journal", "event journal path (.jsonl)");
  add_common_options(cli);
  if (cli.handle_help(args)) return 0;
  cli.parse(args);
  apply_common_options(cli);
  record_run_manifest("rdns_tool.verify", 0, nullptr);

  core::AuditConfig config;
  config.removal_window = cli.get_int("window");
  config.probe_tolerance = cli.get_int("tolerance");
  const core::JournalAuditReport report = core::audit_journal_file(cli.get("journal"), config);
  std::fputs(core::render_audit_report(report).c_str(), stdout);
  if (!report.parsed) return 2;

  if (const auto snapshot_path = cli.get_optional("snapshot")) {
    std::ifstream in{*snapshot_path};
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", snapshot_path->c_str());
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    const auto doc = util::journal::parse_json(buffer.str(), &error);
    if (!doc) {
      std::fprintf(stderr, "cannot parse %s: %s\n", snapshot_path->c_str(), error.c_str());
      return 2;
    }
    const util::journal::JsonValue* embedded = doc->find("manifest");
    if (embedded == nullptr) {
      std::printf("provenance: %s carries no manifest\n", snapshot_path->c_str());
      return 1;
    }
    std::string why;
    if (!util::journal::manifests_compatible(*report.manifest,
                                             core::manifest_from_json(*embedded), &why)) {
      std::printf("provenance: %s is from a DIFFERENT run (%s differs)\n",
                  snapshot_path->c_str(), why.c_str());
      return 1;
    }
    std::printf("provenance: %s matches the journal (same seed/world/version)\n",
                snapshot_path->c_str());
  }
  return report.ok() ? 0 : 1;
}

int cmd_report(const std::vector<std::string>& args) {
  util::CliParser cli{"rdns_tool report",
                      "fold a run's journal, metrics snapshot and flight dump into one "
                      "rdns.report.v1 document"};
  cli.option("snapshot", "metrics snapshot JSON from the same run (--metrics-out)",
             std::nullopt)
      .option("flight", "flight-recorder JSONL dump from the same run (--flight-out)",
              std::nullopt)
      .option("out", "write the rdns.report.v1 JSON here instead of stdout", std::nullopt)
      .option("markdown", "also write a markdown narrative to this path", std::nullopt)
      .option("title", "report title", "rdns run report")
      .option("window", "max simulated seconds between lease end and PTR removal", "120")
      .option("tolerance", "slack (seconds) on promised back-off probe times", "60")
      .positional("journal", "event journal path (.jsonl)");
  add_common_options(cli);
  if (cli.handle_help(args)) return 0;
  cli.parse(args);
  apply_common_options(cli);
  record_run_manifest("rdns_tool.report", 0, nullptr);

  core::RunReportOptions options;
  options.title = cli.get("title");
  options.audit.removal_window = cli.get_int("window");
  options.audit.probe_tolerance = cli.get_int("tolerance");
  const core::RunReport report =
      core::build_run_report(cli.get("journal"), cli.get_optional("snapshot").value_or(""),
                             cli.get_optional("flight").value_or(""), options);
  if (!report.audit.parsed) {
    std::fprintf(stderr, "error: cannot replay journal %s\n", cli.get("journal").c_str());
    return 2;
  }

  const std::string json = core::render_run_report_json(report);
  if (const auto out_path = cli.get_optional("out")) {
    std::ofstream out{*out_path, std::ios::trunc};
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", out_path->c_str());
      return 2;
    }
    out << json;
  } else {
    std::fputs(json.c_str(), stdout);
  }
  if (const auto md_path = cli.get_optional("markdown")) {
    std::ofstream out{*md_path, std::ios::trunc};
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", md_path->c_str());
      return 2;
    }
    out << core::render_run_report_markdown(report);
  }
  for (const auto& problem : report.errors) {
    std::fprintf(stderr, "warning: %s\n", problem.c_str());
  }
  return report.ok() ? 0 : 1;
}

void print_usage() {
  std::printf(
      "rdns_tool — reverse-DNS privacy measurement toolkit\n"
      "subcommands:\n"
      "  sweep     record daily PTR sweeps of a synthetic Internet to CSV\n"
      "  analyze   identification pipeline over a sweep CSV (+ markdown report)\n"
      "  audit     audit a reverse zone file for privacy leaks\n"
      "  campaign  run the supplemental measurement (Tables 3/4/5 summary)\n"
      "  track     follow a given name's devices (Life of Brian)\n"
      "  serve     host a frozen world's reverse zones on a real UDP port\n"
      "  top       live terminal monitor polling a serve or sweep admin endpoint\n"
      "  verify    replay an event journal (--journal-out) and audit invariants\n"
      "  report    fold journal + metrics snapshot + flight dump into rdns.report.v1\n"
      "run `rdns_tool <subcommand> --help` for options\n");
}

}  // namespace

namespace {

int dispatch(const std::string& command, const std::vector<std::string>& args) {
  if (command == "sweep") return cmd_sweep(args);
  if (command == "analyze") return cmd_analyze(args);
  if (command == "audit") return cmd_audit(args);
  if (command == "campaign") return cmd_campaign(args);
  if (command == "track") return cmd_track(args);
  if (command == "serve") return cmd_serve(args);
  if (command == "top") return cmd_top(args);
  if (command == "verify") return cmd_verify(args);
  if (command == "report") return cmd_report(args);
  print_usage();
  return 2;
}

/// Pre-parse scan for the observability options so collection is enabled
/// before the subcommand builds its parser. Accepts both `--metrics-out
/// PATH` and `--metrics-out=PATH`; stops at `--` like the real parser.
struct ObservabilityOptions {
  std::optional<std::string> metrics_out;
  bool trace = false;
  /// True when `serve --metrics-interval N` (N > 0) streams JSONL snapshots
  /// itself — main() must not overwrite the stream with a final document.
  bool metrics_streamed = false;
};

ObservabilityOptions scan_observability_options(const std::vector<std::string>& args) {
  ObservabilityOptions opts;
  std::string interval;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--") break;
    if (arg == "--trace") opts.trace = true;
    if (arg == "--metrics-out" && i + 1 < args.size()) opts.metrics_out = args[i + 1];
    if (arg.rfind("--metrics-out=", 0) == 0) opts.metrics_out = arg.substr(14);
    if (arg == "--metrics-interval" && i + 1 < args.size()) interval = args[i + 1];
    if (arg.rfind("--metrics-interval=", 0) == 0) interval = arg.substr(19);
  }
  opts.metrics_streamed = !interval.empty() && std::atof(interval.c_str()) > 0;
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return 2;
  }
  const std::string command = argv[1];
  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) args.emplace_back(argv[i]);

  const ObservabilityOptions obs = scan_observability_options(args);
  if (obs.metrics_out || obs.trace) {
    util::metrics::set_collect_timing(true);
    util::trace::Tracer::global().set_enabled(true);
  }

  int exit_code = 2;
  try {
    // One root span around the whole dispatch, so the span tree's total
    // wall time tracks the process runtime.
    const auto root = util::trace::Tracer::global().scope("rdns_tool." + command);
    exit_code = dispatch(command, args);
  } catch (const util::CliError& e) {
    std::fprintf(stderr, "error: %s (try `rdns_tool %s --help`)\n", e.what(),
                 command.c_str());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  // Flush the journal before the process reports success, so chained
  // tooling (ctest fixtures, `verify`) reads a complete stream.
  util::journal::Journal::global().close();
  if (obs.trace) {
    std::fputs(util::trace::Tracer::global().render_text().c_str(), stderr);
  }
  if (obs.metrics_out && !obs.metrics_streamed) {
    std::ofstream out{*obs.metrics_out};
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", obs.metrics_out->c_str());
      return 2;
    }
    util::trace::write_snapshot_json(out, util::metrics::Registry::global(),
                                     util::trace::Tracer::global());
  }
  return exit_code;
}
