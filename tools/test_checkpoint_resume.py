#!/usr/bin/env python3
"""Kill/resume integration test for `rdns_tool sweep --mode wire`.

Drives the real binary end to end:

  1. a reference run produces the ground-truth CSV in one go;
  2. a checkpointed run is killed mid-sweep (--fail-after-shards forces a
     checkpoint save followed by _Exit(3), like a real crash);
  3. a resumed run (at a different thread count) continues from the
     checkpoint and must reproduce the reference CSV byte for byte;
  4. corrupt and incompatible checkpoints must be rejected with a clean
     non-zero exit, not a crash.

Stdlib only; invoked by ctest with the rdns_tool path as argv[1]. Pass
--faults to repeat the whole dance under a chaos profile (determinism must
hold with injection armed, too).
"""

import argparse
import os
import subprocess
import sys
import tempfile

SWEEP_ARGS = [
    "sweep", "--mode", "wire", "--orgs", "3", "--scale", "0.05",
    "--from", "2021-01-02", "--to", "2021-01-04",
]
FAIL_AFTER = "3"  # shards committed before the simulated kill


def run(tool, args, expect):
    proc = subprocess.run([tool] + args, stdout=subprocess.PIPE,
                          stderr=subprocess.STDOUT, text=True)
    if proc.returncode != expect:
        sys.stderr.write(f"FAIL: {' '.join(args)}\n  expected exit {expect}, "
                         f"got {proc.returncode}\n  output: {proc.stdout}\n")
        sys.exit(1)
    return proc.stdout


def read_bytes(path):
    with open(path, "rb") as f:
        return f.read()


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("tool", help="path to the rdns_tool binary")
    parser.add_argument("--faults", default=None, help="chaos profile to arm")
    parser.add_argument("--seed", default="11")
    opts = parser.parse_args()

    common = SWEEP_ARGS + ["--seed", opts.seed]
    if opts.faults:
        common += ["--faults", opts.faults]

    with tempfile.TemporaryDirectory(dir=os.getcwd()) as work:
        full_csv = os.path.join(work, "full.csv")
        part_csv = os.path.join(work, "part.csv")
        ck = os.path.join(work, "ck.jsonl")

        # 1. Reference: uninterrupted single-threaded run.
        run(opts.tool, common + ["--threads", "1", full_csv], expect=0)

        # 2. Checkpointed run killed after a few committed shards.
        run(opts.tool, common + ["--threads", "1", "--checkpoint", ck,
                                 "--fail-after-shards", FAIL_AFTER, part_csv],
            expect=3)
        if not os.path.exists(ck):
            sys.stderr.write("FAIL: killed run left no checkpoint file\n")
            sys.exit(1)

        # 3. Resume at a different thread count; must say so and must
        #    reproduce the reference bytes exactly.
        out = run(opts.tool, common + ["--threads", "4", "--checkpoint", ck,
                                       "--resume", part_csv], expect=0)
        if "(resumed)" not in out:
            sys.stderr.write(f"FAIL: resume run did not report (resumed): {out}\n")
            sys.exit(1)
        full, part = read_bytes(full_csv), read_bytes(part_csv)
        if full != part:
            sys.stderr.write(f"FAIL: resumed CSV differs from reference "
                             f"({len(part)} vs {len(full)} bytes)\n")
            sys.exit(1)

        # 4a. Corrupt checkpoint: clean exit 2, no crash.
        bad = os.path.join(work, "bad.jsonl")
        with open(bad, "w") as f:
            f.write("this is not a checkpoint\n")
        run(opts.tool, common + ["--checkpoint", bad, "--resume", part_csv],
            expect=2)

        # 4b. Truncated checkpoint (header only, progress line lost mid-write).
        with open(ck) as f:
            header = f.readline()
        trunc = os.path.join(work, "trunc.jsonl")
        with open(trunc, "w") as f:
            f.write(header)
        run(opts.tool, common + ["--checkpoint", trunc, "--resume", part_csv],
            expect=2)

        # 4c. Checkpoint from a different run (seed mismatch in the manifest).
        mismatch = common.copy()
        mismatch[mismatch.index("--seed") + 1] = str(int(opts.seed) + 1)
        run(opts.tool, mismatch + ["--checkpoint", ck, "--resume", part_csv],
            expect=2)

    print("OK: kill/resume reproduced the reference CSV byte-for-byte"
          + (f" under --faults {opts.faults}" if opts.faults else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
