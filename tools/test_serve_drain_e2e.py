#!/usr/bin/env python3
"""End-to-end lifecycle test for the hardened serve path: hot zone reload
and graceful drain under live traffic.

Drives one real `rdns_tool serve` process and checks the two lifecycle
guarantees from DESIGN.md §15:

  1. **Hot zone reload with zero dropped queries**: while a background
     flooder keeps the server busy, a reload is triggered twice — once via
     `GET /reload` on the admin endpoint, once via SIGHUP — and a paced
     probe client sends sequential PTR queries throughout, each of which
     must be answered (the old frozen view serves until the new epoch is
     published; no query ever falls into a gap).

  2. **Graceful drain on SIGTERM**: a burst of queries is queued on the
     server's sockets and SIGTERM lands immediately after. Every queued
     query must still be answered (the workers consume the kernel backlog
     before exiting), the process must exit 0, and the summary must
     account for every datagram.

Afterwards the artifacts are audited: the journal and the metrics JSONL
stream must be schema-valid and untruncated (every line complete, final
newline present) and the journal must carry serve.start, serve.reload,
serve.drain and serve.stop events.

Stdlib only; invoked by ctest with the rdns_tool path as argv[1].
"""

import argparse
import http.client
import json
import os
import re
import signal
import socket
import struct
import subprocess
import sys
import tempfile
import threading
import time

WORLD_ARGS = ["--orgs", "3", "--seed", "11", "--scale", "0.05"]
DATE = "2021-01-02"
SERVE_BANNER = re.compile(r"^serving on 127\.0\.0\.1:(\d+) with (\d+) workers")
ADMIN_BANNER = re.compile(r"^admin on 127\.0\.0\.1:(\d+)")
RELOAD_LINE = re.compile(r"zone reload #(\d+) complete")
CHECKER = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       "check_metrics_schema.py")


def fail(message):
    sys.stderr.write(f"FAIL: {message}\n")
    sys.exit(1)


def encode_qname(name):
    wire = b""
    for label in name.split("."):
        raw = label.encode("ascii")
        wire += struct.pack("B", len(raw)) + raw
    return wire + b"\x00"


def ptr_query(txid, last_octet):
    # 10.40.0.0/16 is the first announced prefix of every make_internet_world
    # (org slots start at 40), so these queries always route to a zone and
    # earn a reply — never the unannounced-space timeout.
    header = struct.pack(">HHHHHH", txid & 0xFFFF, 0x0100, 1, 0, 0, 0)
    qname = f"{last_octet & 0xFF}.0.40.10.in-addr.arpa"
    return header + encode_qname(qname) + struct.pack(">HH", 12, 1)  # PTR, IN


def http_get(port, path):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        conn.request("GET", path)
        resp = conn.getresponse()
        return resp.status, resp.read().decode("utf-8", "replace")
    finally:
        conn.close()


def run_checker(path, *flags):
    proc = subprocess.run([sys.executable, CHECKER, path, *flags],
                          stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                          text=True, timeout=120)
    if proc.returncode != 0:
        fail(f"check_metrics_schema.py {' '.join(flags)} {path}: {proc.stdout}")


def assert_untruncated(path, what):
    """A crashed or hard-killed writer leaves a partial last line; a drained
    one never does. Every line must be complete JSON and end in a newline."""
    with open(path, "rb") as f:
        blob = f.read()
    if not blob:
        fail(f"{what} is empty")
    if not blob.endswith(b"\n"):
        fail(f"{what} is truncated: no final newline")
    for i, line in enumerate(blob.decode("utf-8").splitlines(), 1):
        if not line.strip():
            continue
        try:
            json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"{what} line {i} is not complete JSON ({e}): {line[:80]!r}")


class StdoutReader(threading.Thread):
    """Drains the server's stdout so reload confirmations can be awaited
    while the main thread keeps querying."""

    def __init__(self, stream):
        super().__init__(daemon=True)
        self.stream = stream
        self.lines = []
        self.lock = threading.Lock()
        self.start()

    def run(self):
        for line in self.stream:
            with self.lock:
                self.lines.append(line.rstrip("\n"))

    def snapshot(self):
        with self.lock:
            return list(self.lines)

    def wait_for(self, regex, timeout_s):
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            for line in self.snapshot():
                m = regex.search(line)
                if m:
                    return m
            time.sleep(0.05)
        return None


class Flooder(threading.Thread):
    """Open-loop background load: keeps the serving loop busy so lifecycle
    transitions happen under traffic, not in a quiet lab."""

    def __init__(self, port):
        super().__init__(daemon=True)
        self.port = port
        self.stop_flag = threading.Event()
        self.sent = 0
        self.start()

    def run(self):
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        txid = 0
        while not self.stop_flag.is_set():
            try:
                sock.sendto(ptr_query(txid, txid), ("127.0.0.1", self.port))
            except OSError:
                break
            self.sent += 1
            txid += 1
            if txid % 64 == 0:
                time.sleep(0.001)  # busy, not saturating
        sock.close()

    def stop(self):
        self.stop_flag.set()
        self.join(timeout=5)


def probe_sequential(port, count, what):
    """`count` sequential queries, each awaiting its reply: the zero-drop
    assertion for reload windows. Returns the observed replies."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    sock.settimeout(5)
    answered = 0
    for i in range(count):
        query = ptr_query(0x4000 + i, i)
        sock.sendto(query, ("127.0.0.1", port))
        try:
            reply, _ = sock.recvfrom(4096)
        except socket.timeout:
            fail(f"{what}: query {i} of {count} got no reply (dropped)")
        if len(reply) < 12 or struct.unpack(">H", reply[:2])[0] != (0x4000 + i) & 0xFFFF:
            fail(f"{what}: query {i} got a mismatched reply")
        answered += 1
    sock.close()
    return answered


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("tool", help="path to the rdns_tool binary")
    opts = parser.parse_args()

    with tempfile.TemporaryDirectory(dir=os.getcwd()) as work:
        journal = os.path.join(work, "journal.jsonl")
        metrics_jsonl = os.path.join(work, "metrics.jsonl")

        # L3 answer-shedding stays off: this test floods on purpose, and the
        # zero-drop guarantees under test are about lifecycle transitions,
        # not the overload fuse (bench_serve_overload covers that).
        server = subprocess.Popen(
            [opts.tool, "serve"] + WORLD_ARGS +
            ["--date", DATE, "--hour", "14", "--port", "0", "--threads", "2",
             "--admin-port", "0", "--shed-l3", "0",
             "--metrics-interval", "0.25", "--metrics-out", metrics_jsonl,
             "--journal-out", journal],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        flood = None
        try:
            banner = server.stdout.readline()
            match = SERVE_BANNER.match(banner)
            if not match:
                server.kill()
                fail(f"unparseable serve banner: {banner!r}")
            port = int(match.group(1))
            admin_line = server.stdout.readline()
            admin_match = ADMIN_BANNER.match(admin_line)
            if not admin_match:
                server.kill()
                fail(f"unparseable admin banner: {admin_line!r}")
            admin_port = int(admin_match.group(1))
            reader = StdoutReader(server.stdout)

            flood = Flooder(port)
            probe_sequential(port, 20, "warmup")

            # -- hot reload #1: via the admin endpoint ----------------------
            status, body = http_get(admin_port, "/reload")
            if status != 200 or "reload" not in body:
                fail(f"GET /reload: status {status}, body {body!r}")
            # Zero-drop window: query continuously while the rebuild runs.
            while True:
                probe_sequential(port, 10, "during HTTP reload")
                if reader.wait_for(RELOAD_LINE, 0.01):
                    break
            probe_sequential(port, 20, "after HTTP reload")

            # -- hot reload #2: via SIGHUP ----------------------------------
            server.send_signal(signal.SIGHUP)
            deadline = time.monotonic() + 120
            done = None
            while time.monotonic() < deadline:
                probe_sequential(port, 10, "during SIGHUP reload")
                done = reader.wait_for(re.compile(r"zone reload #2 complete"), 0.01)
                if done:
                    break
            if not done:
                fail("SIGHUP reload never completed")
            probe_sequential(port, 20, "after SIGHUP reload")

            # -- graceful drain: SIGTERM lands on a loaded server -----------
            drain_sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            drain_sock.settimeout(5)
            burst = 100
            for i in range(burst):
                drain_sock.sendto(ptr_query(0x7000 + i, i), ("127.0.0.1", port))
            server.send_signal(signal.SIGTERM)  # burst already queued in-kernel
            got = 0
            try:
                while got < burst:
                    drain_sock.recvfrom(4096)
                    got += 1
            except socket.timeout:
                pass
            drain_sock.close()
            if got < burst:
                fail(f"drain flushed only {got}/{burst} queued replies")

            flood.stop()
            server.wait(timeout=60)
            out = "\n".join(reader.snapshot())
        except Exception:
            if flood:
                flood.stop_flag.set()
            server.kill()
            raise
        if server.returncode != 0:
            fail(f"server exited {server.returncode} on SIGTERM: {out}")

        summary = next((l for l in out.splitlines() if l.startswith("served ")), None)
        if summary is None:
            fail(f"server printed no summary line: {out!r}")
        if "drops:" not in out:
            fail(f"summary is missing the drop-cause breakdown: {out!r}")

        # -- artifacts: schema-valid AND untruncated ------------------------
        assert_untruncated(journal, "journal")
        assert_untruncated(metrics_jsonl, "metrics stream")
        run_checker(journal, "--journal")
        run_checker(metrics_jsonl, "--snapshots", "--require-manifest")
        with open(journal, "r", encoding="utf-8") as f:
            types = [json.loads(l).get("type") for l in f if l.strip()]
        for expected in ("manifest", "serve.start", "serve.reload",
                         "serve.drain", "serve.stop"):
            if expected not in types:
                fail(f"journal is missing a {expected} event")
        if types.count("serve.reload") != 2:
            fail(f"expected 2 serve.reload events, saw {types.count('serve.reload')}")

    print(f"OK: two hot reloads (HTTP + SIGHUP) with zero dropped probes, "
          f"graceful drain flushed {burst}/{burst} queued replies, exit 0, "
          f"artifacts untruncated and schema-valid ({flood.sent} flood datagrams)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
