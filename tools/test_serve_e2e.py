#!/usr/bin/env python3
"""End-to-end test for the real UDP serving path and its admin plane.

Drives two copies of the real binary:

  1. `rdns_tool serve --port 0` hosts a small frozen world's reverse zones
     on a kernel-assigned loopback port (the port is parsed from stdout),
     with the live introspection plane armed: HTTP admin endpoint, sampled
     tracing with slowlog, JSONL metrics streaming and an event journal;
  2. `rdns_tool sweep --mode wire --transport udp://...` sweeps one day
     against that live server;
  3. the same sweep run in-process (the deterministic reference) must
     produce a byte-identical CSV — the wire format, the serving loop and
     the socket transport may not change a single row;
  4. while the server is still up, the admin plane is scraped end to end:
     /metrics (Prometheus text), /stats.json (rdns.serve-stats.v1 with
     heavy-hitter tables), a CHAOS-class TXT query over the serving port
     itself, and one rendered `rdns_tool top` frame;
  5. SIGTERM must shut the server down cleanly (exit 0) with a summary
     that accounts for every datagram the sweep sent;
  6. the artifacts are validated with check_metrics_schema.py: the journal
     (serve.start / serve.slowlog / serve.stop), the metrics JSONL stream,
     and the saved exposition.

Stdlib only; invoked by ctest with the rdns_tool path as argv[1].
"""

import argparse
import http.client
import json
import os
import re
import signal
import socket
import struct
import subprocess
import sys
import tempfile

WORLD_ARGS = ["--orgs", "3", "--seed", "11", "--scale", "0.05"]
DATE = "2021-01-02"
SERVE_BANNER = re.compile(r"^serving on 127\.0\.0\.1:(\d+) with (\d+) workers")
ADMIN_BANNER = re.compile(r"^admin on 127\.0\.0\.1:(\d+)")
CHECKER = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       "check_metrics_schema.py")


def fail(message):
    sys.stderr.write(f"FAIL: {message}\n")
    sys.exit(1)


def run_sweep(tool, csv_path, extra):
    args = ([tool, "sweep", "--mode", "wire"] + WORLD_ARGS +
            ["--from", DATE, "--to", DATE, "--threads", "2"] + extra + [csv_path])
    proc = subprocess.run(args, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                          text=True, timeout=600)
    if proc.returncode != 0:
        fail(f"sweep exited {proc.returncode}: {proc.stdout}")
    return proc.stdout


def http_get(port, path):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        conn.request("GET", path)
        resp = conn.getresponse()
        return resp.status, resp.read().decode("utf-8", "replace")
    finally:
        conn.close()


def encode_qname(name):
    wire = b""
    for label in name.split("."):
        raw = label.encode("ascii")
        wire += struct.pack("B", len(raw)) + raw
    return wire + b"\x00"


def chaos_txt_query(port, qname):
    """Raw CH TXT query against the serving port; returns (rcode, ancount)."""
    header = struct.pack(">HHHHHH", 0x5EED, 0x0100, 1, 0, 0, 0)
    question = encode_qname(qname) + struct.pack(">HH", 16, 3)  # TXT, CH
    with socket.socket(socket.AF_INET, socket.SOCK_DGRAM) as sock:
        sock.settimeout(10)
        sock.sendto(header + question, ("127.0.0.1", port))
        reply, _ = sock.recvfrom(4096)
    if len(reply) < 12:
        fail(f"CHAOS reply too short ({len(reply)} bytes)")
    rid, flags, _, ancount, _, _ = struct.unpack(">HHHHHH", reply[:12])
    if rid != 0x5EED:
        fail(f"CHAOS reply id mismatch: {rid:#x}")
    if not flags & 0x8000:
        fail("CHAOS reply is not a response (QR=0)")
    return flags & 0x000F, ancount


def run_checker(path, *flags):
    proc = subprocess.run([sys.executable, CHECKER, path, *flags],
                          stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                          text=True, timeout=120)
    if proc.returncode != 0:
        fail(f"check_metrics_schema.py {' '.join(flags)} {path}: {proc.stdout}")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("tool", help="path to the rdns_tool binary")
    opts = parser.parse_args()

    with tempfile.TemporaryDirectory(dir=os.getcwd()) as work:
        ref_csv = os.path.join(work, "inproc.csv")
        udp_csv = os.path.join(work, "udp.csv")
        journal = os.path.join(work, "journal.jsonl")
        metrics_jsonl = os.path.join(work, "metrics.jsonl")
        exposition = os.path.join(work, "metrics.prom")

        # Reference: the in-process deterministic path.
        run_sweep(opts.tool, ref_csv, extra=[])

        # Live server over the same world (same seed/scale/date/hour), with
        # the whole admin plane armed. --slowlog-us 0 turns every sampled
        # query into a slowlog event, so the journal contract gets exercised.
        server = subprocess.Popen(
            [opts.tool, "serve"] + WORLD_ARGS +
            ["--date", DATE, "--hour", "14", "--port", "0", "--threads", "2",
             "--admin-port", "0", "--sample", "8", "--slowlog-us", "0",
             "--metrics-interval", "0.5", "--metrics-out", metrics_jsonl,
             "--journal-out", journal],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        try:
            banner = server.stdout.readline()
            match = SERVE_BANNER.match(banner)
            if not match:
                server.kill()
                fail(f"unparseable serve banner: {banner!r}")
            port = int(match.group(1))
            admin_line = server.stdout.readline()
            admin_match = ADMIN_BANNER.match(admin_line)
            if not admin_match:
                server.kill()
                fail(f"unparseable admin banner: {admin_line!r}")
            admin_port = int(admin_match.group(1))

            run_sweep(opts.tool, udp_csv,
                      extra=["--transport", f"udp://127.0.0.1:{port}"])

            with open(ref_csv, "rb") as f:
                ref = f.read()
            with open(udp_csv, "rb") as f:
                udp = f.read()
            if not ref:
                fail("reference sweep produced an empty CSV")
            if ref != udp:
                fail(f"UDP sweep CSV differs from in-process reference "
                     f"({len(udp)} vs {len(ref)} bytes)")

            # -- admin plane, scraped while the server is live ---------------
            status, prom = http_get(admin_port, "/metrics")
            if status != 200 or "# TYPE" not in prom:
                fail(f"/metrics scrape failed (status {status})")
            if "rdns_serve_qps" not in prom:
                fail("/metrics exposition is missing rdns_serve_qps")
            with open(exposition, "w", encoding="utf-8") as f:
                f.write(prom)

            status, body = http_get(admin_port, "/stats.json")
            if status != 200:
                fail(f"/stats.json scrape failed (status {status})")
            stats = json.loads(body)
            if stats.get("schema") != "rdns.serve-stats.v1":
                fail(f"stats.json schema: {stats.get('schema')!r}")
            if stats.get("totals", {}).get("received", 0) <= 0:
                fail("stats.json saw no datagrams after a full sweep")
            clients = stats.get("top_clients", [])
            if not clients or clients[0].get("key") != "127.0.0.1":
                fail(f"top_clients should lead with 127.0.0.1: {clients[:2]!r}")
            if stats.get("sampled", 0) <= 0:
                fail("sampled tracing recorded no queries")
            if stats.get("slowlog", 0) <= 0:
                fail("slowlog (threshold 0us) recorded no events")

            status, _ = http_get(admin_port, "/no-such-route")
            if status != 404:
                fail(f"unknown admin route returned {status}, want 404")

            # CHAOS TXT over the serving port itself.
            rcode, ancount = chaos_txt_query(port, "stats.rdns")
            if rcode != 0 or ancount < 1:
                fail(f"CH TXT stats.rdns: rcode={rcode} ancount={ancount}")
            rcode, _ = chaos_txt_query(port, "no.such.rdns")
            if rcode != 3:
                fail(f"CH TXT unknown name: rcode={rcode}, want NXDOMAIN(3)")

            # One rendered `rdns_tool top` frame against the admin endpoint.
            top = subprocess.run(
                [opts.tool, "top", f"127.0.0.1:{admin_port}",
                 "--frames", "1", "--interval", "100", "--no-clear"],
                stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                text=True, timeout=60)
            if top.returncode != 0:
                fail(f"rdns_tool top exited {top.returncode}: {top.stdout}")
            if "qps 1s/10s/60s" not in top.stdout or "top clients:" not in top.stdout:
                fail(f"top frame missing headline/tables: {top.stdout!r}")

            # Clean shutdown on SIGTERM, with a datagram accounting line.
            server.send_signal(signal.SIGTERM)
            out, _ = server.communicate(timeout=30)
        except Exception:
            server.kill()
            raise
        if server.returncode != 0:
            fail(f"server exited {server.returncode} on SIGTERM: {out}")
        summary = next((l for l in out.splitlines() if l.startswith("served ")), None)
        if summary is None:
            fail(f"server printed no summary line: {out!r}")
        served = int(re.match(r"served ([\d,]+) datagrams", summary)
                     .group(1).replace(",", ""))
        rows = ref.count(b"\n") - 1  # minus the CSV header
        if served < rows:
            fail(f"server answered {served} datagrams but the sweep has {rows} rows")

        # -- artifact validation ------------------------------------------
        run_checker(journal, "--journal")
        with open(journal, "r", encoding="utf-8") as f:
            types = [json.loads(l).get("type") for l in f if l.strip()]
        for expected in ("manifest", "serve.start", "serve.slowlog", "serve.stop"):
            if expected not in types:
                fail(f"journal is missing a {expected} event")
        run_checker(metrics_jsonl, "--snapshots", "--require-manifest")
        run_checker(exposition, "--exposition")

    print(f"OK: UDP sweep reproduced the in-process CSV byte-for-byte "
          f"({rows} rows, {served} datagrams served); admin plane scraped, "
          f"CHAOS TXT answered, top rendered, artifacts schema-valid")
    return 0


if __name__ == "__main__":
    sys.exit(main())
