#!/usr/bin/env python3
"""End-to-end test for the real UDP serving path.

Drives two copies of the real binary:

  1. `rdns_tool serve --port 0` hosts a small frozen world's reverse zones
     on a kernel-assigned loopback port (the port is parsed from stdout);
  2. `rdns_tool sweep --mode wire --transport udp://...` sweeps one day
     against that live server;
  3. the same sweep run in-process (the deterministic reference) must
     produce a byte-identical CSV — the wire format, the serving loop and
     the socket transport may not change a single row;
  4. SIGTERM must shut the server down cleanly (exit 0) with a summary
     that accounts for every datagram the sweep sent.

Stdlib only; invoked by ctest with the rdns_tool path as argv[1].
"""

import argparse
import os
import re
import signal
import subprocess
import sys
import tempfile

WORLD_ARGS = ["--orgs", "3", "--seed", "11", "--scale", "0.05"]
DATE = "2021-01-02"
SERVE_BANNER = re.compile(r"^serving on 127\.0\.0\.1:(\d+) with (\d+) workers")


def fail(message):
    sys.stderr.write(f"FAIL: {message}\n")
    sys.exit(1)


def run_sweep(tool, csv_path, extra):
    args = ([tool, "sweep", "--mode", "wire"] + WORLD_ARGS +
            ["--from", DATE, "--to", DATE, "--threads", "2"] + extra + [csv_path])
    proc = subprocess.run(args, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                          text=True, timeout=600)
    if proc.returncode != 0:
        fail(f"sweep exited {proc.returncode}: {proc.stdout}")
    return proc.stdout


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("tool", help="path to the rdns_tool binary")
    opts = parser.parse_args()

    with tempfile.TemporaryDirectory(dir=os.getcwd()) as work:
        ref_csv = os.path.join(work, "inproc.csv")
        udp_csv = os.path.join(work, "udp.csv")

        # Reference: the in-process deterministic path.
        run_sweep(opts.tool, ref_csv, extra=[])

        # Live server over the same world (same seed/scale/date/hour).
        server = subprocess.Popen(
            [opts.tool, "serve"] + WORLD_ARGS +
            ["--date", DATE, "--hour", "14", "--port", "0", "--threads", "2"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        try:
            banner = server.stdout.readline()
            match = SERVE_BANNER.match(banner)
            if not match:
                server.kill()
                fail(f"unparseable serve banner: {banner!r}")
            port = match.group(1)

            run_sweep(opts.tool, udp_csv,
                      extra=["--transport", f"udp://127.0.0.1:{port}"])

            with open(ref_csv, "rb") as f:
                ref = f.read()
            with open(udp_csv, "rb") as f:
                udp = f.read()
            if not ref:
                fail("reference sweep produced an empty CSV")
            if ref != udp:
                fail(f"UDP sweep CSV differs from in-process reference "
                     f"({len(udp)} vs {len(ref)} bytes)")

            # Clean shutdown on SIGTERM, with a datagram accounting line.
            server.send_signal(signal.SIGTERM)
            out, _ = server.communicate(timeout=30)
        except Exception:
            server.kill()
            raise
        if server.returncode != 0:
            fail(f"server exited {server.returncode} on SIGTERM: {out}")
        summary = next((l for l in out.splitlines() if l.startswith("served ")), None)
        if summary is None:
            fail(f"server printed no summary line: {out!r}")
        served = int(re.match(r"served ([\d,]+) datagrams", summary)
                     .group(1).replace(",", ""))
        rows = ref.count(b"\n") - 1  # minus the CSV header
        if served < rows:
            fail(f"server answered {served} datagrams but the sweep has {rows} rows")

    print(f"OK: UDP sweep reproduced the in-process CSV byte-for-byte "
          f"({rows} rows, {served} datagrams served)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
