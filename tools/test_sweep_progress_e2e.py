#!/usr/bin/env python3
"""End-to-end test for the scan-side observability plane.

Drives the real binary through one observed, faulted wire sweep:

  1. a baseline sweep (single thread, no observability at all) records the
     reference CSV;
  2. the same sweep runs again with everything armed — two worker threads,
     `--admin-port 0` (live progress plane over HTTP), `--flight-out`
     (flight recorder), `--journal-out` and `--metrics-out`;
  3. while the sweep is still running, /progress.json is scraped and must
     be a live rdns.sweep-progress.v1 document (shards advancing), the
     /metrics exposition must carry the sweep gauges, and one
     `rdns_tool top --once` poll must print the same document raw;
  4. the armed sweep's CSV must be byte-identical to the baseline — the
     whole observability plane is observe-only;
  5. the journal must carry sweep.progress events, and `rdns_tool report`
     must fold journal + snapshot + flight dump into an rdns.report.v1
     document (exit 0 = all invariants hold);
  6. every artifact is validated with check_metrics_schema.py: the journal
     (--journal), the flight dump (--flight), the report (--report) and
     the saved exposition (--exposition).

Stdlib only; invoked by ctest with the rdns_tool path as argv[1].
"""

import argparse
import http.client
import json
import os
import re
import subprocess
import sys
import tempfile
import time

WORLD_ARGS = ["--orgs", "6", "--seed", "11", "--scale", "0.2",
              "--from", "2021-01-02", "--to", "2021-01-05",
              "--faults", "flaky-dns"]
ADMIN_BANNER = re.compile(r"^admin on 127\.0\.0\.1:(\d+)")
CHECKER = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       "check_metrics_schema.py")


def fail(message):
    sys.stderr.write(f"FAIL: {message}\n")
    sys.exit(1)


def http_get(port, path, timeout=5):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request("GET", path)
        resp = conn.getresponse()
        return resp.status, resp.read().decode("utf-8", "replace")
    finally:
        conn.close()


def run_checker(path, *flags):
    proc = subprocess.run([sys.executable, CHECKER, path, *flags],
                          stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                          text=True, timeout=120)
    if proc.returncode != 0:
        fail(f"check_metrics_schema.py {' '.join(flags)} {path}: {proc.stdout}")


def scrape_live_plane(sweep, admin_port, tool):
    """Poll /progress.json until the sweep shows forward progress (or ends).

    Returns (midrun_doc_or_None, exposition_text_or_None, top_output_or_None).
    """
    midrun = None
    exposition = None
    top_out = None
    deadline = time.monotonic() + 120
    while sweep.poll() is None and time.monotonic() < deadline:
        try:
            status, body = http_get(admin_port, "/progress.json")
        except OSError:
            time.sleep(0.05)
            continue
        if status != 200:
            fail(f"/progress.json returned status {status}")
        doc = json.loads(body)
        if doc.get("schema") != "rdns.sweep-progress.v1":
            fail(f"progress.json schema: {doc.get('schema')!r}")
        if doc.get("shards", {}).get("done", 0) > 0:
            midrun = doc
            try:
                status, exposition = http_get(admin_port, "/metrics")
                if status != 200:
                    exposition = None
            except OSError:
                pass
            try:
                top = subprocess.run(
                    [tool, "top", f"127.0.0.1:{admin_port}", "--once"],
                    stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                    text=True, timeout=30)
                if top.returncode == 0:
                    top_out = top.stdout
            except subprocess.TimeoutExpired:
                pass
            break
        time.sleep(0.02)
    return midrun, exposition, top_out


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("tool", help="path to the rdns_tool binary")
    opts = parser.parse_args()

    with tempfile.TemporaryDirectory(dir=os.getcwd()) as work:
        base_csv = os.path.join(work, "baseline.csv")
        armed_csv = os.path.join(work, "armed.csv")
        journal = os.path.join(work, "journal.jsonl")
        metrics = os.path.join(work, "metrics.json")
        flight = os.path.join(work, "flight.jsonl")
        report = os.path.join(work, "report.json")
        markdown = os.path.join(work, "report.md")
        exposition_path = os.path.join(work, "metrics.prom")

        # Baseline: one thread, nothing armed.
        proc = subprocess.run(
            [opts.tool, "sweep", "--mode", "wire", "--threads", "1"]
            + WORLD_ARGS + [base_csv],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            timeout=600)
        if proc.returncode != 0:
            fail(f"baseline sweep exited {proc.returncode}: {proc.stdout}")

        # Armed run: two threads, progress plane + flight recorder + journal
        # + metrics snapshot, scraped live over HTTP.
        sweep = subprocess.Popen(
            [opts.tool, "sweep", "--mode", "wire", "--threads", "2",
             "--admin-port", "0",
             "--flight-out", flight,
             "--journal-out", journal,
             "--metrics-out", metrics]
            + WORLD_ARGS + [armed_csv],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True)
        try:
            banner = sweep.stdout.readline()
            match = ADMIN_BANNER.match(banner)
            if not match:
                sweep.kill()
                fail(f"unparseable admin banner: {banner!r}")
            admin_port = int(match.group(1))
            midrun, exposition, top_out = scrape_live_plane(
                sweep, admin_port, opts.tool)
            out, _ = sweep.communicate(timeout=600)
        except Exception:
            sweep.kill()
            raise
        if sweep.returncode != 0:
            fail(f"armed sweep exited {sweep.returncode}: {out}")

        # -- live-scrape assertions ---------------------------------------
        if midrun is None:
            fail("never scraped a mid-run /progress.json with shards done > 0")
        shards = midrun["shards"]
        if not 0 < shards["done"] <= shards["total"]:
            fail(f"mid-run shard counters out of range: {shards!r}")
        for key in ("rows", "queries", "uptime_s", "rows_per_s", "percent"):
            if key not in midrun:
                fail(f"mid-run progress.json is missing {key!r}")
        if exposition is None:
            fail("/metrics was not scrapeable while the sweep ran")
        for needle in ("rdns_build_info", "rdns_sweep_percent",
                       "rdns_sweep_rows_per_s"):
            if needle not in exposition:
                fail(f"/metrics exposition is missing {needle}")
        with open(exposition_path, "w", encoding="utf-8") as f:
            f.write(exposition)
        if top_out is None:
            fail("rdns_tool top --once failed against the live sweep")
        top_doc = json.loads(top_out)
        if top_doc.get("schema") != "rdns.sweep-progress.v1":
            fail(f"top --once printed schema {top_doc.get('schema')!r}")

        # -- determinism: the armed 2-thread CSV equals the bare 1-thread one
        with open(base_csv, "rb") as f:
            base = f.read()
        with open(armed_csv, "rb") as f:
            armed = f.read()
        if not base:
            fail("baseline sweep produced an empty CSV")
        if base != armed:
            fail(f"armed sweep CSV differs from baseline "
                 f"({len(armed)} vs {len(base)} bytes)")

        # -- artifacts ----------------------------------------------------
        run_checker(journal, "--journal")
        run_checker(flight, "--flight")
        run_checker(exposition_path, "--exposition")
        with open(journal, "r", encoding="utf-8") as f:
            types = [json.loads(l).get("type") for l in f if l.strip()]
        if "sweep.progress" not in types:
            fail("journal carries no sweep.progress events")

        # -- unified report -----------------------------------------------
        rep = subprocess.run(
            [opts.tool, "report", journal, "--snapshot", metrics,
             "--flight", flight, "--out", report, "--markdown", markdown],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            timeout=600)
        if rep.returncode != 0:
            fail(f"rdns_tool report exited {rep.returncode}: {rep.stdout}")
        run_checker(report, "--report")
        with open(report, "r", encoding="utf-8") as f:
            doc = json.load(f)
        if not doc.get("ok"):
            fail(f"report says the run violated invariants: {doc.get('audit')}")
        if doc.get("sweep_progress", {}).get("events", 0) < 1:
            fail("report folded no sweep.progress events")
        if not doc.get("flight", {}).get("present"):
            fail("report did not fold the flight dump")
        if doc.get("retry_chains", {}).get("retries", 0) < 1:
            fail("flaky-dns run reported no resolver retries")
        with open(markdown, "r", encoding="utf-8") as f:
            narrative = f.read()
        for heading in ("## Audit", "## Sweep progress", "## Flight recorder"):
            if heading not in narrative:
                fail(f"markdown narrative is missing {heading!r}")

        rows = base.count(b"\n") - 1
    print(f"OK: armed sweep reproduced the baseline CSV byte-for-byte "
          f"({rows} rows); /progress.json scraped live at "
          f"{shards['done']}/{shards['total']} shards; report + flight dump "
          f"schema-valid")
    return 0


if __name__ == "__main__":
    sys.exit(main())
